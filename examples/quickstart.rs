//! Quickstart: optimize the genuine ISCAS-89 s27 circuit at 300 MHz.
//!
//! Run with:
//!
//! ```text
//! cargo run -p minpower --example quickstart
//! ```
//!
//! The program builds the combinational core of s27, attaches the
//! calibrated 0.5 µm-class technology with a uniform input activity of
//! 0.1 transitions/cycle, and compares the conventional fixed-700 mV
//! baseline against the paper's joint (Vdd, Vt, widths) optimization.

use minpower::opt::baseline;
use minpower::{CircuitModel, Optimizer, Problem, SearchOptions, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = minpower::circuits::s27();
    let stats = netlist.stats();
    println!("circuit {}: {stats}", netlist.name());

    let fc = 300.0e6;
    let model = CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, 0.1);
    let problem = Problem::new(model, fc);
    println!(
        "constraint: {:.0} MHz clock -> {:.3} ns cycle time",
        fc / 1e6,
        problem.cycle_time() * 1e9
    );

    // Conventional optimization: widths + supply at a fixed 700 mV Vt.
    let fixed = baseline::optimize_fixed_vt(&problem, 0.7, SearchOptions::default())?;
    println!("\n-- fixed Vt = 700 mV (widths + Vdd only) --");
    print_result(&fixed);

    // The paper's joint device-circuit optimization.
    let joint = Optimizer::new(&problem).run()?;
    println!("\n-- joint Vdd / Vt / width optimization --");
    print_result(&joint);

    println!(
        "\nenergy savings factor: {:.1}x",
        joint.savings_vs(fixed.energy.total())
    );
    Ok(())
}

fn print_result(r: &minpower::OptimizationResult) {
    println!(
        "  Vdd = {:.3} V, Vt = {}, feasible = {}",
        r.design.vdd,
        r.uniform_vt()
            .map(|v| format!("{:.0} mV", v * 1e3))
            .unwrap_or_else(|| "per-group".to_string()),
        r.feasible
    );
    println!(
        "  energy/cycle: static {:.3e} J + dynamic {:.3e} J = {:.3e} J",
        r.energy.static_,
        r.energy.dynamic,
        r.energy.total()
    );
    println!(
        "  critical delay {:.3} ns ({} circuit evaluations)",
        r.critical_delay * 1e9,
        r.evaluations
    );
}
