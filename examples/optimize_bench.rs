//! CAD-flow example: optimize a named benchmark (or a `.bench` file).
//!
//! ```text
//! cargo run -p minpower --example optimize_bench -- s298 0.3
//! cargo run -p minpower --example optimize_bench -- path/to/c432.bench 0.1
//! ```
//!
//! Arguments: circuit (suite name or `.bench` path, default `s298`) and
//! input transition density per cycle (default `0.3`). Prints the fixed-Vt
//! baseline, the joint optimization, and a dual-threshold (`n_v = 2`) run,
//! mirroring the per-circuit rows of the paper's Tables 1–2.

use std::path::Path;
use std::time::Instant;

use minpower::opt::baseline;
use minpower::{CircuitModel, Netlist, Optimizer, Problem, SearchOptions, Technology};

fn load(arg: &str) -> Result<Netlist, Box<dyn std::error::Error>> {
    if arg.ends_with(".bench") {
        Ok(minpower::circuits::load_bench_file(Path::new(arg))?)
    } else if arg == "s27" {
        Ok(minpower::circuits::s27())
    } else if let Some(spec) = minpower::circuits::spec_by_name(arg) {
        Ok(minpower::circuits::synthesize(&spec)?)
    } else {
        Err(format!(
            "unknown circuit `{arg}` (suite: s27, {})",
            minpower::circuits::specs()
                .iter()
                .map(|s| s.name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        )
        .into())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s298".to_string());
    let activity: f64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(0.3);

    let netlist = load(&circuit)?;
    println!("circuit {}: {}", netlist.name(), netlist.stats());

    let fc = 300.0e6;
    let model = CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, activity);
    let problem = Problem::new(model, fc);
    println!(
        "constraint: {:.0} MHz, input activity {activity}\n",
        fc / 1e6
    );

    let t0 = Instant::now();
    let fixed = baseline::optimize_fixed_vt(&problem, 0.7, SearchOptions::default())?;
    let t_fixed = t0.elapsed();

    let t0 = Instant::now();
    let joint = Optimizer::new(&problem).run()?;
    let t_joint = t0.elapsed();

    let t0 = Instant::now();
    let dual = Optimizer::new(&problem)
        .with_options(SearchOptions {
            vt_groups: 2,
            ..SearchOptions::default()
        })
        .run()?;
    let t_dual = t0.elapsed();

    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "run", "static J", "dynamic J", "total J", "delay ns", "time"
    );
    for (name, r, t) in [
        ("fixed Vt=700mV (Table 1)", &fixed, t_fixed),
        ("joint Vdd/Vt/W (Table 2)", &joint, t_joint),
        ("dual-threshold n_v=2", &dual, t_dual),
    ] {
        println!(
            "{:<28} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3} {:>8.1?}",
            name,
            r.energy.static_,
            r.energy.dynamic,
            r.energy.total(),
            r.critical_delay * 1e9,
            t
        );
    }
    println!(
        "\njoint design: Vdd = {:.3} V, Vt = {} | savings {:.1}x (dual: {:.1}x)",
        joint.design.vdd,
        joint
            .uniform_vt()
            .map(|v| format!("{:.0} mV", v * 1e3))
            .unwrap_or_else(|| "per-group".into()),
        joint.savings_vs(fixed.energy.total()),
        dual.savings_vs(fixed.energy.total()),
    );
    println!(
        "static/dynamic balance at optimum: {:.2} (paper: ~1)",
        joint.energy.balance()
    );

    // Where the energy goes: the designer-facing report.
    let report = minpower::opt::report::Report::build(&problem, &joint);
    println!("\ntop energy consumers at the optimum:");
    print!("{}", report.render(8));
    let path = minpower::opt::report::critical_path(&problem, &joint);
    let names: Vec<&str> = path.iter().map(|&g| netlist.gate(g).name()).collect();
    println!("critical path: {}", names.join(" -> "));
    Ok(())
}
