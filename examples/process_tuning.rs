//! Process design: choosing a threshold voltage for a future low-power
//! process.
//!
//! ```text
//! cargo run --release -p minpower --example process_tuning
//! ```
//!
//! The paper's introduction proposes using the optimizer *in reverse*:
//! "in determining the threshold voltage for a process being developed
//! for future applications, one may use the algorithms on existing
//! benchmarks with predicted circuit timing parameters to find the most
//! desirable threshold voltage." This example does exactly that: it runs
//! the joint optimization over a benchmark basket, reports the spread of
//! per-circuit optimal thresholds, recommends the median, and quantifies
//! the energy cost of shipping the process with a threshold ±50 mV away
//! from the recommendation (by pinning the optimizer's `V_t` range).

use minpower::{CircuitModel, Optimizer, Problem, SearchOptions, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let basket = ["s27", "s208", "s298", "s344", "s444"];
    let activity = 0.3;
    let fc = 300.0e6;

    println!("optimal threshold per benchmark (300 MHz, activity {activity}):");
    let mut optima = Vec::new();
    for name in basket {
        let netlist =
            minpower::circuits::circuit(name).ok_or_else(|| format!("unknown circuit {name}"))?;
        let model =
            CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, activity);
        let problem = Problem::new(model, fc);
        let r = Optimizer::new(&problem).run()?;
        let vt = r.uniform_vt().expect("single-threshold run");
        println!(
            "  {:<6} Vt* = {:>3.0} mV  (Vdd = {:.2} V, E = {:.3e} J)",
            name,
            vt * 1e3,
            r.design.vdd,
            r.energy.total()
        );
        optima.push((name, vt));
    }
    let mut vts: Vec<f64> = optima.iter().map(|&(_, v)| v).collect();
    vts.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
    let recommended = vts[vts.len() / 2];
    println!(
        "\nrecommended process threshold: {:.0} mV (median of the basket)",
        recommended * 1e3
    );

    // Cost of missing the target: pin Vt and re-optimize Vdd + widths.
    println!("\nenergy penalty if the process ships off-target:");
    for delta in [-0.05, 0.0, 0.05] {
        let vt = recommended + delta;
        let mut total = 0.0;
        for name in basket {
            let netlist = minpower::circuits::circuit(name)
                .ok_or_else(|| format!("unknown circuit {name}"))?;
            let tech = Technology::builder().vt_range(vt, vt + 1e-6).build();
            let model = CircuitModel::new(
                &netlist,
                tech,
                &minpower::WireModel::for_gate_count(netlist.logic_gate_count()),
                &minpower::Activities::propagate(
                    &netlist,
                    &minpower::InputActivity::uniform(0.5, activity, netlist.inputs().len()),
                ),
            );
            let problem = Problem::new(model, fc);
            let r = Optimizer::new(&problem)
                .with_options(SearchOptions::default())
                .run()?;
            total += r.energy.total();
        }
        println!(
            "  Vt = {:>3.0} mV: basket energy {:.4e} J{}",
            vt * 1e3,
            total,
            if delta == 0.0 { "  <- recommended" } else { "" }
        );
    }
    Ok(())
}
