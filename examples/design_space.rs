//! Design-space exploration: the physics of §3 made visible.
//!
//! ```text
//! cargo run --release -p minpower --example design_space -- [circuit] [activity]
//! ```
//!
//! For a grid of `(V_dd, V_ts)` operating points, sizes every gate width
//! with the paper's inner search and prints total / static / dynamic
//! energy and feasibility. The table shows the trade-off that drives the
//! whole paper: moving down-left (lower `V_dd`, lower `V_ts`) cuts
//! dynamic energy quadratically until exponential leakage and width
//! growth take over — the minimum sits where static ≈ dynamic.

use minpower::opt::search::size_at;
use minpower::{CircuitModel, Problem, SearchOptions, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s298".to_string());
    let activity: f64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(0.3);

    let netlist = if circuit == "s27" {
        minpower::circuits::s27()
    } else {
        let spec = minpower::circuits::spec_by_name(&circuit)
            .ok_or_else(|| format!("unknown circuit `{circuit}`"))?;
        minpower::circuits::synthesize(&spec)?
    };
    println!("circuit {}: {}", netlist.name(), netlist.stats());

    let model = CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, activity);
    let problem = Problem::new(model, 300.0e6);
    let options = SearchOptions::default();

    let vdds = [0.6, 0.8, 1.0, 1.2, 1.5, 2.0, 2.6, 3.3];
    let vts = [0.10, 0.15, 0.20, 0.25, 0.35, 0.50, 0.70];

    println!("\ntotal energy per cycle (J); '-' = cannot meet 300 MHz");
    print!("{:>6}", "Vdd\\Vt");
    for vt in vts {
        print!("{:>10.2}", vt);
    }
    println!();
    let mut best: Option<(f64, f64, f64, f64, f64)> = None;
    for vdd in vdds {
        print!("{vdd:>6.1}");
        for vt in vts {
            let r = size_at(&problem, vdd, vt, &options)?;
            if r.feasible {
                print!("{:>10.2e}", r.energy.total());
                if best.is_none() || r.energy.total() < best.unwrap().0 {
                    best = Some((
                        r.energy.total(),
                        vdd,
                        vt,
                        r.energy.static_,
                        r.energy.dynamic,
                    ));
                }
            } else {
                print!("{:>10}", "-");
            }
        }
        println!();
    }
    if let Some((e, vdd, vt, s, d)) = best {
        println!(
            "\ngrid minimum: {e:.3e} J at Vdd = {vdd} V, Vt = {vt} V \
             (static {s:.2e} J, dynamic {d:.2e} J, ratio {:.2})",
            s / d
        );
    }
    Ok(())
}
