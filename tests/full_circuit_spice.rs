//! Network-level validation: the genuine s27 benchmark elaborated to
//! transistors and simulated, against the closed-form Appendix-A models —
//! the whole-circuit half of the paper's "extensively validated with
//! HSPICE" claim.

use minpower::models::{CircuitModel, Design};
use minpower::netlist::{GateId, GateKind};
use minpower::spice::netlist_sim::{elaborate, GateSizing};
use minpower::Technology;

const VDD: f64 = 2.0;
const VT: f64 = 0.4;
const W: f64 = 6.0;
const WIRE_CAP: f64 = 8e-15;

#[test]
fn s27_settles_to_correct_logic_at_transistor_level() {
    let n = minpower::circuits::s27();
    let tech = Technology::dac97();
    let sizing = vec![GateSizing { width: W, vt: VT }; n.gate_count()];
    let e = elaborate(&n, &tech, VDD, &sizing, WIRE_CAP);

    // A handful of before→after vectors; check every gate output settles
    // to its Boolean value.
    let cases: [(u32, u32); 3] = [
        (0b0000000, 0b1111111),
        (0b1010101, 0b0101010),
        (0b1111111, 0b0010011),
    ];
    for (before_bits, after_bits) in cases {
        let unpack = |bits: u32| -> Vec<bool> {
            (0..n.inputs().len())
                .map(|k| (bits >> k) & 1 == 1)
                .collect()
        };
        let before = unpack(before_bits);
        let after = unpack(after_bits);
        let expected = n.evaluate(&after);
        let tr = e.simulate_step(&before, &after, 2e-9, 60e-9, 12_000);
        for (i, g) in n.gates().iter().enumerate() {
            if g.kind() == GateKind::Input {
                continue;
            }
            let v = tr.final_voltage(e.node_of(GateId::new(i)));
            let logic = v > VDD / 2.0;
            assert_eq!(
                logic,
                expected[i],
                "gate {} settled at {v:.2} V, expected {} (vector {after_bits:b})",
                g.name(),
                expected[i]
            );
        }
    }
}

#[test]
fn s27_settling_time_is_bounded_by_sta_critical_path() {
    let n = minpower::circuits::s27();
    let tech = Technology::dac97();
    let sizing = vec![GateSizing { width: W, vt: VT }; n.gate_count()];
    let e = elaborate(&n, &tech, VDD, &sizing, WIRE_CAP);

    // The analytic evaluation of the same design.
    let model = CircuitModel::with_uniform_activity(&n, tech, 0.5, 0.3);
    let design = Design::uniform(&n, VDD, VT, W);
    let eval = model.evaluate(&design, 3.0e8);
    assert!(eval.critical_delay.is_finite());

    // Sample several stimuli: flip all inputs, plus each input alone
    // from both all-zero and all-one bases — single-input flips exercise
    // the long single-path cones.
    let n_in = n.inputs().len();
    let mut stimuli: Vec<(Vec<bool>, Vec<bool>)> = vec![(vec![false; n_in], vec![true; n_in])];
    for k in 0..n_in {
        let mut a = vec![false; n_in];
        a[k] = true;
        stimuli.push((vec![false; n_in], a));
        let mut b = vec![true; n_in];
        b[k] = false;
        stimuli.push((vec![true; n_in], b));
    }
    let t_switch = 3e-9;
    let horizon = t_switch + 8.0 * eval.critical_delay;
    let mut settle: f64 = 0.0;
    for (before, after) in &stimuli {
        let tr = e.simulate_step(before, after, t_switch, horizon, 8_000);
        let expected = n.evaluate(after);
        for (i, g) in n.gates().iter().enumerate() {
            if g.kind() == GateKind::Input {
                continue;
            }
            let node = e.node_of(GateId::new(i));
            if let Some(t) = tr.crossing(node, VDD / 2.0, expected[i], t_switch) {
                settle = settle.max(t - t_switch);
            }
        }
    }
    assert!(settle > 0.0, "nothing switched");
    // STA is a worst-case bound: over all vectors, all path polarities,
    // and budget-level input slopes. The sampled settling time must stay
    // below it and within the same order of magnitude.
    let ratio = settle / eval.critical_delay;
    assert!(
        (0.05..=1.5).contains(&ratio),
        "settling {settle:.3e} vs STA critical {:.3e} (ratio {ratio:.2})",
        eval.critical_delay
    );
}

#[test]
fn s27_transition_energy_matches_model_scale() {
    let n = minpower::circuits::s27();
    let tech = Technology::dac97();
    let sizing = vec![GateSizing { width: W, vt: VT }; n.gate_count()];
    let e = elaborate(&n, &tech, VDD, &sizing, WIRE_CAP);

    let before = vec![false; n.inputs().len()];
    let after = vec![true; n.inputs().len()];
    let t_switch = 10e-9;
    let horizon = 60e-9;
    let tr = e.simulate_step(&before, &after, t_switch, horizon, 12_000);

    // Simulated: supply energy of the transition window, leakage-corrected
    // with a pre-switch baseline taken *after* the start-up charge-up of
    // the initial state has settled (the first nanoseconds charge every
    // node that is logically 1 from the 0 V initial condition).
    let quiet = 4e-9;
    let leak = tr.supply_energy_between(t_switch - quiet, t_switch) / quiet;
    let e_meas = tr.supply_energy_between(t_switch, horizon) - leak * (horizon - t_switch);

    // Model: the supply charges every output that rises — approximately
    // Σ C_sw·V² over rising gates, with C_sw from the same parameters the
    // analytic dynamic-energy expression uses (output parasitic + wire
    // per branch + sink gate caps; compound AND/OR stages add their
    // internal inverter node).
    let v_before = n.evaluate(&before);
    let v_after = n.evaluate(&after);
    let mut e_model = 0.0;
    for (i, g) in n.gates().iter().enumerate() {
        if g.kind() == GateKind::Input {
            continue;
        }
        let rising = !v_before[i] && v_after[i];
        let falling = v_before[i] && !v_after[i];
        if !(rising || falling) {
            continue;
        }
        let id = GateId::new(i);
        let mut c_sw = W * tech.c_pd + n.fanout(id).len().max(1) as f64 * WIRE_CAP;
        for &s in n.fanout(id) {
            let _ = s;
            c_sw += W * tech.c_in;
        }
        // Compound stages (AND/OR/BUF) switch an internal node too.
        if matches!(g.kind(), GateKind::And | GateKind::Or | GateKind::Buf) {
            c_sw += W * tech.c_pd;
        }
        // Rising outputs draw C·V² from the supply; falling outputs drew
        // their energy on the previous charge — count half to approximate
        // the internal-node and short-circuit contributions symmetrically.
        if rising {
            e_model += c_sw * VDD * VDD;
        } else {
            e_model += 0.25 * c_sw * VDD * VDD;
        }
    }
    assert!(e_model > 0.0);
    let ratio = e_meas / e_model;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "simulated {e_meas:.3e} J vs model {e_model:.3e} J (ratio {ratio:.2})"
    );
}
