//! Loopback integration tests for `minpower-serve`: a real server on
//! `127.0.0.1:0`, real `TcpStream` clients, no mocks.
//!
//! The load-bearing claims verified here:
//!
//! * a served result is **byte-identical** to a direct library run of
//!   the same spec (same JSON document, same float bits);
//! * concurrent submissions all complete, and overload answers `429`
//!   without ever blocking the accept loop;
//! * `DELETE /jobs/{id}` mid-run yields a cancelled job carrying a
//!   delay-feasible best-so-far design;
//! * a server killed mid-job (simulated power loss) leaves the job
//!   `pending` + checkpointed, and a restarted server on the same state
//!   directory resumes it to the *same final design*.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use minpower::opt::json::{self, Value};
use minpower_serve::{Config, DrainOutcome, Server, ServerHandle};

// ---------------------------------------------------------------- helpers

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minpower-serve-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<DrainOutcome>,
}

fn start(config: Config) -> TestServer {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        thread,
    }
}

impl TestServer {
    fn shutdown(self) -> DrainOutcome {
        self.handle.shutdown();
        self.thread.join().expect("server thread")
    }

    fn kill(self) -> DrainOutcome {
        self.handle.kill();
        self.thread.join().expect("server thread")
    }
}

/// Sends one raw request, returns `(status, head, body)`.
fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).to_string();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn delete(addr: SocketAddr, path: &str) -> (u16, String, String) {
    raw_request(
        addr,
        format!("DELETE {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn parse_body(body: &str) -> Value {
    json::parse(body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e}"))
}

fn field<'a>(value: &'a Value, name: &str) -> &'a Value {
    value
        .as_obj("response")
        .expect("object")
        .req(name)
        .unwrap_or_else(|e| panic!("{e} in {}", value.render()))
}

fn status_of(value: &Value) -> String {
    field(value, "status")
        .as_str("status")
        .expect("status string")
        .to_string()
}

fn submit(addr: SocketAddr, spec: &str) -> u64 {
    let (status, _, body) = post_json(addr, "/jobs", spec);
    assert_eq!(status, 202, "{body}");
    field(&parse_body(&body), "id").as_u64("id").unwrap()
}

/// Polls `GET /jobs/{id}` until `pred` accepts the parsed body.
fn wait_for(addr: SocketAddr, id: u64, what: &str, pred: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, _, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "GET /jobs/{id} -> {body}");
        let value = parse_body(&body);
        if pred(&value) {
            return value;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last: {}",
            value.render()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn terminal(value: &Value) -> bool {
    !matches!(status_of(value).as_str(), "queued" | "running")
}

/// Runs the same spec through the library directly (fresh
/// single-threaded engine, exactly like a service worker) and renders
/// the canonical result document.
fn direct_run_document(spec_json: &str) -> String {
    let spec = minpower_serve::job::JobSpec::from_json(&json::parse(spec_json).expect("spec JSON"))
        .expect("spec");
    let top_gates = spec.top_gates;
    let (problem, options) = spec.build(usize::MAX).expect("build");
    let ctx = std::sync::Arc::new(minpower::EvalContext::new(
        1,
        minpower::opt::context::DEFAULT_CACHE_CAPACITY,
    ));
    let result = minpower::Optimizer::new(&problem)
        .with_options(options)
        .with_engine(ctx)
        .run()
        .expect("direct run");
    minpower::opt::report::result_to_json(&problem, &result, top_gates).render()
}

// ------------------------------------------------------------------ tests

#[test]
fn served_result_is_bit_identical_to_direct_library_run() {
    let spec = r#"{"circuit":"c17","steps":9,"top_gates":3}"#;
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir("identical"),
        ..Config::default()
    });

    let id = submit(server.addr, spec);
    let done = wait_for(server.addr, id, "completion", terminal);
    assert_eq!(status_of(&done), "done", "{}", done.render());
    let served = field(&done, "result").render();
    assert_eq!(
        served,
        direct_run_document(spec),
        "served result differs from the direct run"
    );
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}

#[test]
fn concurrent_submissions_all_complete() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 3,
        queue_depth: 16,
        state_dir: scratch_dir("concurrent"),
        ..Config::default()
    });

    // Five concurrent submitters (≥4 jobs in flight at once).
    let specs = [
        r#"{"circuit":"c17","steps":8}"#,
        r#"{"circuit":"s27","steps":8}"#,
        r#"{"circuit":"c17","steps":10,"priority":3}"#,
        r#"{"circuit":"s27","steps":10}"#,
        r#"{"circuit":"c17","steps":6,"top_gates":2}"#,
    ];
    let addr = server.addr;
    let ids: Vec<u64> = std::thread::scope(|scope| {
        let submitters: Vec<_> = specs
            .iter()
            .map(|spec| scope.spawn(move || submit(addr, spec)))
            .collect();
        submitters.into_iter().map(|s| s.join().unwrap()).collect()
    });
    assert_eq!(ids.len(), 5);

    for id in &ids {
        let done = wait_for(addr, *id, "completion", terminal);
        assert_eq!(status_of(&done), "done", "job {id}: {}", done.render());
        let result = field(&done, "result");
        assert_eq!(
            field(result, "feasible"),
            &Value::Bool(true),
            "job {id} infeasible"
        );
    }
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}

#[test]
fn overload_rejects_with_429_and_stays_responsive() {
    // One slow worker + a 2-deep queue: most submissions must bounce with
    // 429 while the accept loop keeps answering other requests.
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 2,
        state_dir: scratch_dir("overload"),
        ..Config::default()
    });
    let slow = r#"{"circuit":"s713","steps":18}"#;
    let mut rejected = 0;
    for _ in 0..6 {
        let (status, head, body) = post_json(server.addr, "/jobs", slow);
        if status == 429 {
            assert!(
                head.contains("Retry-After"),
                "429 without Retry-After: {head}"
            );
            rejected += 1;
        } else {
            assert_eq!(status, 202, "{body}");
        }
    }
    assert!(
        rejected >= 3,
        "expected most submissions rejected, got {rejected}"
    );

    let (status, _, body) = get(server.addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = parse_body(&body);
    assert!(
        field(&metrics, "queue_depth")
            .as_u64("queue_depth")
            .unwrap()
            <= 2,
        "{body}"
    );
    assert!(
        field(field(&metrics, "http"), "rejected_queue_full")
            .as_u64("rejected_queue_full")
            .unwrap()
            >= 3,
        "{body}"
    );
    // Engine counters and latency histograms are present.
    field(field(&metrics, "engine"), "circuit_evals");
    let latency = field(field(&metrics, "http"), "latency");
    field(latency, "POST /jobs");

    // Drain with jobs still queued/running: interrupted but resumable.
    assert_eq!(server.kill(), DrainOutcome::JobsInterrupted);
}

#[test]
fn cancel_mid_run_returns_delay_feasible_best_so_far() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir("cancel"),
        ..Config::default()
    });
    let id = submit(server.addr, r#"{"circuit":"s713","steps":18}"#);

    // Let the run make real progress first, so a feasible best-so-far
    // exists (polls advance once per probe).
    wait_for(server.addr, id, "mid-run progress", |v| {
        terminal(v)
            || (status_of(v) == "running" && field(v, "polls").as_u64("polls").unwrap() >= 200)
    });
    let (status, _, body) = delete(server.addr, &format!("/jobs/{id}"));
    assert_eq!(status, 200, "{body}");

    let ended = wait_for(server.addr, id, "cancellation", terminal);
    assert_eq!(status_of(&ended), "cancelled", "{}", ended.render());
    let result = field(&ended, "result");
    assert_ne!(result, &Value::Null, "cancelled job carried no best-so-far");
    assert_eq!(field(result, "feasible"), &Value::Bool(true));
    let delay = field(result, "critical_delay").as_number("delay").unwrap();
    let cycle = field(result, "cycle_time").as_number("cycle").unwrap();
    assert!(
        delay <= cycle,
        "best-so-far violates the delay constraint: {delay} > {cycle}"
    );
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}

#[test]
fn killed_server_resumes_checkpointed_job_to_the_same_design() {
    let spec = r#"{"circuit":"s713","steps":16,"top_gates":2}"#;
    let expected = direct_run_document(spec);

    let state_dir = scratch_dir("resume");
    let first = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        checkpoint_every: 4,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    let id = submit(first.addr, spec);

    // Wait until at least one checkpoint hit the disk, then pull the plug.
    let ckpt = state_dir.join(format!("job-{id}.ckpt"));
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(first.kill(), DrainOutcome::JobsInterrupted);

    // The job record must still be pending (not terminal) on disk.
    let record = std::fs::read_to_string(state_dir.join(format!("job-{id}.json"))).unwrap();
    assert!(
        record.contains("\"status\":\"pending\""),
        "kill wrote a terminal record: {record}"
    );

    // A new server on the same state directory resumes and finishes.
    let second = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        checkpoint_every: 4,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    let done = wait_for(second.addr, id, "resumed completion", terminal);
    assert_eq!(status_of(&done), "done", "{}", done.render());
    assert_eq!(
        field(&done, "result").render(),
        expected,
        "resumed run diverged from the uninterrupted design"
    );
    // The finished job's record flipped to done and its checkpoint is gone.
    assert!(!ckpt.exists(), "checkpoint not cleaned up after completion");
    assert_eq!(second.shutdown(), DrainOutcome::Clean);
}

#[test]
fn events_stream_reports_progress_then_end() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir("events"),
        ..Config::default()
    });
    let id = submit(server.addr, r#"{"circuit":"s27","steps":10}"#);

    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
        .write_all(format!("GET /jobs/{id}/events HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("stream to end");
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    let body = text.split_once("\r\n\r\n").unwrap().1;
    let lines: Vec<Value> = body.lines().map(parse_body).collect();
    assert!(!lines.is_empty(), "empty event stream");
    let last = lines.last().unwrap();
    assert_eq!(
        field(last, "event"),
        &Value::Str("end".into()),
        "stream did not end cleanly: {body}"
    );
    assert_eq!(status_of(last), "done");
    assert!(
        lines
            .iter()
            .any(|l| field(l, "event") == &Value::Str("progress".into())),
        "no progress events: {body}"
    );
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}
