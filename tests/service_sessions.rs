//! Loopback integration tests for the what-if session layer: real
//! server, real `TcpStream` clients, keep-alive connection reuse.
//!
//! The load-bearing claims verified here:
//!
//! * a session driven over HTTP lands on a state **bit-identical** to
//!   replaying the same ops through [`SessionState`] directly (the
//!   cold path) — floats compared through the snapshot's hex bits;
//! * a keep-alive connection serves many ops over one TCP connection
//!   (connections ≪ requests in `/metrics`);
//! * `GET /jobs` and `GET /sessions` are real paginated listings;
//! * LRU eviction is transparent: an evicted session replays from its
//!   op-log on the next touch and keeps answering;
//! * a server killed mid-session (simulated power loss) recovers every
//!   acknowledged op on restart, bit-identically — and, under the
//!   `session.oplog.torn` fault, truncates the torn tail instead of
//!   poisoning the session.

// The faults build compiles only the torn-oplog drill, which uses a
// subset of the shared helpers.
#![cfg_attr(feature = "faults", allow(dead_code))]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use minpower::opt::json::{self, Value};
use minpower::opt::session::{SessionOp, SessionParams, SessionState};
use minpower_serve::{Config, DrainOutcome, Server, ServerHandle};

// ---------------------------------------------------------------- helpers

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minpower-sessions-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<DrainOutcome>,
}

fn start(config: Config) -> TestServer {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        thread,
    }
}

impl TestServer {
    fn shutdown(self) -> DrainOutcome {
        self.handle.shutdown();
        self.thread.join().expect("server thread")
    }

    fn kill(self) -> DrainOutcome {
        self.handle.kill();
        self.thread.join().expect("server thread")
    }
}

/// A client that holds one TCP connection open and sends sequential
/// `Connection: keep-alive` requests over it, reading each response by
/// its `Content-Length` (the framing keep-alive reuse depends on).
struct KeepAliveClient {
    stream: TcpStream,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        KeepAliveClient { stream }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Value) {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(raw.as_bytes()).expect("write");
        // Read the head byte-by-byte up to the blank line.
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            let n = self.stream.read(&mut byte).expect("read head");
            assert!(n == 1, "connection closed mid-head: {head:?}");
            head.push(byte[0]);
        }
        let head = String::from_utf8_lossy(&head).to_string();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line in {head:?}"));
        assert!(
            head.to_ascii_lowercase().contains("connection: keep-alive"),
            "server refused keep-alive: {head}"
        );
        let length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .unwrap_or_else(|| panic!("no Content-Length in {head:?}"));
        let mut body = vec![0u8; length];
        self.stream.read_exact(&mut body).expect("read body");
        let text = String::from_utf8(body).expect("UTF-8 body");
        (
            status,
            json::parse(&text).unwrap_or_else(|e| panic!("bad JSON {text:?}: {e}")),
        )
    }
}

/// One-shot (close-delimited) request, as in tests/service.rs.
fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).to_string();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn parse_body(body: &str) -> Value {
    json::parse(body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e}"))
}

fn field<'a>(value: &'a Value, name: &str) -> &'a Value {
    value
        .as_obj("response")
        .expect("object")
        .req(name)
        .unwrap_or_else(|e| panic!("{e} in {}", value.render()))
}

fn u64_field(value: &Value, name: &str) -> u64 {
    field(value, name).as_u64(name).expect("u64 field")
}

fn open_session(addr: SocketAddr, spec: &str) -> u64 {
    let (status, _, body) = post_json(addr, "/sessions", spec);
    assert_eq!(status, 201, "{body}");
    u64_field(&parse_body(&body), "id")
}

/// The server-side state document (`GET /sessions/{id}?detail=gates`,
/// `state` field) — hex-bits floats, so string equality is bit equality.
fn state_doc(addr: SocketAddr, id: u64) -> String {
    let (status, _, body) = get(addr, &format!("/sessions/{id}?detail=gates"));
    assert_eq!(status, 200, "{body}");
    field(&parse_body(&body), "state").render()
}

/// The ops exercised by the durability tests: every strategy class —
/// incremental repair (resize, vt), operating-point rebuilds (fc,
/// activity), structural add/remove, and a dirty-cone re-optimize.
fn workout_ops() -> Vec<(String, SessionOp)> {
    vec![
        (
            r#"{"op":"resize","gate":"10","width":3.5}"#.to_string(),
            SessionOp::Resize {
                gate: "10".into(),
                width: 3.5,
            },
        ),
        (
            r#"{"op":"set_vt","gate":"16","vt":0.5}"#.to_string(),
            SessionOp::SetVt {
                gate: "16".into(),
                vt: 0.5,
            },
        ),
        (
            r#"{"op":"set_fc","fc":250000000}"#.to_string(),
            SessionOp::SetFc { fc: 250.0e6 },
        ),
        (
            r#"{"op":"set_activity","activity":0.25}"#.to_string(),
            SessionOp::SetActivity { activity: 0.25 },
        ),
        (
            r#"{"op":"add_gate","name":"probe_g","kind":"nand","fanin":["22","23"]}"#.to_string(),
            SessionOp::AddGate {
                name: "probe_g".into(),
                kind: minpower::netlist::GateKind::Nand,
                fanin: vec!["22".into(), "23".into()],
            },
        ),
        (
            r#"{"op":"remove_gate","gate":"probe_g"}"#.to_string(),
            SessionOp::RemoveGate {
                gate: "probe_g".into(),
            },
        ),
        (
            r#"{"op":"reoptimize","steps":10}"#.to_string(),
            SessionOp::Reoptimize { steps: 10 },
        ),
    ]
}

/// Replays `ops` through the library directly — the cold path a served
/// session must match bit-for-bit.
fn cold_replay_doc(ops: &[SessionOp]) -> String {
    let state = SessionState::replay(minpower::circuits::c17(), &SessionParams::default(), ops)
        .expect("cold replay");
    state.snapshot().render()
}

// ------------------------------------------------------------------ tests

#[cfg(not(feature = "faults"))]
#[test]
fn served_session_is_bit_identical_to_cold_replay() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir("identity"),
        ..Config::default()
    });
    let id = open_session(server.addr, r#"{"circuit":"c17"}"#);

    let ops = workout_ops();
    for (wire, _) in &ops {
        let (status, _, body) = post_json(server.addr, &format!("/sessions/{id}/ops"), wire);
        assert_eq!(status, 200, "op {wire}: {body}");
    }
    let cold: Vec<SessionOp> = ops.into_iter().map(|(_, op)| op).collect();
    assert_eq!(
        state_doc(server.addr, id),
        cold_replay_doc(&cold),
        "served session diverged from the cold replay"
    );

    // Invalid ops answer 400 and perturb nothing.
    let before = state_doc(server.addr, id);
    for bad in [
        r#"{"op":"resize","gate":"no-such-gate","width":3.0}"#,
        r#"{"op":"resize","gate":"10","width":1e9}"#,
        r#"{"op":"nonsense"}"#,
    ] {
        let (status, _, body) = post_json(server.addr, &format!("/sessions/{id}/ops"), bad);
        assert_eq!(status, 400, "op {bad}: {body}");
    }
    assert_eq!(state_doc(server.addr, id), before);
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}

#[cfg(not(feature = "faults"))]
#[test]
fn keep_alive_connection_serves_many_ops() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir("keepalive"),
        ..Config::default()
    });
    let id = open_session(server.addr, r#"{"circuit":"c17"}"#);

    // 40 ops + a snapshot over ONE connection.
    let ops = 40u64;
    let mut client = KeepAliveClient::connect(server.addr);
    for i in 0..ops {
        let width = 2.0 + (i % 8) as f64 * 0.25;
        let (status, body) = client.request(
            "POST",
            &format!("/sessions/{id}/ops"),
            &format!(r#"{{"op":"resize","gate":"10","width":{width}}}"#),
        );
        assert_eq!(status, 200, "{}", body.render());
        assert_eq!(u64_field(&body, "revision"), i + 1);
    }
    let (status, snap) = client.request("GET", &format!("/sessions/{id}"), "");
    assert_eq!(status, 200, "{}", snap.render());
    assert_eq!(u64_field(&snap, "revision"), ops);
    drop(client);

    let (status, _, body) = get(server.addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = parse_body(&body);
    let sessions = field(&metrics, "sessions");
    assert_eq!(u64_field(sessions, "ops_served"), ops, "{body}");
    assert!(u64_field(sessions, "op_p99_us") > 0, "{body}");
    let http = field(&metrics, "http");
    let connections = u64_field(http, "connections");
    let responses = u64_field(http, "responses_ok");
    assert!(
        connections * 4 <= responses,
        "keep-alive reuse not measurable: {connections} connections for {responses} responses"
    );
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}

#[cfg(not(feature = "faults"))]
#[test]
fn job_and_session_listings_paginate() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        state_dir: scratch_dir("listing"),
        ..Config::default()
    });

    for _ in 0..3 {
        let (status, _, body) = post_json(server.addr, "/jobs", r#"{"circuit":"c17","steps":6}"#);
        assert_eq!(status, 202, "{body}");
    }
    for _ in 0..3 {
        open_session(server.addr, r#"{"circuit":"c17"}"#);
    }

    let (status, _, body) = get(server.addr, "/jobs?offset=1&limit=1");
    assert_eq!(status, 200, "{body}");
    let page = parse_body(&body);
    assert_eq!(u64_field(&page, "total"), 3);
    let items = field(&page, "items").as_arr("items").unwrap();
    assert_eq!(items.len(), 1);
    assert_eq!(u64_field(&items[0], "id"), 2, "sorted by id: {body}");

    let (status, _, body) = get(server.addr, "/sessions?limit=2");
    assert_eq!(status, 200, "{body}");
    let page = parse_body(&body);
    assert_eq!(u64_field(&page, "total"), 3);
    assert_eq!(field(&page, "items").as_arr("items").unwrap().len(), 2);

    // Route edges: bad id 404s, wrong method 405s.
    let (status, _, _) = get(server.addr, "/sessions/999");
    assert_eq!(status, 404);
    let (status, _, _) = post_json(server.addr, "/sessions/1", "{}");
    assert_eq!(status, 405);
    assert!(matches!(
        server.shutdown(),
        DrainOutcome::Clean | DrainOutcome::JobsInterrupted
    ));
}

#[cfg(not(feature = "faults"))]
#[test]
fn evicted_sessions_replay_transparently() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        max_sessions: 1, // every touch of the *other* session evicts one
        state_dir: scratch_dir("evict"),
        ..Config::default()
    });
    let a = open_session(server.addr, r#"{"circuit":"c17"}"#);
    let b = open_session(server.addr, r#"{"circuit":"c17"}"#);

    for round in 0..3 {
        for id in [a, b] {
            let width = 2.0 + round as f64 * 0.5;
            let (status, _, body) = post_json(
                server.addr,
                &format!("/sessions/{id}/ops"),
                &format!(r#"{{"op":"resize","gate":"10","width":{width}}}"#),
            );
            assert_eq!(status, 200, "session {id} round {round}: {body}");
        }
    }

    let (status, _, body) = get(server.addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = parse_body(&body);
    let sessions = field(&metrics, "sessions");
    assert_eq!(u64_field(sessions, "open"), 2, "{body}");
    assert!(u64_field(sessions, "warm") <= 1, "{body}");
    assert!(u64_field(sessions, "evictions") >= 1, "{body}");
    assert!(u64_field(sessions, "replays") >= 1, "{body}");

    // Both sessions' states are exactly what an uninterrupted warm
    // session would hold.
    let expected = cold_replay_doc(&[
        SessionOp::Resize {
            gate: "10".into(),
            width: 2.0,
        },
        SessionOp::Resize {
            gate: "10".into(),
            width: 2.5,
        },
        SessionOp::Resize {
            gate: "10".into(),
            width: 3.0,
        },
    ]);
    assert_eq!(state_doc(server.addr, a), expected);
    assert_eq!(state_doc(server.addr, b), expected);
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}

#[cfg(not(feature = "faults"))]
#[test]
fn killed_server_recovers_sessions_bit_identically() {
    let state_dir = scratch_dir("recover");
    let first = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        session_checkpoint_every: 3, // force a mid-stream checkpoint too
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    let id = open_session(first.addr, r#"{"circuit":"c17"}"#);
    let ops = workout_ops();
    for (wire, _) in &ops {
        let (status, _, body) = post_json(first.addr, &format!("/sessions/{id}/ops"), wire);
        assert_eq!(status, 200, "op {wire}: {body}");
    }
    let live = state_doc(first.addr, id);

    // Power loss: no graceful teardown, no final writes.
    assert_eq!(first.kill(), DrainOutcome::JobsInterrupted);

    let second = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        session_checkpoint_every: 3,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    // Every acknowledged op survived, bit-for-bit — and matches the
    // cold replay, closing the loop kill → restart → replay ≡ no kill.
    let recovered = state_doc(second.addr, id);
    assert_eq!(recovered, live, "restart diverged from the live session");
    let cold: Vec<SessionOp> = ops.into_iter().map(|(_, op)| op).collect();
    assert_eq!(recovered, cold_replay_doc(&cold));
    let (status, _, body) = get(second.addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        u64_field(field(&parse_body(&body), "sessions"), "replays") >= 1,
        "{body}"
    );

    // The recovered session keeps taking ops.
    let (status, _, body) = post_json(
        second.addr,
        &format!("/sessions/{id}/ops"),
        r#"{"op":"resize","gate":"11","width":4.0}"#,
    );
    assert_eq!(status, 200, "{body}");

    // Teardown removes the session's whole directory and reports the
    // bytes it reclaimed.
    let raw = format!("DELETE /sessions/{id} HTTP/1.1\r\nHost: t\r\n\r\n");
    let (status, _, body) = raw_request(second.addr, raw.as_bytes());
    assert_eq!(status, 200);
    assert!(
        u64_field(&parse_body(&body), "reclaimed_bytes") > 0,
        "{body}"
    );
    assert!(!state_dir.join("sessions").join(id.to_string()).exists());
    assert_eq!(second.shutdown(), DrainOutcome::Clean);
}

/// The `session.oplog.torn` drill: an append persists only half a
/// record while reporting success (a lying disk). The next recovery
/// must truncate at the last intact record, normalize the log, count
/// the truncation, and keep the session serving — never poison it.
#[cfg(feature = "faults")]
#[test]
fn torn_oplog_tail_truncates_and_session_survives() {
    use minpower::engine::faults;

    let state_dir = scratch_dir("torn");
    let first = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    let id = open_session(first.addr, r#"{"circuit":"c17"}"#);

    minpower::opt::session::reset_fault_indices();
    faults::arm("session.oplog.torn", faults::Trigger::OnIndices(vec![2]));
    let widths = [2.5, 3.0, 3.5, 4.0];
    for width in widths {
        let (status, _, body) = post_json(
            first.addr,
            &format!("/sessions/{id}/ops"),
            &format!(r#"{{"op":"resize","gate":"10","width":{width}}}"#),
        );
        assert_eq!(status, 200, "{body}");
    }
    assert_eq!(faults::fired_count("session.oplog.torn"), 1);
    faults::disarm("session.oplog.torn");
    assert_eq!(first.kill(), DrainOutcome::JobsInterrupted);

    let second = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    // The torn record (index 2) ends the readable prefix: ops 0 and 1
    // survive, the tail is gone — truncated cleanly, not corrupting.
    let expected = cold_replay_doc(&[
        SessionOp::Resize {
            gate: "10".into(),
            width: 2.5,
        },
        SessionOp::Resize {
            gate: "10".into(),
            width: 3.0,
        },
    ]);
    assert_eq!(state_doc(second.addr, id), expected);
    let (status, _, body) = get(second.addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        u64_field(field(&parse_body(&body), "sessions"), "oplog_truncated") >= 1,
        "{body}"
    );

    // Normalized: new ops append to a fresh log and a further restart
    // still recovers bit-identically.
    let (status, _, body) = post_json(
        second.addr,
        &format!("/sessions/{id}/ops"),
        r#"{"op":"resize","gate":"10","width":5.0}"#,
    );
    assert_eq!(status, 200, "{body}");
    let live = state_doc(second.addr, id);
    assert_eq!(second.kill(), DrainOutcome::JobsInterrupted);

    let third = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir,
        ..Config::default()
    });
    assert_eq!(state_doc(third.addr, id), live);
    assert_eq!(third.shutdown(), DrainOutcome::Clean);
}
