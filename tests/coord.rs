//! Loopback multi-worker integration tests: one coordinator + three
//! `minpower serve --worker` processes (in-process servers on loopback
//! ports), sharing a job-store directory.
//!
//! The two invariants under test:
//!
//! * the merged result and merged deterministic stats of a distributed
//!   run are **bit-identical** to the single-process reference
//!   ([`minpower_coord::merge::run_local`]), and
//! * killing a worker mid-run never wedges or corrupts a job — its
//!   shards are reassigned and the final answer is still bit-identical.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use minpower_coord::{merge, spec::CoordSpec, CoordServer};
use minpower_core::json::{self, Value};
use minpower_serve::{DrainOutcome, Server, ServerHandle};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minpower-coord-it-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct Worker {
    addr: String,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<DrainOutcome>,
}

fn start_worker(shared: &Path, name: &str) -> Worker {
    let server = Server::bind(minpower_serve::Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir(name),
        worker: true,
        shared_dir: Some(shared.to_path_buf()),
        ..minpower_serve::Config::default()
    })
    .expect("bind worker");
    let addr = server.local_addr().expect("worker addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    Worker {
        addr,
        handle,
        thread,
    }
}

struct Coord {
    addr: String,
    handle: minpower_coord::CoordHandle,
    thread: std::thread::JoinHandle<DrainOutcome>,
}

fn start_coord(shared: &Path, workers: &[&Worker]) -> Coord {
    let server = CoordServer::bind(minpower_coord::Config {
        addr: "127.0.0.1:0".into(),
        workers: workers.iter().map(|w| w.addr.clone()).collect(),
        store_dir: shared.to_path_buf(),
        lease_ttl: 5.0,
        dispatch_timeout: 120.0,
        ..minpower_coord::Config::default()
    })
    .expect("bind coordinator");
    let addr = server.local_addr().expect("coord addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    Coord {
        addr,
        handle,
        thread,
    }
}

fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let split = text.find("\r\n\r\n").expect("header terminator");
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    (status, text[split + 4..].to_string())
}

/// Polls `GET /jobs/{id}` until the job is terminal (or the deadline
/// passes); returns the final status document.
fn await_job(coord: &str, id: u64, deadline: Duration) -> Value {
    let started = Instant::now();
    loop {
        let (status, body) = http(coord, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).expect("status json");
        let state = doc
            .as_obj("status")
            .and_then(|o| o.req("status"))
            .and_then(|v| v.as_str("status"))
            .unwrap()
            .to_string();
        if state != "running" {
            return doc;
        }
        assert!(
            started.elapsed() < deadline,
            "job {id} still running after {deadline:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Completed-shard count from a `GET /jobs/{id}` document.
fn completed_of(doc: &Value) -> u64 {
    doc.as_obj("status")
        .and_then(|o| o.req("completed"))
        .and_then(|v| v.as_u64("completed"))
        .unwrap()
}

/// Drops the coordinator-assigned `job` id so distributed and local
/// merged documents (which differ only in that field) compare equal.
fn strip_job_id(doc: &Value) -> Value {
    let Value::Obj(fields) = doc else {
        panic!("merged result is not an object");
    };
    Value::Obj(
        fields
            .iter()
            .filter(|(name, _)| name != "job")
            .cloned()
            .collect(),
    )
}

fn shutdown(coord: Coord, workers: Vec<Worker>) {
    coord.handle.shutdown();
    let _ = coord.thread.join().expect("coordinator thread");
    for worker in workers {
        worker.handle.shutdown();
        let _ = worker.thread.join().expect("worker thread");
    }
}

#[test]
fn three_workers_produce_bit_identical_suite_results() {
    let shared = scratch_dir("suite-shared");
    let workers: Vec<Worker> = (0..3)
        .map(|i| start_worker(&shared, &format!("suite-w{i}")))
        .collect();
    let coord = start_coord(&shared, &workers.iter().collect::<Vec<_>>());

    let submission = r#"{"suite":["c17","s27","c17"],"fc":2.5e8,"steps":6}"#;
    let (status, body) = http(&coord.addr, "POST", "/jobs", submission);
    assert_eq!(status, 202, "{body}");
    let id = json::parse(&body)
        .unwrap()
        .as_obj("accepted")
        .and_then(|o| o.req("id"))
        .and_then(|v| v.as_u64("id"))
        .unwrap();

    let doc = await_job(&coord.addr, id, Duration::from_secs(120));
    let obj = doc.as_obj("status").unwrap();
    assert_eq!(obj.req("status").unwrap().as_str("s").unwrap(), "done");
    assert_eq!(completed_of(&doc), 3, "no shard may be lost");
    let distributed = obj.req("result").unwrap();

    // Single-process reference: the exact same shard plan, sequentially.
    let spec = CoordSpec::from_json(&json::parse(submission).unwrap()).unwrap();
    let (local, local_stats) = merge::run_local(&spec, 50_000).unwrap();
    assert_eq!(
        strip_job_id(distributed).render(),
        strip_job_id(&local).render(),
        "distributed merge must be bit-identical to the local run"
    );
    assert_eq!(
        merge::stats_of(distributed).unwrap(),
        local_stats,
        "merged deterministic stats must match"
    );

    // The aggregate endpoints answer while everything is still up.
    let (status, metrics) = http(&coord.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"workers\""), "{metrics}");
    let (status, _) = http(&coord.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    // The NDJSON event stream replays to the terminal `end` event.
    let (status, events) = http(&coord.addr, "GET", &format!("/jobs/{id}/events"), "");
    assert_eq!(status, 200);
    assert!(events.lines().any(|l| l.contains("\"end\"")), "{events}");

    shutdown(coord, workers);
}

#[test]
fn killing_a_worker_mid_run_reassigns_its_shards() {
    let shared = scratch_dir("kill-shared");
    let mut workers: Vec<Worker> = (0..3)
        .map(|i| start_worker(&shared, &format!("kill-w{i}")))
        .collect();
    let coord = start_coord(&shared, &workers.iter().collect::<Vec<_>>());

    // 1 optimize shard + 12 trial shards: enough work that every worker
    // holds shards when one of them dies.
    let submission = r#"{"circuit":"c17","fc":2.5e8,"steps":6,
        "yield":{"sigma":0.08,"samples":96,"seed":3,"shard_size":8}}"#;
    let (status, body) = http(&coord.addr, "POST", "/jobs", submission);
    assert_eq!(status, 202, "{body}");
    let id = json::parse(&body)
        .unwrap()
        .as_obj("accepted")
        .and_then(|o| o.req("id"))
        .and_then(|v| v.as_u64("id"))
        .unwrap();

    // Wait until the fan-out happened and at least one trial shard is in
    // flight, then pull the plug on a worker.
    let started = Instant::now();
    loop {
        let (_, body) = http(&coord.addr, "GET", &format!("/jobs/{id}"), "");
        let doc = json::parse(&body).unwrap();
        if completed_of(&doc) >= 2 {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "fan-out never progressed: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let victim = workers.remove(0);
    victim.handle.kill();
    let _ = victim.thread.join().expect("victim thread");

    let doc = await_job(&coord.addr, id, Duration::from_secs(120));
    let obj = doc.as_obj("status").unwrap();
    assert_eq!(
        obj.req("status").unwrap().as_str("s").unwrap(),
        "done",
        "losing one of three workers must not fail the job: {:?}",
        obj.opt("error").map(Value::render)
    );
    assert_eq!(completed_of(&doc), 13, "every shard must complete");
    let distributed = obj.req("result").unwrap();

    let spec = CoordSpec::from_json(&json::parse(submission).unwrap()).unwrap();
    let (local, local_stats) = merge::run_local(&spec, 50_000).unwrap();
    assert_eq!(
        strip_job_id(distributed).render(),
        strip_job_id(&local).render(),
        "reassigned shards must still merge bit-identically"
    );
    assert_eq!(merge::stats_of(distributed).unwrap(), local_stats);

    // The survivors keep the coordinator healthy (degraded only when
    // *every* worker is gone).
    let (status, health) = http(&coord.addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{health}");

    shutdown(coord, workers);
}
