//! Property-based tests spanning crates: invariants that must hold on
//! arbitrary generated circuits, not just the curated suite.
//!
//! Requires the external `proptest` crate: compiled only with the
//! `proptest` feature enabled (offline builds skip it).
#![cfg(feature = "proptest")]

use minpower::opt::budget::{assign_max_delays, longest_budget_path};
use minpower::timing::{Criticality, KMostCriticalPaths, Sta};
use minpower::{Activities, CircuitModel, Design, InputActivity, Technology};
use minpower_circuits::{synthesize, BenchmarkSpec};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = BenchmarkSpec> {
    (
        2usize..=8,
        10usize..=80,
        2usize..=10,
        1usize..=20,
        any::<u64>(),
    )
        .prop_map(|(depth, extra, inputs, outputs, seed)| {
            let gates = depth + extra;
            let mut spec = BenchmarkSpec::new("prop", gates, inputs, outputs, depth);
            spec.seed = seed;
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_circuits_have_requested_shape(spec in spec_strategy()) {
        let n = synthesize(&spec).unwrap();
        prop_assert_eq!(n.logic_gate_count(), spec.gates);
        prop_assert_eq!(n.inputs().len(), spec.inputs);
        prop_assert_eq!(n.depth(), spec.depth);
        prop_assert!(!n.outputs().is_empty());
    }

    #[test]
    fn bench_round_trip_preserves_structure(spec in spec_strategy()) {
        let n = synthesize(&spec).unwrap();
        let text = minpower::netlist::bench::write(&n);
        let back = minpower::netlist::bench::parse(n.name(), &text).expect("round trip");
        prop_assert_eq!(back.gate_count(), n.gate_count());
        prop_assert_eq!(back.depth(), n.depth());
        prop_assert_eq!(back.outputs().len(), n.outputs().len());
    }

    #[test]
    fn budgets_never_oversubscribe_any_path(spec in spec_strategy(), tc_ns in 1.0f64..20.0) {
        let n = synthesize(&spec).unwrap();
        let tc = tc_ns * 1e-9;
        let budgets = assign_max_delays(&n, tc);
        prop_assert!(longest_budget_path(&n, &budgets) <= tc * (1.0 + 1e-9));
        for (i, g) in n.gates().iter().enumerate() {
            if g.fanin().is_empty() {
                prop_assert_eq!(budgets[i], 0.0);
            } else {
                prop_assert!(budgets[i] > 0.0, "gate {} starved", g.name());
            }
        }
    }

    #[test]
    fn most_critical_path_agrees_between_dp_and_enumeration(spec in spec_strategy()) {
        let n = synthesize(&spec).unwrap();
        let dp = Criticality::compute(&n);
        let first = KMostCriticalPaths::new(&n).next().expect("at least one path");
        prop_assert_eq!(first.criticality, dp.max_criticality());
    }

    #[test]
    fn enumeration_is_non_increasing(spec in spec_strategy()) {
        let n = synthesize(&spec).unwrap();
        let paths: Vec<_> = KMostCriticalPaths::new(&n).take(25).collect();
        for w in paths.windows(2) {
            prop_assert!(w[0].criticality >= w[1].criticality);
        }
    }

    #[test]
    fn sta_is_consistent_with_model_evaluation(
        spec in spec_strategy(),
        vdd in 0.9f64..3.3,
        vt in 0.15f64..0.5,
        w in 1.0f64..40.0,
    ) {
        let n = synthesize(&spec).unwrap();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        let design = Design::uniform(&n, vdd, vt, w);
        let eval = model.evaluate(&design, 3.0e8);
        let delays: Vec<f64> = eval.gates.iter().map(|g| g.delay).collect();
        let sta = Sta::analyze(&n, &delays, 1.0);
        // STA over the model's delays reproduces the model's own arrivals.
        prop_assert!((sta.critical_delay() - eval.critical_delay).abs()
            <= 1e-12 * eval.critical_delay.max(1e-30));
    }

    #[test]
    fn activities_stay_physical_on_generated_circuits(spec in spec_strategy()) {
        let n = synthesize(&spec).unwrap();
        let profile = InputActivity::uniform(0.5, 0.4, n.inputs().len());
        let acts = Activities::propagate(&n, &profile);
        for &p in acts.probabilities() {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        for &d in acts.densities() {
            prop_assert!(d >= 0.0 && d.is_finite());
        }
    }

    #[test]
    fn bdd_probabilities_match_propagation_exactness_contract(spec in spec_strategy()) {
        use minpower::activity::exact;
        let n = synthesize(&spec).unwrap();
        if n.inputs().len() > 10 {
            return Ok(()); // keep the enumeration cross-check cheap
        }
        let probs = vec![0.5; n.inputs().len()];
        let by_enum = exact::probabilities(&n, &probs);
        let by_bdd = exact::probabilities_bdd(&n, &probs).expect("small circuits fit");
        for i in 0..n.gate_count() {
            prop_assert!((by_enum[i] - by_bdd[i]).abs() < 1e-12,
                "gate {i}: enum {} vs bdd {}", by_enum[i], by_bdd[i]);
        }
    }

    #[test]
    fn bdd_sat_count_matches_truth_table(spec in spec_strategy()) {
        use minpower::bdd::{build_outputs, Bdd};
        let n = synthesize(&spec).unwrap();
        let n_in = n.inputs().len();
        if n_in > 10 {
            return Ok(());
        }
        let mut bdd = Bdd::new(n_in);
        let nodes = build_outputs(&mut bdd, &n).expect("small circuits fit");
        // Count satisfying assignments of the first primary output by
        // brute force and compare.
        let out = n.outputs()[0];
        let mut count = 0u64;
        for bits in 0..(1u64 << n_in) {
            let assignment: Vec<bool> = (0..n_in).map(|k| bits >> k & 1 == 1).collect();
            if n.evaluate(&assignment)[out.index()] {
                count += 1;
            }
        }
        prop_assert_eq!(bdd.sat_count(nodes[out.index()]) as u64, count);
    }

    #[test]
    fn verilog_round_trip_preserves_function(spec in spec_strategy()) {
        use minpower::netlist::transform::equivalent_by_simulation;
        let n = synthesize(&spec).unwrap();
        let text = minpower::netlist::verilog::write(&n);
        let back = minpower::netlist::verilog::parse(&text).expect("round trip");
        prop_assert_eq!(back.logic_gate_count(), n.logic_gate_count());
        // Generator names never start with digits, so ports are stable
        // across the write→parse cycle and behavior must match.
        prop_assert!(equivalent_by_simulation(&n, &back, 64, spec.seed | 7));
    }

    #[test]
    fn transforms_preserve_function_on_generated_circuits(spec in spec_strategy()) {
        use minpower::netlist::transform::{
            buffer_high_fanout, decompose_wide_gates, equivalent_by_simulation,
            max_fanin, max_fanout, sweep_dead_logic,
        };
        let n = synthesize(&spec).unwrap();
        let (decomposed, _) = decompose_wide_gates(&n, 2).expect("decompose");
        prop_assert!(max_fanin(&decomposed) <= 2);
        prop_assert!(equivalent_by_simulation(&n, &decomposed, 64, spec.seed | 1));

        let (buffered, _) = buffer_high_fanout(&n, 3).expect("buffer");
        prop_assert!(max_fanout(&buffered) <= 3);
        prop_assert!(equivalent_by_simulation(&n, &buffered, 64, spec.seed | 3));

        let (swept, removed) = sweep_dead_logic(&n).expect("sweep");
        prop_assert!(equivalent_by_simulation(&n, &swept, 64, spec.seed | 5));
        prop_assert_eq!(swept.logic_gate_count() + removed, n.logic_gate_count());
    }

    #[test]
    fn event_simulation_respects_sta_bound(
        spec in spec_strategy(),
        vdd in 1.0f64..3.3,
        vt in 0.2f64..0.5,
    ) {
        use minpower::timing::{EventSimulator, Sta};
        let n = synthesize(&spec).unwrap();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        let design = Design::uniform(&n, vdd, vt, 8.0);
        let eval = model.evaluate(&design, 3.0e8);
        let delays: Vec<f64> = eval.gates.iter().map(|g| g.delay).collect();
        if delays.iter().any(|d| !d.is_finite()) {
            return Ok(()); // non-functional operating point
        }
        let sta = Sta::analyze(&n, &delays, 1.0);
        let sim = EventSimulator::new(&n, &delays);
        let (worst, _) = sim.random_transitions(32, spec.seed);
        prop_assert!(
            worst <= sta.critical_delay() * (1.0 + 1e-12),
            "event sim {worst} exceeds STA {}",
            sta.critical_delay()
        );
    }

    #[test]
    fn energy_is_positive_and_finite_wherever_drive_exists(
        spec in spec_strategy(),
        vdd in 0.5f64..3.3,
        vt in 0.1f64..0.6,
        w in 1.0f64..100.0,
    ) {
        let n = synthesize(&spec).unwrap();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        let design = Design::uniform(&n, vdd, vt, w);
        let e = model.total_energy(&design, 3.0e8);
        prop_assert!(e.static_ > 0.0 && e.static_.is_finite());
        prop_assert!(e.dynamic > 0.0 && e.dynamic.is_finite());
    }
}
