//! Overload chaos drill: greedy keep-alive clients hammer a
//! rate-limited 1-worker server, honoring `Retry-After` on `429`.
//!
//! The load-bearing claims:
//!
//! * **no starvation** — every greedy client reaches its op target
//!   within the drill deadline (per-session token buckets keep one
//!   client from locking out the rest);
//! * **bounded latency** — the session-op p99 from `/metrics` stays
//!   under a generous bound even while the limiter is rejecting;
//! * **kill/restart identity** — after the soak, a killed-and-restarted
//!   server replays every acknowledged op to a bit-identical state.
//!
//! Runs in smoke mode by default (small op targets) so CI stays fast;
//! the same drill shape scales by turning up the constants.

#![cfg(not(feature = "faults"))]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use minpower::opt::json::{self, Value};
use minpower::opt::session::{SessionOp, SessionParams, SessionState};
use minpower_serve::{Config, DrainOutcome, Server, ServerHandle};

// ---------------------------------------------------------------- helpers

const CLIENTS: usize = 4;
const OPS_PER_CLIENT: u64 = 12;
const DRILL_DEADLINE: Duration = Duration::from_secs(60);
/// Upper bound on the op p99 (µs). Warm c17 ops run in well under a
/// millisecond; the bound only has to catch pathological lock convoys.
const P99_BOUND_US: u64 = 500_000;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minpower-soak-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<DrainOutcome>,
}

fn start(config: Config) -> TestServer {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        thread,
    }
}

impl TestServer {
    fn shutdown(self) -> DrainOutcome {
        self.handle.shutdown();
        self.thread.join().expect("server thread")
    }

    fn kill(self) -> DrainOutcome {
        self.handle.kill();
        self.thread.join().expect("server thread")
    }
}

/// One keep-alive connection issuing sequential requests.
struct KeepAliveClient {
    stream: TcpStream,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        KeepAliveClient { stream }
    }

    /// Returns (status, Retry-After seconds if present, body).
    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Option<u64>, Value) {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(raw.as_bytes()).expect("write");
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            let n = self.stream.read(&mut byte).expect("read head");
            assert!(n == 1, "connection closed mid-head: {head:?}");
            head.push(byte[0]);
        }
        let head = String::from_utf8_lossy(&head).to_string();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line in {head:?}"));
        let retry_after = head.lines().find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("retry-after")
                .then(|| value.trim().parse().ok())?
        });
        let length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .unwrap_or_else(|| panic!("no Content-Length in {head:?}"));
        let mut body = vec![0u8; length];
        self.stream.read_exact(&mut body).expect("read body");
        let text = String::from_utf8(body).expect("UTF-8 body");
        (
            status,
            retry_after,
            json::parse(&text).unwrap_or_else(|e| panic!("bad JSON {text:?}: {e}")),
        )
    }
}

fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).to_string();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    (status, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn parse_body(body: &str) -> Value {
    json::parse(body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e}"))
}

fn field<'a>(value: &'a Value, name: &str) -> &'a Value {
    value
        .as_obj("response")
        .expect("object")
        .req(name)
        .unwrap_or_else(|e| panic!("{e} in {}", value.render()))
}

fn u64_field(value: &Value, name: &str) -> u64 {
    field(value, name).as_u64(name).expect("u64 field")
}

fn state_doc(addr: SocketAddr, id: u64) -> String {
    let (status, body) = get(addr, &format!("/sessions/{id}?detail=gates"));
    assert_eq!(status, 200, "{body}");
    field(&parse_body(&body), "state").render()
}

fn cold_replay_doc(ops: &[SessionOp]) -> String {
    let state = SessionState::replay(minpower::circuits::c17(), &SessionParams::default(), ops)
        .expect("cold replay");
    state.snapshot().render()
}

// ------------------------------------------------------------------ drill

/// The op width each (client, op-index) pair applies — deterministic,
/// so the cold replay can be reconstructed exactly.
fn drill_width(client: usize, i: u64) -> f64 {
    2.0 + client as f64 * 0.5 + i as f64 * 0.03125
}

#[test]
fn greedy_clients_progress_fairly_and_state_survives_kill() {
    let state_dir = scratch_dir("drill");
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ops_rate: 20.0,
        ops_burst: 5.0,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    let addr = server.addr;

    // Each greedy client owns a session and hammers it over one
    // keep-alive connection with zero think time, sleeping only when
    // the limiter says so.
    let started = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut conn = KeepAliveClient::connect(addr);
                let (status, _, body) = conn.request("POST", "/sessions", r#"{"circuit":"c17"}"#);
                assert_eq!(status, 201, "{}", body.render());
                let id = u64_field(&body, "id");
                let mut acked = 0u64;
                let mut rejected = 0u64;
                while acked < OPS_PER_CLIENT {
                    assert!(
                        started.elapsed() < DRILL_DEADLINE,
                        "client {client} starved: {acked}/{OPS_PER_CLIENT} ops \
                         ({rejected} rejections)"
                    );
                    let op = format!(
                        r#"{{"op":"resize","gate":"10","width":{}}}"#,
                        drill_width(client, acked)
                    );
                    let (status, retry, body) =
                        conn.request("POST", &format!("/sessions/{id}/ops"), &op);
                    match status {
                        200 => acked += 1,
                        429 => {
                            rejected += 1;
                            let secs = retry.expect("429 must carry Retry-After");
                            std::thread::sleep(Duration::from_secs(secs.min(2)));
                        }
                        other => panic!("client {client}: status {other}: {}", body.render()),
                    }
                }
                (id, acked, rejected)
            })
        })
        .collect();
    let results: Vec<(u64, u64, u64)> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    // No starvation: every client reached its target (the per-thread
    // deadline assert would have fired otherwise). The limiter really
    // pushed back on someone.
    let total_rejected: u64 = results.iter().map(|r| r.2).sum();
    assert!(
        total_rejected >= 1,
        "greedy clients at 4×20 ops/s never hit a 20/s bucket?"
    );

    // Bounded op latency under overload, from the server's own metrics.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = parse_body(&body);
    let p99 = u64_field(field(&metrics, "sessions"), "op_p99_us");
    assert!(p99 > 0, "{body}");
    assert!(p99 <= P99_BOUND_US, "op p99 {p99}µs over bound: {body}");
    assert!(
        u64_field(field(&metrics, "govern"), "rate_limited_ops") >= total_rejected,
        "{body}"
    );

    // Power loss after the soak: every acknowledged op must replay.
    let live: Vec<(u64, String)> = results
        .iter()
        .map(|&(id, _, _)| (id, state_doc(addr, id)))
        .collect();
    assert_eq!(server.kill(), DrainOutcome::JobsInterrupted);

    let second = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir,
        ..Config::default()
    });
    for (client, &(id, acked, _)) in results.iter().enumerate() {
        let recovered = state_doc(second.addr, id);
        let (_, live_doc) = &live[client];
        assert_eq!(
            &recovered, live_doc,
            "client {client} session {id} diverged across kill/restart"
        );
        // And the restart state equals a cold replay of exactly the
        // acknowledged ops — nothing lost, nothing invented.
        let cold: Vec<SessionOp> = (0..acked)
            .map(|i| SessionOp::Resize {
                gate: "10".into(),
                width: drill_width(client, i),
            })
            .collect();
        assert_eq!(recovered, cold_replay_doc(&cold), "client {client}");
    }
    assert_eq!(second.shutdown(), DrainOutcome::Clean);
}
