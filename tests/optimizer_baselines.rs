//! Cross-method comparisons: heuristic vs annealing, variation margining,
//! skew derating, budget policies, and multi-threshold operation.

use minpower::opt::budget::BudgetPolicy;
use minpower::opt::{anneal, baseline, variation};
use minpower::{CircuitModel, Optimizer, Problem, SearchOptions, Technology};

const FC: f64 = 300.0e6;

fn problem(name: &str, activity: f64) -> Problem {
    let netlist = minpower::circuits::circuit(name).expect("suite circuit");
    let model = CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, activity);
    Problem::new(model, FC)
}

#[test]
fn heuristic_beats_annealing_at_matched_budget() {
    // §5: annealing does not converge at this problem size; at an equal
    // evaluation budget the heuristic's energy is at least as good.
    let p = problem("s298", 0.3);
    let h = Optimizer::new(&p).run().unwrap();
    let a = anneal::optimize(
        &p,
        anneal::AnnealOptions {
            max_evaluations: h.evaluations.max(500),
            ..anneal::AnnealOptions::default()
        },
    )
    .unwrap();
    assert!(
        h.energy.total() <= a.energy.total() * 1.02,
        "heuristic {:.3e} vs anneal {:.3e}",
        h.energy.total(),
        a.energy.total()
    );
}

#[test]
fn variation_margining_erodes_savings_monotonically() {
    // Fig. 2(a): worst-case Vt margining costs energy, progressively.
    let p = problem("s298", 0.3);
    let e0 = variation::optimize_with_tolerance(&p, 0.0)
        .unwrap()
        .energy
        .total();
    let e15 = variation::optimize_with_tolerance(&p, 0.15)
        .unwrap()
        .energy
        .total();
    let e30 = variation::optimize_with_tolerance(&p, 0.30)
        .unwrap()
        .energy
        .total();
    assert!(e15 >= e0 * 0.999, "{e15:.3e} < {e0:.3e}");
    assert!(e30 >= e15 * 0.999, "{e30:.3e} < {e15:.3e}");
    assert!(e30 > e0, "margining at 30% should cost energy");
}

#[test]
fn margined_design_survives_the_slow_corner() {
    let p = problem("s298", 0.3);
    let tol = 0.25;
    let r = variation::optimize_with_tolerance(&p, tol).unwrap();
    let mut slow = r.design.clone();
    for v in &mut slow.vt {
        *v *= 1.0 + tol;
    }
    let eval = p.model().evaluate(&slow, FC);
    assert!(
        eval.critical_delay <= p.cycle_time() * (1.0 + 1e-6),
        "slow corner delay {:.3e}",
        eval.critical_delay
    );
}

#[test]
fn skew_reserve_erodes_savings() {
    // Fig. 2(b): reserving cycle time for clock skew tightens the logic
    // budget and shrinks the achievable savings.
    let savings_at = |skew_reserve: f64| {
        let netlist = minpower::circuits::circuit("s298").expect("suite circuit");
        let model = CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, 0.3);
        let p = Problem::new(model, FC).with_clock_skew(1.0 - skew_reserve);
        let b = baseline::optimize_fixed_vt(&p, 0.7, SearchOptions::default())
            .unwrap()
            .energy
            .total();
        let j = Optimizer::new(&p).run().unwrap().energy.total();
        b / j
    };
    let s0 = savings_at(0.0);
    let s30 = savings_at(0.30);
    assert!(
        s0 >= s30 * 0.9,
        "savings with no skew reserve {s0:.2} far below 30% reserve {s30:.2}"
    );
    assert!(s30 > 1.0, "joint must still win under a 30% reserve");
}

#[test]
fn savings_factor_is_insensitive_to_budget_policy() {
    // Ablation finding (recorded in EXPERIMENTS.md): in this wire-
    // dominated load regime a uniform cycle-time split yields lower
    // absolute energy than the paper's fanout-proportional rule — for the
    // baseline AND the joint optimizer alike — so the headline savings
    // factor barely moves. Both policies must produce feasible designs
    // and comparable savings.
    let p = problem("s298", 0.3);
    let savings = |policy| {
        let opts = SearchOptions {
            budget_policy: policy,
            ..SearchOptions::default()
        };
        let b = baseline::optimize_fixed_vt(&p, 0.7, opts.clone())
            .unwrap()
            .energy
            .total();
        let j = Optimizer::new(&p)
            .with_options(opts)
            .run()
            .unwrap()
            .energy
            .total();
        b / j
    };
    let s_fanout = savings(BudgetPolicy::FanoutWeighted);
    let s_uniform = savings(BudgetPolicy::Uniform);
    assert!(s_fanout > 2.0 && s_uniform > 2.0);
    let ratio = s_fanout / s_uniform;
    assert!(
        (0.5..2.0).contains(&ratio),
        "savings diverge across policies: {s_fanout:.2} vs {s_uniform:.2}"
    );
}

#[test]
fn multi_threshold_never_hurts() {
    let p = problem("s344", 0.3);
    let single = Optimizer::new(&p).run().unwrap();
    for nv in [2, 3] {
        let multi = Optimizer::new(&p)
            .with_options(SearchOptions {
                vt_groups: nv,
                ..SearchOptions::default()
            })
            .run()
            .unwrap();
        assert!(
            multi.energy.total() <= single.energy.total() * (1.0 + 1e-9),
            "n_v={nv}: {:.3e} vs single {:.3e}",
            multi.energy.total(),
            single.energy.total()
        );
    }
}

#[test]
fn annealing_is_reproducible_and_bounded() {
    let p = problem("s27", 0.3);
    let opts = anneal::AnnealOptions {
        max_evaluations: 2_000,
        ..anneal::AnnealOptions::default()
    };
    let a = anneal::optimize(&p, opts.clone()).unwrap();
    let b = anneal::optimize(&p, opts.clone()).unwrap();
    assert_eq!(a.design, b.design);
    assert!(a.evaluations <= opts.max_evaluations + 2);
}
