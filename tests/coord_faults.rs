//! The `coord.worker.lost` fault drill: every worker endpoint's first
//! shard dispatch connects and then drops without sending the request —
//! the network-drop flavor of losing a worker. The coordinator must
//! observe each drop as a transient failure, release the lease, requeue
//! the shard, and still merge a final result bit-identical to the
//! single-process reference.
//!
//! The fault registry is process-global, so this drill runs in its own
//! test binary and (like the other drills) under `--test-threads=1`.

#![cfg(feature = "faults")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use minpower_coord::{merge, spec::CoordSpec, CoordServer};
use minpower_core::json::{self, Value};
use minpower_engine::faults;
use minpower_serve::{Server, ServerHandle};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minpower-coord-fault-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn start_worker(
    shared: &Path,
    name: &str,
) -> (
    String,
    ServerHandle,
    std::thread::JoinHandle<minpower_serve::DrainOutcome>,
) {
    let server = Server::bind(minpower_serve::Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir(name),
        worker: true,
        shared_dir: Some(shared.to_path_buf()),
        ..minpower_serve::Config::default()
    })
    .expect("bind worker");
    let addr = server.local_addr().expect("worker addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let split = text.find("\r\n\r\n").expect("header terminator");
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    (status, text[split + 4..].to_string())
}

fn strip_job_id(doc: &Value) -> Value {
    let Value::Obj(fields) = doc else {
        panic!("merged result is not an object");
    };
    Value::Obj(
        fields
            .iter()
            .filter(|(name, _)| name != "job")
            .cloned()
            .collect(),
    )
}

#[test]
fn dropped_dispatches_are_reassigned_and_merge_bit_identically() {
    let shared = scratch_dir("lost-shared");
    let workers: Vec<_> = (0..3)
        .map(|i| start_worker(&shared, &format!("lost-w{i}")))
        .collect();

    // Every endpoint's dispatch 0 connects and drops: with three shards
    // queued at submit, each dispatcher loses its first shard and must
    // requeue it (possibly onto a sibling).
    faults::arm("coord.worker.lost", faults::Trigger::OnIndices(vec![0]));

    let server = CoordServer::bind(minpower_coord::Config {
        addr: "127.0.0.1:0".into(),
        workers: workers.iter().map(|(addr, _, _)| addr.clone()).collect(),
        store_dir: shared.clone(),
        lease_ttl: 5.0,
        dispatch_timeout: 120.0,
        ..minpower_coord::Config::default()
    })
    .expect("bind coordinator");
    let coord_addr = server.local_addr().expect("coord addr").to_string();
    let coord_handle = server.handle();
    let coord_thread = std::thread::spawn(move || server.run());

    let submission = r#"{"suite":["c17","s27","c17"],"fc":2.5e8,"steps":6}"#;
    let (status, body) = http(&coord_addr, "POST", "/jobs", submission);
    assert_eq!(status, 202, "{body}");

    // Await the terminal state.
    let started = Instant::now();
    let doc = loop {
        let (status, body) = http(&coord_addr, "GET", "/jobs/1", "");
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        let state = doc
            .as_obj("status")
            .and_then(|o| o.req("status"))
            .and_then(|v| v.as_str("status"))
            .unwrap()
            .to_string();
        if state != "running" {
            break doc;
        }
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "job wedged: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    assert!(
        faults::fired_count("coord.worker.lost") >= 1,
        "the drill never fired"
    );
    faults::disarm("coord.worker.lost");

    let obj = doc.as_obj("status").unwrap();
    assert_eq!(
        obj.req("status").unwrap().as_str("s").unwrap(),
        "done",
        "dropped dispatches must not fail the job: {:?}",
        obj.opt("error").map(Value::render)
    );
    assert_eq!(
        obj.req("completed").unwrap().as_u64("completed").unwrap(),
        3,
        "no shard may be lost"
    );
    let distributed = obj.req("result").unwrap();

    let spec = CoordSpec::from_json(&json::parse(submission).unwrap()).unwrap();
    let (local, local_stats) = merge::run_local(&spec, 50_000).unwrap();
    assert_eq!(
        strip_job_id(distributed).render(),
        strip_job_id(&local).render(),
        "post-fault merge must be bit-identical to the local run"
    );
    assert_eq!(merge::stats_of(distributed).unwrap(), local_stats);

    coord_handle.shutdown();
    let _ = coord_thread.join().expect("coordinator thread");
    for (_, handle, thread) in workers {
        handle.shutdown();
        let _ = thread.join().expect("worker thread");
    }
}
