//! Network-chaos drills for the coordinator's RPC resilience layer:
//! deterministic `net.*` faults (refused connects, truncated responses,
//! read stalls, partitions) plus a killed worker, all while a job is in
//! flight. Every drill must end with a merged result **bit-identical**
//! to the single-process reference — resilience may never buy liveness
//! at the cost of determinism.
//!
//! The fault registry is process-global, so these drills run in their
//! own test binary under `--test-threads=1` (see the `network-chaos`
//! CI job).

#![cfg(feature = "faults")]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use minpower_coord::{merge, spec::CoordSpec, CoordServer};
use minpower_core::json::{self, Value};
use minpower_engine::faults;
use minpower_serve::{DrainOutcome, Server, ServerHandle};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minpower-coord-chaos-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct Worker {
    addr: String,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<DrainOutcome>,
}

fn start_worker(shared: &Path, name: &str) -> Worker {
    let server = Server::bind(minpower_serve::Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir(name),
        worker: true,
        shared_dir: Some(shared.to_path_buf()),
        ..minpower_serve::Config::default()
    })
    .expect("bind worker");
    let addr = server.local_addr().expect("worker addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    Worker {
        addr,
        handle,
        thread,
    }
}

struct Coord {
    addr: String,
    handle: minpower_coord::CoordHandle,
    thread: std::thread::JoinHandle<DrainOutcome>,
}

fn start_coord(config: minpower_coord::Config) -> Coord {
    let server = CoordServer::bind(config).expect("bind coordinator");
    let addr = server.local_addr().expect("coord addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    Coord {
        addr,
        handle,
        thread,
    }
}

fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let split = text.find("\r\n\r\n").expect("header terminator");
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    (status, text[split + 4..].to_string())
}

fn submit(coord: &str, submission: &str) -> u64 {
    let (status, body) = http(coord, "POST", "/jobs", submission);
    assert_eq!(status, 202, "{body}");
    json::parse(&body)
        .unwrap()
        .as_obj("accepted")
        .and_then(|o| o.req("id"))
        .and_then(|v| v.as_u64("id"))
        .unwrap()
}

/// Polls `GET /jobs/{id}` until the job is terminal (or the deadline
/// passes); returns the final status document.
fn await_job(coord: &str, id: u64, deadline: Duration) -> Value {
    let started = Instant::now();
    loop {
        let (status, body) = http(coord, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).expect("status json");
        let state = doc
            .as_obj("status")
            .and_then(|o| o.req("status"))
            .and_then(|v| v.as_str("status"))
            .unwrap()
            .to_string();
        if state != "running" {
            return doc;
        }
        assert!(
            started.elapsed() < deadline,
            "job {id} still running after {deadline:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn completed_of(doc: &Value) -> u64 {
    doc.as_obj("status")
        .and_then(|o| o.req("completed"))
        .and_then(|v| v.as_u64("completed"))
        .unwrap()
}

fn strip_job_id(doc: &Value) -> Value {
    let Value::Obj(fields) = doc else {
        panic!("merged result is not an object");
    };
    Value::Obj(
        fields
            .iter()
            .filter(|(name, _)| name != "job")
            .cloned()
            .collect(),
    )
}

/// Asserts the terminal document is `done` with `shards` completed
/// shards, then checks bit-identity against the local reference run.
fn assert_bit_identical(doc: &Value, submission: &str, shards: u64) {
    let obj = doc.as_obj("status").unwrap();
    assert_eq!(
        obj.req("status").unwrap().as_str("s").unwrap(),
        "done",
        "chaos must not fail the job: {:?}",
        obj.opt("error").map(Value::render)
    );
    assert_eq!(completed_of(doc), shards, "no shard may be lost");
    let distributed = obj.req("result").unwrap();
    let spec = CoordSpec::from_json(&json::parse(submission).unwrap()).unwrap();
    let (local, local_stats) = merge::run_local(&spec, 50_000).unwrap();
    assert_eq!(
        strip_job_id(distributed).render(),
        strip_job_id(&local).render(),
        "post-chaos merge must be bit-identical to the local run"
    );
    assert_eq!(merge::stats_of(distributed).unwrap(), local_stats);
}

/// Reads one counter from the aggregate `/metrics` document's `rpc`
/// resilience section.
fn rpc_counter(coord: &str, name: &str) -> u64 {
    let (status, body) = http(coord, "GET", "/metrics", "");
    assert_eq!(status, 200, "{body}");
    json::parse(&body)
        .unwrap()
        .as_obj("metrics")
        .and_then(|o| o.req("rpc"))
        .and_then(|v| v.as_obj("rpc"))
        .and_then(|o| o.req(name))
        .and_then(|v| v.as_u64(name))
        .unwrap_or_else(|e| panic!("{name} missing from /metrics: {}\n{body}", e.message))
}

fn shutdown(coord: Coord, workers: Vec<Worker>) {
    coord.handle.shutdown();
    let _ = coord.thread.join().expect("coordinator thread");
    for worker in workers {
        worker.handle.shutdown();
        let _ = worker.thread.join().expect("worker thread");
    }
}

/// Refused connects and truncated responses are transient: the shard is
/// requeued with a backed-off retry (counted in `/metrics`) and the
/// merge stays bit-identical.
#[test]
fn refused_and_truncated_dispatches_back_off_and_retry() {
    let shared = scratch_dir("retry-shared");
    let workers: Vec<Worker> = (0..2)
        .map(|i| start_worker(&shared, &format!("retry-w{i}")))
        .collect();

    // Network dispatch 0 is refused outright; dispatch 2's response is
    // cut off mid-stream (indexed by the coordinator-wide `net_seq`, so
    // exactly one of each across the run).
    faults::arm("net.connect.refused", faults::Trigger::OnIndices(vec![0]));
    faults::arm(
        "net.response.truncated",
        faults::Trigger::OnIndices(vec![2]),
    );

    let coord = start_coord(minpower_coord::Config {
        addr: "127.0.0.1:0".into(),
        workers: workers.iter().map(|w| w.addr.clone()).collect(),
        store_dir: shared.clone(),
        lease_ttl: 5.0,
        dispatch_timeout: 120.0,
        ..minpower_coord::Config::default()
    });

    let submission = r#"{"suite":["c17","s27","c17"],"fc":2.5e8,"steps":6}"#;
    let id = submit(&coord.addr, submission);
    let doc = await_job(&coord.addr, id, Duration::from_secs(120));

    assert!(
        faults::fired_count("net.connect.refused") >= 1,
        "the refused-connect fault never fired"
    );
    assert!(
        faults::fired_count("net.response.truncated") >= 1,
        "the truncated-response fault never fired"
    );
    faults::disarm_all();

    assert_bit_identical(&doc, submission, 3);
    assert!(
        rpc_counter(&coord.addr, "retry_backoff") >= 2,
        "both injected transients must schedule a backed-off retry"
    );

    shutdown(coord, workers);
}

/// A dead endpoint (nothing listening) trips its circuit breaker: the
/// breaker-open count surfaces in `/metrics`, the endpoint's gauge
/// leaves `closed`, and the surviving worker still finishes the job.
#[test]
fn dead_endpoint_opens_its_breaker_and_survivors_finish() {
    let shared = scratch_dir("breaker-shared");
    let worker = start_worker(&shared, "breaker-w0");

    // A bound-then-dropped listener: a real address that refuses every
    // connect — no fault injection needed.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind dead endpoint");
        listener.local_addr().expect("dead addr").to_string()
    };

    let coord = start_coord(minpower_coord::Config {
        addr: "127.0.0.1:0".into(),
        workers: vec![worker.addr.clone(), dead_addr],
        store_dir: shared.clone(),
        lease_ttl: 5.0,
        dispatch_timeout: 120.0,
        backoff_base: 0.02,
        breaker_cooldown: 0.1,
        ..minpower_coord::Config::default()
    });

    let submission = r#"{"suite":["c17","s27","c17","s27","c17"],"fc":2.5e8,"steps":8}"#;
    let id = submit(&coord.addr, submission);
    let doc = await_job(&coord.addr, id, Duration::from_secs(120));

    assert_bit_identical(&doc, submission, 5);
    assert!(
        rpc_counter(&coord.addr, "breaker_open") >= 1,
        "the dead endpoint's breaker never opened"
    );

    // The per-worker gauge reports the breaker state by name.
    let (status, metrics) = http(&coord.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"breaker\""), "{metrics}");

    // One live worker remains, so the coordinator is degraded, not down.
    let (status, _) = http(&coord.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    shutdown(coord, vec![worker]);
}

/// The acceptance soak: a partition, a read stall, and a worker killed
/// mid-shard, against a job with a hard deadline. The stalled dispatch
/// is hedged to a second worker (counter visible in `/metrics`), the
/// job finishes inside its deadline, and the merge is bit-identical.
#[test]
fn partition_stall_and_killed_worker_finish_inside_the_deadline() {
    let shared = scratch_dir("soak-shared");
    let mut workers: Vec<Worker> = (0..3)
        .map(|i| start_worker(&shared, &format!("soak-w{i}")))
        .collect();

    // Dispatch 6 stalls (by then ≥3 latency samples exist, so the hedge
    // delay is armed and well under the 2 s injected stall); dispatch 9
    // black-holes like a partitioned endpoint.
    faults::arm("net.read.stall", faults::Trigger::OnIndices(vec![6]));
    faults::arm("net.partition", faults::Trigger::OnIndices(vec![9]));

    let coord = start_coord(minpower_coord::Config {
        addr: "127.0.0.1:0".into(),
        workers: workers.iter().map(|w| w.addr.clone()).collect(),
        store_dir: shared.clone(),
        lease_ttl: 5.0,
        dispatch_timeout: 6.0,
        connect_timeout: 1.0,
        hedge_delay_floor: 0.05,
        ..minpower_coord::Config::default()
    });

    // 1 optimize shard + 12 trial shards, under a 90-second job deadline
    // that rides every dispatch as `X-Minpower-Deadline`.
    let submission = r#"{"circuit":"c17","fc":2.5e8,"steps":6,"deadline":90,
        "yield":{"sigma":0.08,"samples":96,"seed":3,"shard_size":8}}"#;
    let id = submit(&coord.addr, submission);

    // Once the fan-out is under way, pull the plug on a worker.
    let started = Instant::now();
    loop {
        let (_, body) = http(&coord.addr, "GET", &format!("/jobs/{id}"), "");
        if completed_of(&json::parse(&body).unwrap()) >= 6 {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "fan-out never progressed: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let victim = workers.remove(0);
    victim.handle.kill();
    let _ = victim.thread.join().expect("victim thread");

    // `await_job`'s bound doubles as the deadline check: the job must
    // reach `done` (not `failed: deadline exceeded`) within the 90 s it
    // was submitted with.
    let doc = await_job(&coord.addr, id, Duration::from_secs(90));

    assert!(
        faults::fired_count("net.read.stall") >= 1,
        "the read-stall fault never fired"
    );
    assert!(
        faults::fired_count("net.partition") >= 1,
        "the partition fault never fired"
    );
    faults::disarm_all();

    assert_bit_identical(&doc, submission, 13);
    assert!(
        rpc_counter(&coord.addr, "hedge_fired") >= 1,
        "the stalled dispatch was never hedged"
    );
    // When a hedge wins, the job can finish while the stalled primary is
    // still asleep inside its injected fault — its transient failure
    // (and the backed-off retry it schedules) lands up to ~2 s later, so
    // poll rather than assert instantly.
    let waited = Instant::now();
    while rpc_counter(&coord.addr, "retry_backoff") < 1 {
        assert!(
            waited.elapsed() < Duration::from_secs(10),
            "the injected faults never scheduled a backed-off retry"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    shutdown(coord, workers);
}
