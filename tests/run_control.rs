//! Resilient-run-control acceptance tests: deadline/cancellation trips
//! return a valid (delay-feasible) best-so-far, checkpoint + resume
//! reproduces an uninterrupted run bit-identically, and every engine
//! entry point honors its [`minpower::RunControl`].

use std::path::PathBuf;
use std::sync::Arc;

use minpower::opt::runctl::TripReason;
use minpower::opt::{anneal, baseline, tilos, yield_mc};
use minpower::{
    CheckpointSpec, CircuitModel, EvalContext, Netlist, OptimizeError, Optimizer, Problem,
    RunControl, SearchOptions, Technology,
};

fn ripple(bits: usize) -> Netlist {
    use minpower::{GateKind, NetlistBuilder};
    let mut b = NetlistBuilder::new("ripple");
    b.input("c0").unwrap();
    let mut carry = "c0".to_string();
    for i in 0..bits {
        b.input(&format!("a{i}")).unwrap();
        b.input(&format!("b{i}")).unwrap();
        let g = format!("g{i}");
        let p = format!("p{i}");
        let c = format!("c{}", i + 1);
        b.gate(&g, GateKind::Nand, &[&format!("a{i}"), &format!("b{i}")])
            .unwrap();
        b.gate(&p, GateKind::Xor, &[&format!("a{i}"), &format!("b{i}")])
            .unwrap();
        let t = format!("t{i}");
        b.gate(&t, GateKind::Nand, &[&p, &carry]).unwrap();
        b.gate(&c, GateKind::Nand, &[&t, &g]).unwrap();
        let s = format!("s{i}");
        b.gate(&s, GateKind::Xor, &[&p, &carry]).unwrap();
        b.output(&s).unwrap();
        carry = c;
    }
    b.output(&carry).unwrap();
    b.finish().unwrap()
}

fn problem(netlist: &Netlist, fc: f64) -> Problem {
    let model = CircuitModel::with_uniform_activity(netlist, Technology::dac97(), 0.5, 0.3);
    Problem::new(model, fc)
}

/// A fresh, isolated single-thread engine with the cache on, so tests
/// don't share probe memos through the process-wide context.
fn fresh_engine() -> Arc<EvalContext> {
    Arc::new(EvalContext::new(
        1,
        minpower::opt::context::DEFAULT_CACHE_CAPACITY,
    ))
}

/// A scratch path under the target-adjacent temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("minpower-rc-{}-{name}", std::process::id()));
    p
}

#[test]
fn check_budget_trip_returns_feasible_best_so_far() {
    let n = ripple(4);
    let p = problem(&n, 100.0e6);
    // Enough polls to find feasible probes, far fewer than a full run.
    let control = RunControl::new().with_check_budget(25);
    let err = Optimizer::new(&p)
        .with_engine(fresh_engine())
        .with_run_control(control)
        .run()
        .unwrap_err();
    match err {
        OptimizeError::Interrupted {
            reason,
            best_so_far,
            progress,
        } => {
            assert_eq!(reason, TripReason::Cancelled);
            assert!(progress.evaluations > 0);
            let best = best_so_far.expect("25 probes find a feasible design on this circuit");
            assert!(best.feasible);
            assert!(best.energy.total().is_finite());
            // The partial result is genuinely valid: re-evaluating the
            // design reproduces a delay within the cycle time.
            let eval = p.model().evaluate(&best.design, p.fc());
            assert!(
                eval.critical_delay <= p.effective_cycle_time() * (1.0 + 1e-6),
                "best-so-far design misses timing: {} > {}",
                eval.critical_delay,
                p.effective_cycle_time()
            );
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

#[test]
fn pre_cancelled_run_stops_before_any_probe() {
    let n = ripple(3);
    let p = problem(&n, 150.0e6);
    let control = RunControl::new();
    control.cancel();
    let err = Optimizer::new(&p)
        .with_engine(fresh_engine())
        .with_run_control(control)
        .run()
        .unwrap_err();
    match err {
        OptimizeError::Interrupted {
            reason,
            best_so_far,
            progress,
        } => {
            assert_eq!(reason, TripReason::Cancelled);
            assert!(best_so_far.is_none());
            assert_eq!(progress.evaluations, 0);
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

#[test]
fn cancel_token_shared_across_clones() {
    let control = RunControl::new();
    let token = control.cancel_token();
    let clone = control.clone();
    token.store(true, std::sync::atomic::Ordering::Relaxed);
    assert!(clone.is_cancelled());
    assert_eq!(clone.trip(), Some(TripReason::Cancelled));
}

#[test]
fn search_checkpoint_resume_is_bit_identical() {
    let n = ripple(4);
    let p = problem(&n, 100.0e6);
    let path = scratch("search.ckpt");

    // Reference: one uninterrupted run on its own engine.
    let full = Optimizer::new(&p)
        .with_engine(fresh_engine())
        .run()
        .unwrap();

    // Interrupt an identical run partway through, snapshotting often.
    let err = Optimizer::new(&p)
        .with_engine(fresh_engine())
        .with_run_control(RunControl::new().with_check_budget(40))
        .with_checkpoint(CheckpointSpec::new(&path))
        .run()
        .unwrap_err();
    assert!(matches!(err, OptimizeError::Interrupted { .. }), "{err:?}");
    assert!(path.exists(), "interruption must leave a final snapshot");

    // Resume on a third engine: the journaled probes replay from cache
    // and the deterministic search finishes exactly as the full run did.
    let resumed = Optimizer::new(&p)
        .with_engine(fresh_engine())
        .resume_from(&path)
        .run()
        .unwrap();

    assert_eq!(full.design, resumed.design);
    assert_eq!(full.energy, resumed.energy);
    assert_eq!(
        full.critical_delay.to_bits(),
        resumed.critical_delay.to_bits()
    );
    assert_eq!(full.evaluations, resumed.evaluations);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn search_resume_rejects_mismatched_problem() {
    let n = ripple(3);
    let p = problem(&n, 150.0e6);
    let path = scratch("mismatch.ckpt");
    let err = Optimizer::new(&p)
        .with_engine(fresh_engine())
        .with_run_control(RunControl::new().with_check_budget(10))
        .with_checkpoint(CheckpointSpec::new(&path))
        .run()
        .unwrap_err();
    assert!(matches!(err, OptimizeError::Interrupted { .. }));

    // Same circuit, different clock: the salt differs, resume must refuse.
    let other = problem(&n, 200.0e6);
    let err = Optimizer::new(&other)
        .with_engine(fresh_engine())
        .resume_from(&path)
        .run()
        .unwrap_err();
    assert!(
        matches!(err, OptimizeError::Checkpoint { .. }),
        "expected Checkpoint error, got {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn anneal_checkpoint_resume_is_bit_identical() {
    let n = ripple(2);
    let p = problem(&n, 150.0e6);
    let opts = anneal::AnnealOptions {
        max_evaluations: 600,
        ..anneal::AnnealOptions::default()
    };
    let path = scratch("anneal.ckpt");

    let full = anneal::optimize(&p, opts.clone()).unwrap();

    let spec = CheckpointSpec::new(&path);
    let err = anneal::optimize_ctl(
        &p,
        opts.clone(),
        &RunControl::new().with_check_budget(150),
        Some(&spec),
        None,
    )
    .unwrap_err();
    match &err {
        OptimizeError::Interrupted { best_so_far, .. } => {
            assert!(best_so_far.is_some(), "annealer always has a best design");
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
    assert!(path.exists());

    let resumed = anneal::optimize_ctl(&p, opts, &RunControl::new(), None, Some(&path)).unwrap();
    assert_eq!(full.design, resumed.design);
    assert_eq!(full.energy, resumed.energy);
    assert_eq!(full.evaluations, resumed.evaluations);
    assert_eq!(full.feasible, resumed.feasible);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn baseline_honors_run_control() {
    let n = ripple(3);
    let p = problem(&n, 150.0e6);
    let err = baseline::optimize_fixed_vt_ctl(
        &p,
        0.7,
        SearchOptions::default(),
        &RunControl::new().with_check_budget(3),
    )
    .unwrap_err();
    match err {
        OptimizeError::Interrupted { best_so_far, .. } => {
            if let Some(best) = best_so_far {
                assert!(best.feasible);
            }
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

#[test]
fn tilos_honors_run_control() {
    let n = ripple(3);
    let p = problem(&n, 150.0e6);
    let err = tilos::size_greedy_ctl(
        &p,
        2.5,
        0.5,
        tilos::TilosOptions::default(),
        &RunControl::new().with_check_budget(1),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            OptimizeError::Interrupted {
                best_so_far: None,
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn yield_mc_honors_run_control_between_chunks() {
    let n = ripple(2);
    let p = problem(&n, 150.0e6);
    let r = Optimizer::new(&p)
        .with_engine(fresh_engine())
        .run()
        .unwrap();
    let ctx = EvalContext::new(1, 0);
    // Budget of 2 polls: the first chunk (64 trials) completes, the
    // second poll trips — progress reports whole chunks only.
    let err = yield_mc::timing_yield_ctl(
        &ctx,
        &p,
        &r.design,
        0.05,
        200,
        7,
        &RunControl::new().with_check_budget(2),
    )
    .unwrap_err();
    match err {
        OptimizeError::Interrupted { progress, .. } => {
            assert_eq!(progress.evaluations, 64);
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
    // And an untripped control reproduces the plain entry point.
    let plain = yield_mc::timing_yield_with(&ctx, &p, &r.design, 0.05, 200, 7);
    let ctl =
        yield_mc::timing_yield_ctl(&ctx, &p, &r.design, 0.05, 200, 7, &RunControl::new()).unwrap();
    assert_eq!(plain, ctl);
}

#[test]
fn validation_rejects_bad_problems_before_searching() {
    let n = ripple(2);
    for fc in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        let err = Problem::try_new(model, fc).unwrap_err();
        assert!(
            matches!(
                err,
                OptimizeError::BadOption {
                    option: "cycle_time",
                    ..
                }
            ),
            "fc = {fc}: {err:?}"
        );
    }
}
