//! Durable-store integration tests: corruption corpus, recovery audit,
//! degraded-mode operation, and a kill/corrupt/restart chaos soak.
//!
//! Two halves, like `service_http.rs`:
//!
//! * **without** `faults` — real on-disk corruption (truncations, bit
//!   flips, garbage) against real servers: every corrupt record is
//!   either recovered from its previous generation or quarantined with
//!   a reason file — never a panic, never a silently wrong resume;
//! * **with** `faults` — the injected-IO drills (`io.write.torn`,
//!   `io.write.short`, `io.fsync.fail`, `io.disk.full`,
//!   `checkpoint.corrupt`), including the disk-full degraded-mode
//!   state machine end to end over HTTP. Run these single-threaded
//!   (`--test-threads=1`): the fault registry is process-global.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use minpower::opt::checkpoint::Checkpoint;
use minpower::opt::json::{self, Value};
use minpower::opt::store;
use minpower::opt::OptimizeError;
use minpower_serve::{Config, DrainOutcome, Server, ServerHandle};

// ---------------------------------------------------------------- helpers

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minpower-store-it-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<DrainOutcome>,
}

fn start(config: Config) -> TestServer {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        thread,
    }
}

impl TestServer {
    fn shutdown(self) -> DrainOutcome {
        self.handle.shutdown();
        self.thread.join().expect("server thread")
    }

    fn kill(self) -> DrainOutcome {
        self.handle.kill();
        self.thread.join().expect("server thread")
    }
}

fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).to_string();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn parse_body(body: &str) -> Value {
    json::parse(body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e}"))
}

fn field<'a>(value: &'a Value, name: &str) -> &'a Value {
    value
        .as_obj("response")
        .expect("object")
        .req(name)
        .unwrap_or_else(|e| panic!("{e} in {}", value.render()))
}

fn status_of(value: &Value) -> String {
    field(value, "status")
        .as_str("status")
        .expect("status string")
        .to_string()
}

fn submit(addr: SocketAddr, spec: &str) -> u64 {
    let (status, _, body) = post_json(addr, "/jobs", spec);
    assert_eq!(status, 202, "{body}");
    field(&parse_body(&body), "id").as_u64("id").unwrap()
}

fn wait_for(addr: SocketAddr, id: u64, what: &str, pred: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, _, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "GET /jobs/{id} -> {body}");
        let value = parse_body(&body);
        if pred(&value) {
            return value;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last: {}",
            value.render()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn terminal(value: &Value) -> bool {
    !matches!(status_of(value).as_str(), "queued" | "running")
}

fn direct_run_document(spec_json: &str) -> String {
    let spec = minpower_serve::job::JobSpec::from_json(&json::parse(spec_json).expect("spec JSON"))
        .expect("spec");
    let top_gates = spec.top_gates;
    let (problem, options) = spec.build(usize::MAX).expect("build");
    let ctx = std::sync::Arc::new(minpower::EvalContext::new(
        1,
        minpower::opt::context::DEFAULT_CACHE_CAPACITY,
    ));
    let result = minpower::Optimizer::new(&problem)
        .with_options(options)
        .with_engine(ctx)
        .run()
        .expect("direct run");
    minpower::opt::report::result_to_json(&problem, &result, top_gates).render()
}

/// Waits until `path` exists (checkpoint writes are asynchronous to the
/// test's point of view).
fn wait_for_file(path: &Path, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !path.exists() {
        assert!(Instant::now() < deadline, "{what} never appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn flip_bit_in_payload(path: &Path) {
    let mut bytes = std::fs::read(path).expect("read victim");
    let i = bytes.len() * 3 / 4; // deep inside the payload
    bytes[i] ^= 0x08;
    std::fs::write(path, &bytes).expect("write corrupted victim");
}

fn quarantine_entries(state_dir: &Path) -> Vec<String> {
    let mut names = Vec::new();
    if let Ok(entries) = std::fs::read_dir(state_dir.join("quarantine")) {
        for entry in entries.flatten() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    names
}

// ------------------------------------------------- corruption corpus

/// Every way a checkpoint file can be damaged yields either a correct
/// recovery (previous generation) or a typed error — never a panic and
/// never a wrong snapshot.
#[test]
fn corrupt_checkpoint_corpus_is_recovered_or_rejected() {
    let dir = scratch_dir("ckpt-corpus");
    let path = dir.join("job-1.ckpt");

    // Two generations: `older` in job-1.ckpt.1, `newer` in job-1.ckpt.
    let older = Checkpoint::Search {
        salt: 7,
        evaluations: 8,
        budgets: vec![1.5e-10, 2.5e-10],
        probes: vec![],
    };
    let newer = Checkpoint::Search {
        salt: 7,
        evaluations: 16,
        budgets: vec![1.5e-10, 2.5e-10],
        probes: vec![],
    };
    older.save(&path).expect("save older");
    newer.save(&path).expect("save newer");
    let pristine = std::fs::read(&path).expect("read pristine");

    let mut corpus: Vec<(String, Vec<u8>)> = vec![
        ("empty file".into(), Vec::new()),
        (
            "pure garbage".into(),
            b"\x00\xffnot a checkpoint at all".to_vec(),
        ),
        (
            "unframed junk JSON".into(),
            b"{\"format\":\"something-else\"}".to_vec(),
        ),
    ];
    for frac in [1, 3, 5, 7] {
        let cut = pristine.len() * frac / 8;
        corpus.push((
            format!("truncated to {cut} bytes"),
            pristine[..cut].to_vec(),
        ));
    }
    for i in [pristine.len() / 3, pristine.len() / 2, pristine.len() - 2] {
        let mut bytes = pristine.clone();
        bytes[i] ^= 0x01;
        corpus.push((format!("bit flip at {i}"), bytes));
    }

    for (what, bytes) in corpus {
        std::fs::write(&path, &bytes).expect("plant corruption");
        match Checkpoint::load(&path) {
            // Recovery must produce one of the two real snapshots —
            // anything else would be a silently wrong resume.
            Ok(loaded) => assert!(
                loaded == older || loaded == newer,
                "{what}: recovered an impostor snapshot"
            ),
            Err(OptimizeError::Checkpoint { message }) => {
                assert!(!message.is_empty(), "{what}: empty error");
            }
            Err(other) => panic!("{what}: unexpected error class {other}"),
        }
        // The fallback generation is intact, so corruption that the
        // frame *can* detect must recover to the older snapshot.
        let framed_damage = bytes.len() != pristine.len()
            || bytes
                .iter()
                .zip(&pristine)
                .any(|(a, b)| a != b && bytes.starts_with(store::MAGIC.as_bytes()));
        if framed_damage && bytes.starts_with(store::MAGIC.as_bytes()) {
            assert_eq!(
                Checkpoint::load(&path).expect("fallback"),
                older,
                "{what}: fallback should yield the previous generation"
            );
        }
    }
}

/// The startup audit quarantines a corrupt job record (reason file and
/// all) and the restarted server runs fine without it.
#[test]
fn startup_audit_quarantines_corrupt_job_records() {
    let spec = r#"{"circuit":"c17","steps":7}"#;
    let state_dir = scratch_dir("audit-quarantine");
    let first = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    let id = submit(first.addr, spec);
    let done = wait_for(first.addr, id, "completion", terminal);
    assert_eq!(status_of(&done), "done", "{}", done.render());
    assert_eq!(first.shutdown(), DrainOutcome::Clean);

    // Damage the terminal record beyond recovery: corrupt the primary
    // and remove its fallback generation.
    let record = state_dir.join(format!("job-{id}.json"));
    flip_bit_in_payload(&record);
    let _ = std::fs::remove_file(store::previous_generation(&record));
    // And plant an unrelated garbage record.
    std::fs::write(state_dir.join("job-99.json"), b"\x00\x01 not json").unwrap();

    let second = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    // The corrupt records are quarantined with reason files, not loaded.
    let names = quarantine_entries(&state_dir);
    assert!(
        names.contains(&format!("job-{id}.json"))
            && names.contains(&format!("job-{id}.json.reason")),
        "quarantine missing the corrupt record: {names:?}"
    );
    assert!(
        names.contains(&"job-99.json".to_string()),
        "garbage record not quarantined: {names:?}"
    );
    let (status, _, body) = get(second.addr, &format!("/jobs/{id}"));
    assert_eq!(status, 404, "quarantined job still served: {body}");

    // The server is healthy (quarantine is recovery, not degradation)
    // and reports what it did.
    let (status, _, body) = get(second.addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(status_of(&parse_body(&body)), "ok", "{body}");
    let (_, _, metrics) = get(second.addr, "/metrics");
    let quarantined = field(field(&parse_body(&metrics), "store"), "quarantined")
        .as_u64("quarantined")
        .unwrap();
    assert!(quarantined >= 2, "store.quarantined = {quarantined}");

    // And it still takes new work.
    let id2 = submit(second.addr, spec);
    let done2 = wait_for(second.addr, id2, "fresh job", terminal);
    assert_eq!(status_of(&done2), "done", "{}", done2.render());
    assert_eq!(second.shutdown(), DrainOutcome::Clean);
}

/// Kill mid-run, corrupt the *newest* checkpoint, restart: the audit
/// quarantines the bad snapshot, promotes the previous generation, and
/// the resumed job still finishes bit-identically (the search replay is
/// deterministic from any valid snapshot).
#[test]
fn resume_from_previous_generation_after_newest_checkpoint_corrupts() {
    let spec = r#"{"circuit":"s713","steps":16,"top_gates":2}"#;
    let expected = direct_run_document(spec);

    let state_dir = scratch_dir("gen-fallback");
    let first = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        checkpoint_every: 4,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    let id = submit(first.addr, spec);

    // Wait for TWO checkpoint generations, then pull the plug.
    let ckpt = state_dir.join(format!("job-{id}.ckpt"));
    wait_for_file(
        &store::previous_generation(&ckpt),
        "second checkpoint generation",
    );
    assert_eq!(first.kill(), DrainOutcome::JobsInterrupted);

    // Bit-flip the newest snapshot: the CRC frame must catch it.
    flip_bit_in_payload(&ckpt);

    let second = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        checkpoint_every: 4,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    let names = quarantine_entries(&state_dir);
    assert!(
        names.contains(&format!("job-{id}.ckpt")),
        "corrupt checkpoint not quarantined: {names:?}"
    );
    let done = wait_for(second.addr, id, "resumed completion", terminal);
    assert_eq!(status_of(&done), "done", "{}", done.render());
    assert_eq!(
        field(&done, "result").render(),
        expected,
        "resume from the previous generation diverged"
    );
    // Degraded mode never latched: quarantine + recovery is normal
    // operation, not a write failure.
    let (_, _, body) = get(second.addr, "/healthz");
    assert_eq!(status_of(&parse_body(&body)), "ok", "{body}");
    assert_eq!(second.shutdown(), DrainOutcome::Clean);
}

/// `GET /healthz` answers `ok` on a healthy server, and `/metrics`
/// carries the store section with real write counts.
#[test]
fn healthz_ok_and_store_metrics_on_healthy_server() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir("healthz-ok"),
        ..Config::default()
    });
    let (status, _, body) = get(server.addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    let doc = parse_body(&body);
    assert_eq!(status_of(&doc), "ok", "{body}");
    assert_eq!(
        field(&doc, "degraded_seconds")
            .as_u64("degraded_seconds")
            .unwrap(),
        0
    );

    let id = submit(server.addr, r#"{"circuit":"c17","steps":7}"#);
    wait_for(server.addr, id, "completion", terminal);
    let (_, _, metrics) = get(server.addr, "/metrics");
    let store_doc = parse_body(&metrics);
    let store_obj = field(&store_doc, "store");
    let writes = field(store_obj, "writes").as_u64("writes").unwrap();
    assert!(
        writes >= 2,
        "expected job-record + checkpoint writes, got {writes}"
    );
    assert!(!field(store_obj, "degraded").as_bool("degraded").unwrap());
    server.shutdown();
}

/// The pre-flight state-dir validation rejects paths that can never
/// hold durable state (the CLI maps this to usage exit code 2).
#[test]
fn validate_state_dir_rejects_files_and_dead_parents() {
    let dir = scratch_dir("validate");
    let file = dir.join("occupied");
    std::fs::write(&file, b"i am a file").unwrap();

    let err = minpower_serve::validate_state_dir(&file).unwrap_err();
    assert!(err.contains("not a directory"), "{err}");

    let err = minpower_serve::validate_state_dir(&file.join("sub")).unwrap_err();
    assert!(err.contains("cannot be created"), "{err}");

    assert_eq!(
        minpower_serve::validate_state_dir(&dir.join("fresh")),
        Ok(())
    );
    // The probe leaves no debris behind.
    assert!(std::fs::read_dir(dir.join("fresh"))
        .unwrap()
        .next()
        .is_none());
}

// ------------------------------------------------------------ chaos soak

/// Kill/corrupt/restart in a loop: after every crash + random(ish)
/// corruption, the restarted server either finishes the job
/// bit-identically or has cleanly quarantined what it could not use —
/// never wedged, never wrong. Iterations default low for CI smoke;
/// raise `MINPOWER_SOAK_ITERS` for a longer soak.
#[test]
fn chaos_soak_kill_corrupt_restart() {
    let iters: usize = std::env::var("MINPOWER_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let spec = r#"{"circuit":"s713","steps":16,"top_gates":2}"#;
    let expected = direct_run_document(spec);

    for iter in 0..iters {
        let state_dir = scratch_dir(&format!("soak-{iter}"));
        let first = start(Config {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            checkpoint_every: 4,
            state_dir: state_dir.clone(),
            ..Config::default()
        });
        let id = submit(first.addr, spec);
        let ckpt = state_dir.join(format!("job-{id}.ckpt"));
        let record = state_dir.join(format!("job-{id}.json"));
        wait_for_file(&ckpt, "first checkpoint");
        assert_eq!(first.kill(), DrainOutcome::JobsInterrupted, "iter {iter}");

        // Deterministic per-iteration damage. Damaging the *checkpoint*
        // must not lose the job (the previous generation or a from-
        // scratch rerun still lands on the identical design); damaging
        // the *job record* — written only once so far, no fallback
        // generation yet — must quarantine it cleanly.
        let record_damaged = iter % 3 == 1;
        match iter % 3 {
            0 => flip_bit_in_payload(&ckpt),
            1 => {
                let bytes = std::fs::read(&record).unwrap();
                std::fs::write(&record, &bytes[..bytes.len() / 2]).unwrap();
            }
            _ => std::fs::write(&ckpt, b"total garbage, not even framed").unwrap(),
        }

        let second = start(Config {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            checkpoint_every: 4,
            state_dir: state_dir.clone(),
            ..Config::default()
        });
        if record_damaged {
            let (status, _, body) = get(second.addr, &format!("/jobs/{id}"));
            assert_eq!(status, 404, "iter {iter}: quarantined job served: {body}");
            let names = quarantine_entries(&state_dir);
            assert!(
                names.contains(&format!("job-{id}.json")),
                "iter {iter}: truncated record not quarantined: {names:?}"
            );
        } else {
            let done = wait_for(second.addr, id, "soak resume", terminal);
            assert_eq!(status_of(&done), "done", "iter {iter}: {}", done.render());
            assert_eq!(
                field(&done, "result").render(),
                expected,
                "iter {iter}: resumed design diverged"
            );
        }
        let (_, _, body) = get(second.addr, "/healthz");
        assert_eq!(status_of(&parse_body(&body)), "ok", "iter {iter}: {body}");
        assert_eq!(second.shutdown(), DrainOutcome::Clean, "iter {iter}");
        let _ = std::fs::remove_dir_all(&state_dir);
    }
}

// ----------------------------------------------------------- fault drills

#[cfg(feature = "faults")]
mod fault_drills {
    use super::*;
    use minpower::engine::faults;

    /// `io.disk.full` armed persistently: submissions get `503 +
    /// Retry-After`, `/healthz` reports `degraded` with a reason, the
    /// in-flight job completes, and one disarm later the service
    /// recovers on its own. The end-to-end degraded-mode state machine.
    #[test]
    fn disk_full_latches_degraded_mode_and_recovers() {
        let spec_slow = r#"{"circuit":"s713","steps":16,"top_gates":2}"#;
        let spec_fast = r#"{"circuit":"c17","steps":7}"#;
        let state_dir = scratch_dir("disk-full");
        let server = start(Config {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            checkpoint_every: 4,
            state_dir: state_dir.clone(),
            ..Config::default()
        });

        // Get a job in flight first, then break the disk.
        let id = submit(server.addr, spec_slow);
        wait_for(server.addr, id, "job running", |v| {
            status_of(v) == "running"
        });
        store::reset_fault_indices();
        faults::arm("io.disk.full", faults::Trigger::EveryNth(1));

        // New submissions are refused with a retry hint.
        let (status, head, body) = post_json(server.addr, "/jobs", spec_fast);
        assert_eq!(status, 503, "{body}");
        assert!(head.contains("Retry-After:"), "no Retry-After in {head}");
        assert!(body.contains("degraded"), "{body}");

        // Health reports the latch and its reason.
        let (status, _, body) = get(server.addr, "/healthz");
        assert_eq!(status, 200);
        let doc = parse_body(&body);
        assert_eq!(status_of(&doc), "degraded", "{body}");
        assert!(
            field(&doc, "reason").render().contains("space"),
            "reason should mention the disk: {body}"
        );
        let (_, _, metrics) = get(server.addr, "/metrics");
        let store_obj_doc = parse_body(&metrics);
        let store_obj = field(&store_obj_doc, "store");
        assert!(field(store_obj, "degraded").as_bool("degraded").unwrap());

        // The in-flight job completes despite the dead disk (its
        // checkpoints and terminal record simply don't persist).
        let done = wait_for(server.addr, id, "in-flight completion", terminal);
        assert_eq!(status_of(&done), "done", "{}", done.render());

        // Disk comes back: the next submission probes, un-latches, and
        // is admitted.
        faults::disarm("io.disk.full");
        let id2 = submit(server.addr, spec_fast);
        let done2 = wait_for(server.addr, id2, "post-recovery job", terminal);
        assert_eq!(status_of(&done2), "done", "{}", done2.render());
        let (_, _, body) = get(server.addr, "/healthz");
        assert_eq!(status_of(&parse_body(&body)), "ok", "{body}");
        server.shutdown();
    }

    /// `checkpoint.corrupt` flips a payload bit silently: the write
    /// "succeeds" but the CRC catches it on the next read, and the
    /// previous generation recovers the data.
    #[test]
    fn silent_corruption_is_caught_by_the_crc_and_recovered() {
        let dir = scratch_dir("silent-corrupt");
        let path = dir.join("rec.ckpt");
        let good = Checkpoint::Search {
            salt: 3,
            evaluations: 4,
            budgets: vec![1.0e-10],
            probes: vec![],
        };
        good.save(&path).expect("clean save");

        store::reset_fault_indices();
        faults::arm("checkpoint.corrupt", faults::Trigger::EveryNth(1));
        let newer = Checkpoint::Search {
            salt: 3,
            evaluations: 8,
            budgets: vec![1.0e-10],
            probes: vec![],
        };
        newer
            .save(&path)
            .expect("corrupted write still reports success");
        assert!(faults::fired_count("checkpoint.corrupt") >= 1);
        faults::disarm("checkpoint.corrupt");

        // Direct read: typed checksum error. Load: previous generation.
        let err = store::read_verified(&path).unwrap_err();
        assert_eq!(err.kind(), "checksum-mismatch", "{err}");
        assert_eq!(Checkpoint::load(&path).expect("fallback"), good);
    }

    /// A torn write (prefix persisted, success reported) is caught as a
    /// length mismatch and recovered from the previous generation.
    #[test]
    fn torn_write_is_caught_and_recovered() {
        let dir = scratch_dir("torn");
        let path = dir.join("rec.json");
        store::write_durable(&path, b"{\"v\":1}").expect("clean write");

        store::reset_fault_indices();
        faults::arm("io.write.torn", faults::Trigger::OnIndices(vec![0]));
        store::write_durable(&path, b"{\"v\":2}").expect("torn write reports success");
        faults::disarm("io.write.torn");

        let err = store::read_verified(&path).unwrap_err();
        assert_eq!(err.kind(), "length-mismatch", "{err}");
        let loaded = store::read_with_fallback(&path).expect("fallback");
        assert!(loaded.from_fallback);
        assert_eq!(loaded.payload, b"{\"v\":1}");
    }

    /// Transient failures (one bad fsync, one short write) are absorbed
    /// by the bounded retry and surfaced only as telemetry.
    #[test]
    fn transient_io_failures_are_absorbed_by_retry() {
        let dir = scratch_dir("transient");

        store::reset_fault_indices();
        faults::arm("io.fsync.fail", faults::Trigger::OnIndices(vec![0]));
        let report = store::write_durable(&dir.join("a.json"), b"{\"a\":1}").expect("retried");
        assert_eq!(report.retries, 1, "one fsync failure absorbed");
        faults::disarm("io.fsync.fail");

        store::reset_fault_indices();
        faults::arm("io.write.short", faults::Trigger::OnIndices(vec![0]));
        let report = store::write_durable(&dir.join("b.json"), b"{\"b\":1}").expect("retried");
        assert_eq!(report.retries, 1, "one short write absorbed");
        faults::disarm("io.write.short");

        // Persistent failure exhausts the budget and errors out.
        store::reset_fault_indices();
        faults::arm("io.fsync.fail", faults::Trigger::EveryNth(1));
        let err = store::write_durable(&dir.join("c.json"), b"{\"c\":1}").unwrap_err();
        assert_eq!(err.kind(), "io", "{err}");
        faults::disarm("io.fsync.fail");
        assert!(!dir.join("c.json").exists(), "failed write left a record");
    }
}
