//! Loopback integration tests for resource governance: rate limits,
//! disk quotas, memory-pressure load shedding, and the fault drills
//! behind them.
//!
//! The load-bearing claims verified here:
//!
//! * a client past its op budget gets `429` with a `Retry-After` that,
//!   when honored, actually readmits it;
//! * a session over its disk quota (even after compaction) answers
//!   `503` and stays usable after `DELETE` + re-create; a server over
//!   its global disk budget refuses new sessions;
//! * memory pressure degrades `/healthz` through the shedding tiers —
//!   refusing new sessions, then new jobs — and the pressure sweep
//!   sheds warm state until the service recovers to `ok` on its own;
//! * `POST /sessions/{id}/compact` folds the op log, reclaims bytes,
//!   and a kill/restart afterwards recovers bit-identically;
//! * under the `govern.clock_skew` fault the limiter neither banks
//!   unbounded tokens nor freezes; under `session.compact.crash` and
//!   `io.disk.full` a failed compaction leaves a session that recovers
//!   bit-identically on its next touch and across a kill/restart.

// The faults build compiles only the fault drills, which use a subset
// of the shared helpers.
#![cfg_attr(feature = "faults", allow(dead_code))]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use minpower::opt::json::{self, Value};
use minpower::opt::session::{SessionOp, SessionParams, SessionState};
use minpower_serve::{Config, DrainOutcome, Server, ServerHandle};

// ---------------------------------------------------------------- helpers

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minpower-govern-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<DrainOutcome>,
}

fn start(config: Config) -> TestServer {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        thread,
    }
}

impl TestServer {
    fn shutdown(self) -> DrainOutcome {
        self.handle.shutdown();
        self.thread.join().expect("server thread")
    }

    fn kill(self) -> DrainOutcome {
        self.handle.kill();
        self.thread.join().expect("server thread")
    }
}

fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).to_string();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn delete(addr: SocketAddr, path: &str) -> (u16, String, String) {
    raw_request(
        addr,
        format!("DELETE {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

/// The value of header `name` in a raw response head, if present.
fn header(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
    })
}

fn parse_body(body: &str) -> Value {
    json::parse(body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e}"))
}

fn field<'a>(value: &'a Value, name: &str) -> &'a Value {
    value
        .as_obj("response")
        .expect("object")
        .req(name)
        .unwrap_or_else(|e| panic!("{e} in {}", value.render()))
}

fn u64_field(value: &Value, name: &str) -> u64 {
    field(value, name).as_u64(name).expect("u64 field")
}

fn str_field(value: &Value, name: &str) -> String {
    field(value, name)
        .as_str(name)
        .expect("string field")
        .to_string()
}

fn open_session(addr: SocketAddr, spec: &str) -> u64 {
    let (status, _, body) = post_json(addr, "/sessions", spec);
    assert_eq!(status, 201, "{body}");
    u64_field(&parse_body(&body), "id")
}

fn resize_op(width: f64) -> String {
    format!(r#"{{"op":"resize","gate":"10","width":{width}}}"#)
}

/// The server-side state document, hex-bits floats: string equality is
/// bit equality.
fn state_doc(addr: SocketAddr, id: u64) -> String {
    let (status, _, body) = get(addr, &format!("/sessions/{id}?detail=gates"));
    assert_eq!(status, 200, "{body}");
    field(&parse_body(&body), "state").render()
}

fn cold_replay_doc(ops: &[SessionOp]) -> String {
    let state = SessionState::replay(minpower::circuits::c17(), &SessionParams::default(), ops)
        .expect("cold replay");
    state.snapshot().render()
}

fn govern_metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    u64_field(field(&parse_body(&body), "govern"), name)
}

fn session_metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    u64_field(field(&parse_body(&body), "sessions"), name)
}

// ------------------------------------------------------------------ tests

/// A client past its per-session op budget gets `429 + Retry-After`;
/// sleeping out the hint readmits it. Counted in
/// `govern.rate_limited_ops`.
#[cfg(not(feature = "faults"))]
#[test]
fn rate_limited_ops_answer_429_and_retry_after_readmits() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ops_rate: 2.0,
        ops_burst: 3.0,
        state_dir: scratch_dir("ratelimit"),
        ..Config::default()
    });
    let id = open_session(server.addr, r#"{"circuit":"c17"}"#);

    // Hammer until the bucket runs dry.
    let mut retry_after = None;
    for i in 0..16u32 {
        let (status, head, body) = post_json(
            server.addr,
            &format!("/sessions/{id}/ops"),
            &resize_op(2.0 + f64::from(i) * 0.125),
        );
        match status {
            200 => {}
            429 => {
                let hint = header(&head, "Retry-After")
                    .unwrap_or_else(|| panic!("429 without Retry-After: {head}"))
                    .parse::<u64>()
                    .expect("numeric Retry-After");
                assert!(hint >= 1, "hint {hint}");
                assert!(body.contains("rate limit"), "{body}");
                retry_after = Some(hint);
                break;
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    let hint = retry_after.expect("a burst of 3 at 2/s must hit the limiter");

    // Honoring the hint readmits the client.
    std::thread::sleep(Duration::from_secs(hint));
    let (status, _, body) = post_json(server.addr, &format!("/sessions/{id}/ops"), &resize_op(4.0));
    assert_eq!(status, 200, "after honoring Retry-After: {body}");
    assert!(govern_metric(server.addr, "rate_limited_ops") >= 1);
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}

/// A session whose snapshot alone exceeds its quota answers `503` even
/// after compaction; `DELETE` + re-create recovers service.
#[cfg(not(feature = "faults"))]
#[test]
fn session_over_quota_answers_503_until_deleted() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        session_quota_bytes: 512, // smaller than any c17 snapshot
        state_dir: scratch_dir("quota"),
        ..Config::default()
    });
    let id = open_session(server.addr, r#"{"circuit":"c17"}"#);

    let mut rejected = false;
    for i in 0..64u32 {
        let (status, head, body) = post_json(
            server.addr,
            &format!("/sessions/{id}/ops"),
            &resize_op(2.0 + f64::from(i) * 0.03125),
        );
        if status == 503 {
            assert!(body.contains("disk quota"), "{body}");
            assert!(header(&head, "Retry-After").is_some(), "{head}");
            rejected = true;
            break;
        }
        assert_eq!(status, 200, "{body}");
    }
    assert!(rejected, "a 512-byte quota must reject ops eventually");
    assert!(session_metric(server.addr, "quota_rejected") >= 1);
    assert!(
        session_metric(server.addr, "compactions") >= 1,
        "the quota path must have tried compaction first"
    );

    // DELETE reclaims the directory; a fresh session serves again.
    let (status, _, body) = delete(server.addr, &format!("/sessions/{id}"));
    assert_eq!(status, 200, "{body}");
    assert!(
        u64_field(&parse_body(&body), "reclaimed_bytes") > 0,
        "{body}"
    );
    let fresh = open_session(server.addr, r#"{"circuit":"c17"}"#);
    let (status, _, body) = post_json(
        server.addr,
        &format!("/sessions/{fresh}/ops"),
        &resize_op(2.5),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}

/// An exhausted global disk budget refuses *new* sessions with `503`
/// while existing ones keep serving; `DELETE` frees budget.
#[cfg(not(feature = "faults"))]
#[test]
fn disk_budget_refuses_new_sessions() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        session_disk_budget: 1, // any existing session exhausts it
        state_dir: scratch_dir("budget"),
        ..Config::default()
    });
    let id = open_session(server.addr, r#"{"circuit":"c17"}"#);
    let (status, _, body) = post_json(server.addr, "/sessions", r#"{"circuit":"c17"}"#);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("disk budget"), "{body}");
    // The existing session is unaffected.
    let (status, _, body) = post_json(server.addr, &format!("/sessions/{id}/ops"), &resize_op(3.0));
    assert_eq!(status, 200, "{body}");
    let (status, _, _) = delete(server.addr, &format!("/sessions/{id}"));
    assert_eq!(status, 200);
    open_session(server.addr, r#"{"circuit":"c17"}"#);
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}

/// Memory pressure walks `/healthz` into a degraded shedding tier that
/// refuses new sessions and new jobs, then the pressure sweep sheds
/// warm state and the service recovers to `ok` on its own.
#[cfg(not(feature = "faults"))]
#[test]
fn memory_pressure_sheds_then_recovers() {
    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        mem_budget_bytes: 1, // any warm session saturates the budget
        state_dir: scratch_dir("pressure"),
        ..Config::default()
    });
    let id = open_session(server.addr, r#"{"circuit":"c17"}"#);

    // The background sweep (1 s cadence) races us by design: it sheds
    // warm state whenever it runs. Re-warm via an op, then observe the
    // shed responses; retry the whole sequence until all three land in
    // one pressure window.
    let mut saw = (false, false, false); // (healthz degraded, shed session, shed job)
    for _ in 0..30 {
        let (status, _, body) =
            post_json(server.addr, &format!("/sessions/{id}/ops"), &resize_op(2.5));
        assert_eq!(status, 200, "ops are never shed: {body}");
        let (status, _, body) = get(server.addr, "/healthz");
        assert_eq!(status, 200);
        let health = parse_body(&body);
        if str_field(&health, "status") == "degraded" {
            assert!(
                str_field(&health, "reason").contains("memory pressure"),
                "{body}"
            );
            assert_ne!(str_field(&health, "tier"), "ok", "{body}");
            saw.0 = true;
        }
        let (status, _, _) = post_json(server.addr, "/sessions", r#"{"circuit":"c17"}"#);
        if status == 503 {
            saw.1 = true;
        }
        if !saw.2 {
            let (status, head, _) =
                post_json(server.addr, "/jobs", r#"{"circuit":"c17","steps":4}"#);
            if status == 503 {
                assert!(header(&head, "Retry-After").is_some(), "{head}");
                saw.2 = true;
            }
        }
        if saw == (true, true, true) {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(saw.0, "healthz never reported the degraded tier");
    assert!(saw.1, "POST /sessions was never shed");
    assert!(saw.2, "POST /jobs was never shed");
    assert!(govern_metric(server.addr, "shed_sessions") >= 1);
    assert!(govern_metric(server.addr, "shed_jobs") >= 1);

    // Stop touching the session: the pressure sweep evicts its warm
    // state and the service recovers to `ok` without intervention.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        let (_, _, body) = get(server.addr, "/healthz");
        if str_field(&parse_body(&body), "status") == "ok" {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "service never recovered: {body}"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
    assert!(govern_metric(server.addr, "pressure_evictions") >= 1);
    let (status, _, body) = post_json(server.addr, "/jobs", r#"{"circuit":"c17","steps":4}"#);
    assert_eq!(status, 202, "recovered service must admit jobs: {body}");
    assert!(matches!(
        server.shutdown(),
        DrainOutcome::Clean | DrainOutcome::JobsInterrupted
    ));
}

/// `POST /sessions/{id}/compact` folds the log, reports reclaimed
/// bytes, and a kill/restart afterwards recovers bit-identically.
#[cfg(not(feature = "faults"))]
#[test]
fn explicit_compaction_survives_kill_and_restart() {
    let state_dir = scratch_dir("compact");
    let first = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    let id = open_session(first.addr, r#"{"circuit":"c17"}"#);
    let widths = [2.5, 3.0, 3.5];
    for w in widths {
        let (status, _, body) =
            post_json(first.addr, &format!("/sessions/{id}/ops"), &resize_op(w));
        assert_eq!(status, 200, "{body}");
    }
    let (status, _, body) = post_json(first.addr, &format!("/sessions/{id}/compact"), "");
    assert_eq!(status, 200, "{body}");
    let doc = parse_body(&body);
    assert_eq!(u64_field(&doc, "ops_folded"), 3, "{body}");
    assert!(u64_field(&doc, "reclaimed_bytes") > 0, "{body}");
    let live = state_doc(first.addr, id);
    assert_eq!(first.kill(), DrainOutcome::JobsInterrupted);

    let second = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir,
        ..Config::default()
    });
    let recovered = state_doc(second.addr, id);
    assert_eq!(recovered, live, "restart diverged after compaction");
    let cold: Vec<SessionOp> = widths
        .iter()
        .map(|&width| SessionOp::Resize {
            gate: "10".into(),
            width,
        })
        .collect();
    assert_eq!(recovered, cold_replay_doc(&cold));
    assert_eq!(second.shutdown(), DrainOutcome::Clean);
}

/// The `govern.clock_skew` drill: wild forward/backward clock readings
/// may deny at most the requests they touch — the limiter must neither
/// bank unbounded tokens nor freeze the bucket.
#[cfg(feature = "faults")]
#[test]
fn clock_skew_fault_cannot_freeze_the_limiter() {
    use minpower::engine::faults;

    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ops_rate: 1000.0,
        ops_burst: 1000.0,
        state_dir: scratch_dir("skew"),
        ..Config::default()
    });
    let id = open_session(server.addr, r#"{"circuit":"c17"}"#);

    minpower_serve::govern::reset_fault_indices();
    // Acquire 1 sees the clock at zero (backward), acquire 2 an hour
    // ahead (forward).
    faults::arm("govern.clock_skew", faults::Trigger::OnIndices(vec![1, 2]));
    for i in 0..8u32 {
        let (status, _, body) = post_json(
            server.addr,
            &format!("/sessions/{id}/ops"),
            &resize_op(2.0 + f64::from(i) * 0.25),
        );
        assert_eq!(status, 200, "op {i} under clock skew: {body}");
    }
    assert_eq!(faults::fired_count("govern.clock_skew"), 2);
    faults::disarm("govern.clock_skew");

    // The bucket keeps refilling from real time afterwards.
    let (status, _, body) = post_json(server.addr, &format!("/sessions/{id}/ops"), &resize_op(4.0));
    assert_eq!(status, 200, "{body}");
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}

/// The `session.compact.crash` drill, including a kill/restart inside
/// the crash window: the folded snapshot is durable, the log was never
/// truncated, and every recovery — same process or a fresh one — lands
/// bit-identically and keeps accepting ops.
#[cfg(feature = "faults")]
#[test]
fn compaction_crash_then_kill_recovers_bit_identically() {
    use minpower::engine::faults;

    let state_dir = scratch_dir("compact-crash");
    let first = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    let id = open_session(first.addr, r#"{"circuit":"c17"}"#);
    let widths = [2.5, 3.0, 3.5];
    for w in widths {
        let (status, _, body) =
            post_json(first.addr, &format!("/sessions/{id}/ops"), &resize_op(w));
        assert_eq!(status, 200, "{body}");
    }
    let live = state_doc(first.addr, id);

    minpower_serve::session::reset_fault_indices();
    faults::arm("session.compact.crash", faults::Trigger::OnIndices(vec![0]));
    let (status, _, body) = post_json(first.addr, &format!("/sessions/{id}/compact"), "");
    assert_eq!(status, 503, "the drill must crash the compaction: {body}");
    assert!(body.contains("injected fault"), "{body}");
    assert_eq!(faults::fired_count("session.compact.crash"), 1);
    faults::disarm("session.compact.crash");

    // Same process: the next touch recovers from the crash window.
    assert_eq!(state_doc(first.addr, id), live);

    // Fresh process killed into the same window state.
    assert_eq!(first.kill(), DrainOutcome::JobsInterrupted);
    let second = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: state_dir.clone(),
        ..Config::default()
    });
    assert_eq!(state_doc(second.addr, id), live);

    // The recovered session keeps taking ops, durably.
    let (status, _, body) = post_json(second.addr, &format!("/sessions/{id}/ops"), &resize_op(4.0));
    assert_eq!(status, 200, "{body}");
    let advanced = state_doc(second.addr, id);
    assert_eq!(second.kill(), DrainOutcome::JobsInterrupted);
    let third = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir,
        ..Config::default()
    });
    assert_eq!(state_doc(third.addr, id), advanced);
    // A clean compaction now succeeds.
    let (status, _, body) = post_json(third.addr, &format!("/sessions/{id}/compact"), "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(state_doc(third.addr, id), advanced);
    assert_eq!(third.shutdown(), DrainOutcome::Clean);
}

/// `io.disk.full` during compaction: the snapshot write fails, the
/// compaction answers `503`, and the session recovers untouched once
/// the disk drains.
#[cfg(feature = "faults")]
#[test]
fn disk_full_during_compaction_postpones_it() {
    use minpower::engine::faults;

    let server = start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir("disk-full"),
        ..Config::default()
    });
    let id = open_session(server.addr, r#"{"circuit":"c17"}"#);
    for w in [2.5, 3.0] {
        let (status, _, body) =
            post_json(server.addr, &format!("/sessions/{id}/ops"), &resize_op(w));
        assert_eq!(status, 200, "{body}");
    }
    let live = state_doc(server.addr, id);

    faults::arm("io.disk.full", faults::Trigger::EveryNth(1));
    let (status, _, body) = post_json(server.addr, &format!("/sessions/{id}/compact"), "");
    assert_eq!(status, 503, "{body}");
    faults::disarm("io.disk.full");

    // Disk back: the session is intact and compaction completes.
    assert_eq!(state_doc(server.addr, id), live);
    let (status, _, body) = post_json(server.addr, &format!("/sessions/{id}/compact"), "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(state_doc(server.addr, id), live);
    assert_eq!(server.shutdown(), DrainOutcome::Clean);
}
