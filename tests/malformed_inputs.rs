//! Malformed-input containment: every broken `.bench` / Verilog document
//! in this corpus must come back as a structured `Err`, never a panic and
//! never a silently-wrong netlist.

use minpower::netlist::{bench, verilog};

/// Runs the parser inside `catch_unwind` so a panicking parser fails the
/// test with the offending document named, instead of aborting the suite.
fn bench_must_err(label: &str, text: &str) {
    let result = std::panic::catch_unwind(|| bench::parse("bad", text));
    match result {
        Ok(Ok(_)) => panic!("{label}: parser accepted a malformed document"),
        Ok(Err(_)) => {}
        Err(_) => panic!("{label}: parser panicked instead of returning Err"),
    }
}

fn verilog_must_err(label: &str, text: &str) {
    let result = std::panic::catch_unwind(|| verilog::parse(text));
    match result {
        Ok(Ok(_)) => panic!("{label}: parser accepted a malformed document"),
        Ok(Err(_)) => {}
        Err(_) => panic!("{label}: parser panicked instead of returning Err"),
    }
}

#[test]
fn bench_dangling_fanin_is_an_error() {
    bench_must_err(
        "dangling fanin",
        "INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n",
    );
}

#[test]
fn bench_duplicate_driver_is_an_error() {
    bench_must_err(
        "duplicate driver",
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\ny = NOR(a, b)\n",
    );
}

#[test]
fn bench_combinational_cycle_is_an_error() {
    bench_must_err(
        "cycle",
        "INPUT(a)\nOUTPUT(y)\nu = NAND(a, y)\ny = NAND(a, u)\n",
    );
}

#[test]
fn bench_truncated_lines_are_errors() {
    for (label, text) in [
        ("unclosed INPUT", "INPUT(a\n"),
        ("missing rhs", "INPUT(a)\ny = \n"),
        ("missing assignment", "INPUT(a)\nNAND(a, a)\n"),
        ("unclosed fanin list", "INPUT(a)\ny = NAND(a, a\n"),
        ("empty fanin list", "INPUT(a)\ny = NAND()\n"),
    ] {
        bench_must_err(label, text);
    }
}

#[test]
fn bench_unknown_gate_kind_is_an_error() {
    bench_must_err("unknown kind", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
}

#[test]
fn bench_undeclared_output_is_an_error() {
    bench_must_err("undeclared output", "INPUT(a)\nOUTPUT(zap)\ny = NOT(a)\n");
}

#[test]
fn verilog_truncated_module_is_an_error() {
    for (label, text) in [
        ("no module header", "input a;\noutput y;\n"),
        (
            "unterminated module",
            "module m(a, y);\ninput a;\noutput y;\n",
        ),
        (
            "dangling wire",
            "module m(a, y);\ninput a;\noutput y;\nnand g0(y, a, ghost);\nendmodule\n",
        ),
        (
            "duplicate driver",
            "module m(a, b, y);\ninput a, b;\noutput y;\n\
             nand g0(y, a, b);\nnor g1(y, a, b);\nendmodule\n",
        ),
        (
            "cycle",
            "module m(a, y);\ninput a;\noutput y;\nwire u;\n\
             nand g0(u, a, y);\nnand g1(y, a, u);\nendmodule\n",
        ),
    ] {
        verilog_must_err(label, text);
    }
}

#[test]
fn well_formed_documents_still_parse() {
    let n = bench::parse(
        "ok",
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NAND(a, b)\ny = NOT(u)\n",
    )
    .unwrap();
    assert_eq!(n.logic_gate_count(), 2);

    let v = verilog::parse(
        "module m(a, b, y);\ninput a, b;\noutput y;\nwire u;\n\
         nand g0(u, a, b);\nnot g1(y, u);\nendmodule\n",
    )
    .unwrap();
    assert_eq!(v.logic_gate_count(), 2);
}
