//! End-to-end reproduction checks: the paper's headline claims on the
//! benchmark workloads, exercised through the public facade API.

use minpower::opt::baseline;
use minpower::{CircuitModel, Optimizer, Problem, SearchOptions, Technology};

const FC: f64 = 300.0e6;

fn problem(name: &str, activity: f64) -> Problem {
    let netlist = minpower::circuits::circuit(name).expect("suite circuit");
    let model = CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, activity);
    Problem::new(model, FC)
}

#[test]
fn joint_optimization_meets_timing_on_suite_circuits() {
    for name in ["s27", "s298", "s713"] {
        let p = problem(name, 0.3);
        let r = Optimizer::new(&p).run().unwrap_or_else(|e| {
            panic!("{name}: {e}");
        });
        assert!(r.feasible, "{name} infeasible");
        // Re-evaluate the returned design independently.
        let eval = p.model().evaluate(&r.design, FC);
        assert!(
            eval.critical_delay <= p.cycle_time() * (1.0 + 1e-6),
            "{name}: recheck delay {:.3e} > Tc",
            eval.critical_delay
        );
        assert!(
            (eval.energy.total() - r.energy.total()).abs() <= 1e-9 * r.energy.total(),
            "{name}: reported energy does not match re-evaluation"
        );
    }
}

#[test]
fn joint_beats_fixed_vt_by_a_large_factor() {
    // The headline: order-of-several savings over the conventional
    // fixed-700 mV optimization, on every circuit and activity.
    for name in ["s27", "s298"] {
        for activity in [0.1, 0.5] {
            let p = problem(name, activity);
            let fixed = baseline::optimize_fixed_vt(&p, 0.7, SearchOptions::default()).unwrap();
            let joint = Optimizer::new(&p).run().unwrap();
            let savings = fixed.energy.total() / joint.energy.total();
            assert!(
                savings > 2.5,
                "{name} a={activity}: savings only {savings:.2}"
            );
        }
    }
}

#[test]
fn savings_grow_with_input_activity() {
    // §5: "the savings increase with specified input activity levels".
    let p_lo = problem("s298", 0.1);
    let p_hi = problem("s298", 0.5);
    let s_lo = baseline::optimize_fixed_vt(&p_lo, 0.7, SearchOptions::default())
        .unwrap()
        .energy
        .total()
        / Optimizer::new(&p_lo).run().unwrap().energy.total();
    let s_hi = baseline::optimize_fixed_vt(&p_hi, 0.7, SearchOptions::default())
        .unwrap()
        .energy
        .total()
        / Optimizer::new(&p_hi).run().unwrap().energy.total();
    assert!(
        s_hi > s_lo,
        "savings {s_hi:.2} at a=0.5 vs {s_lo:.2} at a=0.1"
    );
}

#[test]
fn optimum_sits_at_low_vdd_and_low_vt() {
    // §5: thresholds in the 150–250 mV range, supplies 0.6–1.2 V (we
    // accept a slightly wider band, the technologies differ).
    let p = problem("s298", 0.5);
    let r = Optimizer::new(&p).run().unwrap();
    assert!(
        (0.5..=1.4).contains(&r.design.vdd),
        "vdd = {}",
        r.design.vdd
    );
    let vt = r.uniform_vt().expect("single threshold");
    assert!((0.12..=0.40).contains(&vt), "vt = {vt}");
}

#[test]
fn leakage_becomes_a_first_class_component_at_the_optimum() {
    // §3/§5: at the optimum the static component is comparable to the
    // dynamic one (the baseline keeps it 4+ orders of magnitude down).
    let p = problem("s298", 0.5);
    let fixed = baseline::optimize_fixed_vt(&p, 0.7, SearchOptions::default()).unwrap();
    let joint = Optimizer::new(&p).run().unwrap();
    assert!(fixed.energy.balance() < 1e-4);
    let balance = joint.energy.balance();
    assert!(
        (0.05..=2.0).contains(&balance),
        "optimum static/dynamic balance = {balance}"
    );
}

#[test]
fn baseline_runs_at_much_higher_supply() {
    let p = problem("s298", 0.3);
    let fixed = baseline::optimize_fixed_vt(&p, 0.7, SearchOptions::default()).unwrap();
    let joint = Optimizer::new(&p).run().unwrap();
    assert!(
        fixed.design.vdd >= joint.design.vdd + 0.5,
        "fixed {} vs joint {}",
        fixed.design.vdd,
        joint.design.vdd
    );
}

#[test]
fn whole_suite_is_feasible_for_both_tables() {
    // Every circuit of the paper suite must support both the Table 1
    // corner and the Table 2 optimization (at the cheaper search depth).
    let opts = SearchOptions {
        steps: 10,
        ..SearchOptions::default()
    };
    for netlist in minpower::circuits::paper_suite() {
        let model = CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, 0.3);
        let p = Problem::new(model, FC);
        let fixed = baseline::optimize_fixed_vt(&p, 0.7, opts.clone())
            .unwrap_or_else(|e| panic!("{} baseline: {e}", netlist.name()));
        assert!(fixed.feasible, "{} baseline infeasible", netlist.name());
        let nominal = baseline::optimize_widths_at(&p, 3.3, 0.7, opts.clone())
            .unwrap_or_else(|e| panic!("{} nominal: {e}", netlist.name()));
        assert!(nominal.feasible);
        let joint = Optimizer::new(&p)
            .with_options(opts.clone())
            .run()
            .unwrap_or_else(|e| panic!("{} joint: {e}", netlist.name()));
        assert!(joint.feasible, "{} joint infeasible", netlist.name());
        assert!(
            joint.energy.total() < fixed.energy.total(),
            "{}: joint {:.3e} !< fixed {:.3e}",
            netlist.name(),
            joint.energy.total(),
            fixed.energy.total()
        );
    }
}
