//! Solution-quality checks: approximate local optimality of the returned
//! design and sane behavior on canonical extreme structures.

use minpower::circuits::canonical::{inverter_chain, mesh, reduction_tree};
use minpower::opt::search::size_at;
use minpower::{CircuitModel, Netlist, Optimizer, Problem, SearchOptions, Technology};

const FC: f64 = 300.0e6;

fn problem_for(netlist: &Netlist, activity: f64) -> Problem {
    let model = CircuitModel::with_uniform_activity(netlist, Technology::dac97(), 0.5, activity);
    Problem::new(model, FC)
}

#[test]
fn returned_design_is_approximately_locally_optimal() {
    // Perturb the optimum's (Vdd, Vt) by ±7.5 % and re-run the width
    // sizing: no feasible neighbor may beat the returned energy by more
    // than the search's own resolution.
    let netlist = minpower::circuits::circuit("s298").expect("suite circuit");
    let p = problem_for(&netlist, 0.3);
    let r = Optimizer::new(&p).run().unwrap();
    let vt = r.uniform_vt().expect("single threshold");
    let opts = SearchOptions::default();
    let mut best_neighbor = f64::INFINITY;
    for dv in [-0.075, 0.0, 0.075] {
        for dt in [-0.075, 0.0, 0.075] {
            let vdd = r.design.vdd * (1.0 + dv);
            let vt_n = vt * (1.0 + dt);
            let cand = size_at(&p, vdd, vt_n, &opts).unwrap();
            if cand.feasible {
                best_neighbor = best_neighbor.min(cand.energy.total());
            }
        }
    }
    assert!(
        best_neighbor >= r.energy.total() * 0.85,
        "a ±7.5% neighbor beats the optimum by {:.1}%: {:.3e} vs {:.3e}",
        (1.0 - best_neighbor / r.energy.total()) * 100.0,
        best_neighbor,
        r.energy.total()
    );
}

#[test]
fn chain_budgets_split_the_cycle_evenly_and_optimize() {
    let chain = inverter_chain(12);
    let p = problem_for(&chain, 0.3);
    let r = Optimizer::new(&p).run().unwrap();
    assert!(r.feasible);
    // Every chain gate has fanout 1: equal budgets.
    let budgets: Vec<f64> = r.budgets.iter().copied().filter(|&b| b > 0.0).collect();
    assert_eq!(budgets.len(), 12);
    let first = budgets[0];
    for &b in &budgets {
        assert!((b - first).abs() < 1e-15, "uneven chain budgets");
    }
    assert!((first * 12.0 - p.cycle_time()).abs() < 1e-12 * p.cycle_time());
}

#[test]
fn tree_and_mesh_structures_optimize_feasibly() {
    for netlist in [reduction_tree(64), mesh(6)] {
        let p = problem_for(&netlist, 0.3);
        let r = Optimizer::new(&p)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", netlist.name()));
        assert!(r.feasible, "{} infeasible", netlist.name());
        let eval = p.model().evaluate(&r.design, FC);
        assert!(eval.critical_delay <= p.cycle_time() * (1.0 + 1e-6));
        // Shallow structures leave slack to exploit: low supply expected.
        assert!(
            r.design.vdd < 1.5,
            "{}: vdd = {}",
            netlist.name(),
            r.design.vdd
        );
    }
}

#[test]
fn deep_chain_forces_high_supply() {
    // A 40-deep chain at 300 MHz leaves ~83 ps per stage: the optimizer
    // must keep the supply high; a 5-deep chain can crawl.
    let deep = inverter_chain(40);
    let shallow = inverter_chain(5);
    let r_deep = Optimizer::new(&problem_for(&deep, 0.3)).run().unwrap();
    let r_shallow = Optimizer::new(&problem_for(&shallow, 0.3)).run().unwrap();
    assert!(
        r_deep.design.vdd > r_shallow.design.vdd,
        "deep {} vs shallow {}",
        r_deep.design.vdd,
        r_shallow.design.vdd
    );
}
