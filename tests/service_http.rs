//! Protocol-robustness tests for `minpower-serve`.
//!
//! Two halves, gated on the `faults` feature because the fault registry
//! is process-global (a drill armed in one test would fire in another):
//!
//! * **without** `faults` — a corpus of malformed HTTP requests, each of
//!   which must map to the documented 4xx status, never panic the
//!   server, and leave it responsive for the next request;
//! * **with** `faults` — the `service.conn.drop` drill: the connection
//!   dies before any response bytes, and the server must shrug it off
//!   (run with `--test-threads=1`, as fault drills elsewhere do).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use minpower_serve::{Config, DrainOutcome, Server, ServerHandle};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minpower-http-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn start(
    name: &str,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<DrainOutcome>,
) {
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        state_dir: scratch_dir(name),
        max_body_bytes: 4096,
        ..Config::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

/// Sends raw bytes; returns the response status, or `None` if the server
/// closed without answering (a clean drop, not a hang).
fn send_raw(addr: SocketAddr, raw: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw).expect("write");
    // Half-close so head readers waiting for more bytes see EOF instead
    // of timing out.
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    if response.is_empty() {
        return None;
    }
    let text = String::from_utf8_lossy(&response);
    Some(
        text.split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line in {text:?}")),
    )
}

fn post(body: &str) -> Vec<u8> {
    format!(
        "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[cfg(not(feature = "faults"))]
#[test]
fn malformed_requests_map_to_4xx_and_never_wedge_the_server() {
    let (addr, handle, thread) = start("corpus");

    let oversized_head = format!(
        "GET /jobs HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "a".repeat(16 * 1024)
    );
    let corpus: Vec<(&str, Vec<u8>, u16)> = vec![
        ("bad request line", b"NONSENSE\r\n\r\n".to_vec(), 400),
        ("bad version", b"GET / SPDY/9\r\n\r\n".to_vec(), 400),
        (
            "malformed header",
            b"GET /metrics HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
            400,
        ),
        ("oversized head", oversized_head.into_bytes(), 431),
        (
            "post without length",
            b"POST /jobs HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
            411,
        ),
        (
            "bad content length",
            b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n{}".to_vec(),
            400,
        ),
        (
            "oversized declared body",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n".to_vec(),
            413,
        ),
        (
            "truncated body",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"circuit\"".to_vec(),
            400,
        ),
        (
            "bad chunk size",
            b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n".to_vec(),
            400,
        ),
        (
            "oversized chunked body",
            b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffffff\r\n".to_vec(),
            413,
        ),
        ("bad json", post("{not json"), 400),
        ("non-object spec", post("[1,2,3]"), 400),
        (
            "unknown option",
            post(r#"{"circuit":"c17","stepz":4}"#),
            400,
        ),
        ("two sources", post(r#"{"circuit":"c17","bench":"x"}"#), 400),
        ("unknown suite circuit", post(r#"{"circuit":"c9000"}"#), 400),
        (
            "garbage bench source",
            post(r#"{"bench":"THIS IS NOT A NETLIST("}"#),
            400,
        ),
        (
            "unknown endpoint",
            b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
            404,
        ),
        (
            "unknown job id",
            b"GET /jobs/999 HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
            404,
        ),
        (
            "non-numeric job id",
            b"GET /jobs/abc HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
            404,
        ),
        (
            "method not allowed on job",
            b"PATCH /jobs/1 HTTP/1.1\r\nContent-Length: 0\r\n\r\n".to_vec(),
            404, // unknown id wins over method here; id 1 never existed
        ),
        (
            "listing endpoint",
            b"GET /jobs HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
            200, // paginated listing (empty on a fresh server)
        ),
        (
            "listing with bad pagination",
            b"GET /jobs?offset=minus-one HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
            400,
        ),
    ];

    for (name, raw, expected) in &corpus {
        let got = send_raw(addr, raw);
        assert_eq!(got, Some(*expected), "case `{name}`");
    }

    // A valid chunked submission still works after all that abuse.
    let body = r#"{"circuit":"c17","steps":4}"#;
    let chunked = format!(
        "POST /jobs HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n{body}\r\n0\r\n\r\n",
        body.len()
    );
    assert_eq!(send_raw(addr, chunked.as_bytes()), Some(202));

    // And the server is still healthy.
    assert_eq!(
        send_raw(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"),
        Some(200)
    );
    handle.shutdown();
    // One queued c17 job may be interrupted by the drain; either outcome
    // is fine — the point is the server exits.
    let _ = thread.join().expect("server thread");
}

#[cfg(not(feature = "faults"))]
#[test]
fn oversized_netlist_is_rejected_at_admission() {
    // A server deployed with a tiny gate cap answers 422 up front — the
    // job never reaches the queue.
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        max_gates: 2,
        state_dir: scratch_dir("admission-capped"),
        ..Config::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    assert_eq!(send_raw(addr, &post(r#"{"circuit":"c17"}"#)), Some(422));
    handle.shutdown();
    assert_eq!(thread.join().unwrap(), DrainOutcome::Clean);
}

#[cfg(feature = "faults")]
#[test]
fn dropped_connection_fault_leaves_the_server_consistent() {
    use minpower::engine::faults;

    let (addr, handle, thread) = start("conn-drop");
    // Arm the drill: connection index 1 (the second request) dies before
    // any response bytes are written.
    faults::arm("service.conn.drop", faults::Trigger::OnIndices(vec![1]));

    assert_eq!(
        send_raw(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"),
        Some(200),
        "connection 0 should answer"
    );
    assert_eq!(
        send_raw(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"),
        None,
        "connection 1 should be dropped by the fault"
    );
    // The server survives and keeps serving; a submission still works.
    assert_eq!(
        send_raw(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"),
        Some(200)
    );
    assert_eq!(
        send_raw(addr, &post(r#"{"circuit":"s27","steps":4}"#)),
        Some(202)
    );
    faults::disarm("service.conn.drop");
    handle.shutdown();
    let _ = thread.join().expect("server thread");
}
