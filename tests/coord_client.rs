//! Corpus tests for the coordinator's dispatch client: scripted TCP
//! servers feed raw byte sequences — truncated heads, garbage status
//! lines, empty responses — through the full `post_shard` path, and the
//! NDJSON event parser chews a corpus of partial/malformed streams.
//! None of these may panic or be misread as a successful dispatch.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

use minpower_coord::client::{parse_ndjson_events, post_shard, ClientError, DispatchCall};

/// Accepts one connection, reads the full request (head + body per
/// `Content-Length`), answers with `response`, and sends the captured
/// request bytes down the returned channel.
fn scripted_server(response: &'static [u8]) -> (String, mpsc::Receiver<Vec<u8>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind scripted server");
    let addr = listener.local_addr().expect("addr").to_string();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut request = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            // Stop once the head terminator and the advertised body have
            // both arrived (the client holds its half open, so EOF never
            // comes while it waits for the response).
            if let Some(split) = request.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&request[..split]);
                let content_length: usize = head
                    .lines()
                    .find_map(|l| {
                        l.to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(str::to_string)
                    })
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(0);
                if request.len() >= split + 4 + content_length {
                    break;
                }
            }
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => request.extend_from_slice(&buf[..n]),
                Err(_) => break,
            }
        }
        let _ = stream.write_all(response);
        let _ = tx.send(request);
    });
    (addr, rx)
}

fn call<'a>(addr: &'a str, deadline: Option<f64>) -> DispatchCall<'a> {
    DispatchCall {
        addr,
        body: "{\"probe\":true}",
        connect_timeout_secs: 5.0,
        timeout_secs: 5.0,
        seq: 0,
        net_seq: 0,
        deadline_secs: deadline,
    }
}

#[test]
fn well_formed_responses_round_trip() {
    let (addr, _rx) = scripted_server(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\n{\"ok\":true}");
    let response = post_shard(&call(&addr, None)).expect("dispatch");
    assert_eq!(response.status, 200);
    assert_eq!(response.body, "{\"ok\":true}");
}

#[test]
fn truncated_response_head_is_a_protocol_error() {
    // The worker died mid-write: the head never reaches its terminator.
    let (addr, _rx) = scripted_server(b"HTTP/1.1 200 OK\r\nContent-Type: applica");
    match post_shard(&call(&addr, None)) {
        Err(ClientError::Protocol(m)) => assert!(m.contains("header terminator"), "{m}"),
        other => panic!("expected Protocol error, got {other:?}"),
    }
}

#[test]
fn garbage_status_line_is_a_protocol_error() {
    let (addr, _rx) = scripted_server(b"ZZZ nope\r\n\r\nbody");
    match post_shard(&call(&addr, None)) {
        Err(ClientError::Protocol(m)) => assert!(m.contains("status line"), "{m}"),
        other => panic!("expected Protocol error, got {other:?}"),
    }
}

#[test]
fn empty_response_is_a_protocol_error() {
    // Connection closed without a single response byte.
    let (addr, _rx) = scripted_server(b"");
    match post_shard(&call(&addr, None)) {
        Err(ClientError::Protocol(m)) => assert!(m.contains("header terminator"), "{m}"),
        other => panic!("expected Protocol error, got {other:?}"),
    }
}

#[test]
fn deadline_header_rides_the_dispatch_only_when_set() {
    let (addr, rx) = scripted_server(b"HTTP/1.1 200 OK\r\n\r\n{}");
    post_shard(&call(&addr, Some(12.5))).expect("dispatch");
    let request = String::from_utf8(rx.recv().expect("captured request")).unwrap();
    assert!(
        request.contains("X-Minpower-Deadline: 12.500\r\n"),
        "missing deadline header in {request:?}"
    );
    assert!(request.contains("POST /shards"), "{request:?}");

    let (addr, rx) = scripted_server(b"HTTP/1.1 200 OK\r\n\r\n{}");
    post_shard(&call(&addr, None)).expect("dispatch");
    let request = String::from_utf8(rx.recv().expect("captured request")).unwrap();
    assert!(
        !request.contains("X-Minpower-Deadline"),
        "spurious deadline header in {request:?}"
    );

    // Exhausted or garbage budgets must not produce a header either.
    for bad in [Some(0.0), Some(-3.0), Some(f64::NAN), Some(f64::INFINITY)] {
        let (addr, rx) = scripted_server(b"HTTP/1.1 200 OK\r\n\r\n{}");
        post_shard(&call(&addr, bad)).expect("dispatch");
        let request = String::from_utf8(rx.recv().expect("captured request")).unwrap();
        assert!(
            !request.contains("X-Minpower-Deadline"),
            "deadline header for {bad:?} in {request:?}"
        );
    }
}

#[test]
fn ndjson_event_streams_parse_and_reject_precisely() {
    // A healthy stream: every line an object, trailing newline present.
    let events =
        parse_ndjson_events("{\"event\":\"progress\",\"polls\":1}\n{\"event\":\"end\"}\n").unwrap();
    assert_eq!(events.len(), 2);

    // Blank keep-alive lines are skipped, not errors.
    let events = parse_ndjson_events("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
    assert_eq!(events.len(), 2);

    // An empty body is an empty stream.
    assert!(parse_ndjson_events("").unwrap().is_empty());

    // Truncated final line (stream cut mid-event): named as such.
    match parse_ndjson_events("{\"event\":\"progress\"}\n{\"event\":\"en") {
        Err(ClientError::Protocol(m)) => assert!(m.contains("truncated final"), "{m}"),
        other => panic!("expected Protocol error, got {other:?}"),
    }

    // A malformed *complete* line is corruption, not truncation.
    match parse_ndjson_events("{\"ok\":1}\nnot json at all\n{\"ok\":2}\n") {
        Err(ClientError::Protocol(m)) => assert!(m.contains("malformed event line 2"), "{m}"),
        other => panic!("expected Protocol error, got {other:?}"),
    }

    // A non-object line is rejected even though it parses as JSON.
    match parse_ndjson_events("[1,2,3]\n") {
        Err(ClientError::Protocol(m)) => assert!(m.contains("not an object"), "{m}"),
        other => panic!("expected Protocol error, got {other:?}"),
    }
}
