//! Appendix-A validation: the closed-form delay and energy models against
//! the transient simulator, across the transregional operating range —
//! the role HSPICE plays in the paper.

use minpower::device::Technology;
use minpower::spice::measure;

fn tech() -> Technology {
    Technology::dac97()
}

/// Analytic worst-case inverter delay: the switching term of Eq. (A3)
/// (no fanin slope, no interconnect in the bench fixture).
fn analytic_inverter_delay(t: &Technology, w: f64, vdd: f64, vt: f64, c_load: f64) -> f64 {
    let c_total = c_load + w * t.c_pd;
    vdd / 2.0 * c_total / (t.drive_current(w, vdd, vt) - t.off_current(w, vt))
}

#[test]
fn inverter_delay_agrees_across_operating_range() {
    let t = tech();
    let (w, c_load) = (8.0, 30e-15);
    for (vdd, vt) in [(3.3, 0.7), (2.5, 0.5), (1.5, 0.35), (1.0, 0.25), (0.8, 0.2)] {
        let analytic = analytic_inverter_delay(&t, w, vdd, vt, c_load);
        let measured = measure::inverter(&t, w, vdd, vt, c_load).worst_delay();
        let ratio = analytic / measured;
        assert!(
            (0.3..3.0).contains(&ratio),
            "({vdd}, {vt}): analytic {analytic:.3e} vs spice {measured:.3e} (x{ratio:.2})"
        );
    }
}

#[test]
fn subthreshold_regime_still_tracks() {
    // Vdd below Vt: the transregional model's whole point.
    let t = tech();
    let analytic = analytic_inverter_delay(&t, 8.0, 0.45, 0.5, 10e-15);
    let measured = measure::inverter(&t, 8.0, 0.45, 0.5, 10e-15).worst_delay();
    assert!(measured > 10.0 * measure::inverter(&t, 8.0, 1.5, 0.5, 10e-15).worst_delay());
    let ratio = analytic / measured;
    assert!(
        (0.1..10.0).contains(&ratio),
        "subthreshold: analytic {analytic:.3e} vs spice {measured:.3e}"
    );
}

#[test]
fn switching_energy_matches_cv2_within_band() {
    let t = tech();
    for (vdd, vt) in [(3.3, 0.7), (1.5, 0.35), (1.0, 0.25)] {
        let (w, c_load) = (8.0, 30e-15);
        let c_total = c_load + w * t.c_pd;
        let analytic = c_total * vdd * vdd;
        let m = measure::inverter(&t, w, vdd, vt, c_load);
        let ratio = analytic / m.switching_energy;
        assert!(
            (0.6..1.7).contains(&ratio),
            "({vdd}, {vt}): CV² {analytic:.3e} vs spice {:.3e}",
            m.switching_energy
        );
    }
}

#[test]
fn series_stack_derating_is_real() {
    // Eq. (A3) divides the drive by the fanin count; the simulator's
    // explicit stack must show the same trend and rough magnitude.
    let t = tech();
    let (w, vdd, vt, c_load) = (8.0, 2.0, 0.4, 30e-15);
    let inv = measure::inverter(&t, w, vdd, vt, c_load).delay_fall;
    let n2 = measure::nand(&t, 2, w, vdd, vt, c_load).delay_fall;
    let n4 = measure::nand(&t, 4, w, vdd, vt, c_load).delay_fall;
    assert!(n2 > inv && n4 > n2);
    // The 4-stack should be several times the inverter, same order as the
    // analytic 4x derating (intermediate-node charge adds on top).
    let factor = n4 / inv;
    assert!((2.0..10.0).contains(&factor), "stack factor {factor}");
}

#[test]
fn leakage_power_tracks_off_current_model() {
    let t = tech();
    let (w, vdd) = (8.0, 2.0);
    for vt in [0.2, 0.35, 0.5] {
        let m = measure::inverter(&t, w, vdd, vt, 20e-15);
        // Quiescent leakage: one network off; both polarities sized w and
        // beta*w, so the measured power is within a small factor of
        // Vdd x I_off(w).
        let analytic = vdd * t.off_current(w, vt);
        let ratio = m.leakage_power / analytic;
        assert!(
            (0.2..8.0).contains(&ratio),
            "vt={vt}: leakage {:.3e} W vs model {analytic:.3e} W",
            m.leakage_power
        );
    }
}

#[test]
fn model_monotonicities_match_simulation() {
    let t = tech();
    let (w, c_load) = (8.0, 30e-15);
    // Both the model and the simulator must agree on the *direction* of
    // every knob the optimizer turns.
    let d = |vdd: f64, vt: f64, w: f64| measure::inverter(&t, w, vdd, vt, c_load).worst_delay();
    assert!(d(1.2, 0.3, w) < d(0.9, 0.3, w)); // vdd up, delay down
    assert!(d(1.2, 0.45, w) > d(1.2, 0.3, w)); // vt up, delay up
    let a = |vdd: f64, vt: f64, w: f64| analytic_inverter_delay(&t, w, vdd, vt, c_load);
    assert!(a(1.2, 0.3, w) < a(0.9, 0.3, w));
    assert!(a(1.2, 0.45, w) > a(1.2, 0.3, w));
}
