//! `minpower` — command-line driver for the DAC'97 device-circuit
//! optimizer.
//!
//! ```text
//! minpower optimize s298 --fc 300e6 --activity 0.3 --report 10
//! minpower optimize my_design.bench --tolerance 0.15 --vt-groups 2
//! minpower baseline s298 --vt 0.7
//! minpower stats c17.v
//! minpower budget s298 --fc 300e6
//! minpower convert c17.bench c17.v
//! minpower suite
//! ```
//!
//! Circuits are named suite members (`minpower suite` lists them) or
//! files with a `.bench` / `.v` extension.

use std::path::Path;
use std::process::ExitCode;

use minpower::opt::report::Report;
use minpower::opt::{baseline, variation};
use minpower::{CircuitModel, Netlist, Optimizer, Problem, SearchOptions, Technology};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    install_engine(&Flags::new(rest))?;
    match command.as_str() {
        "optimize" => optimize(rest),
        "baseline" => baseline_cmd(rest),
        "stats" => stats(rest),
        "budget" => budget(rest),
        "convert" => convert(rest),
        "suite" => {
            println!("s27 (genuine ISCAS-89), c17 (genuine ISCAS-85)");
            for spec in minpower::circuits::specs() {
                println!(
                    "{} (synthetic stand-in: {} gates, {} inputs, depth {})",
                    spec.name, spec.gates, spec.inputs, spec.depth
                );
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `minpower help`)")),
    }
}

fn print_usage() {
    println!(
        "minpower — joint Vdd/Vt/width optimization for CMOS random logic (DAC'97)\n\
         \n\
         usage:\n\
         \x20 minpower optimize <circuit> [--fc HZ] [--activity A] [--steps M]\n\
         \x20                   [--vt-groups N] [--tolerance T] [--skew B] [--report N]\n\
         \x20                   [--sizing budgeted|greedy]\n\
         \x20 minpower baseline <circuit> [--fc HZ] [--activity A] [--vt V]\n\
         \x20 minpower stats    <circuit>\n\
         \x20 minpower budget   <circuit> [--fc HZ]\n\
         \x20 minpower convert  <in.bench|in.v> <out.bench|out.v>\n\
         \x20 minpower suite\n\
         \n\
         engine flags (any command): --threads N (default: all cores),\n\
         \x20 --no-cache (disable probe memoization),\n\
         \x20 --no-incremental (dense recomputation in the sizing loops;\n\
         \x20 bit-identical results, diagnostic/benchmark use)\n\
         \n\
         <circuit> is a suite name (see `minpower suite`) or a .bench/.v file."
    );
}

/// Installs the process-wide evaluation engine from the global
/// `--threads` / `--no-cache` / `--no-incremental` flags. Must run before
/// the first optimization — the first probe materializes the default
/// context.
fn install_engine(flags: &Flags<'_>) -> Result<(), String> {
    let threads = flags.get_usize("--threads", minpower::opt::context::default_threads())?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    let capacity = if flags.has("--no-cache") {
        0
    } else {
        minpower::opt::context::DEFAULT_CACHE_CAPACITY
    };
    minpower::EvalContext::install(
        minpower::EvalContext::new(threads, capacity)
            .with_incremental(!flags.has("--no-incremental")),
    );
    Ok(())
}

fn print_engine_summary() {
    if let Some(summary) = minpower::opt::report::engine_summary() {
        print!("{summary}");
    }
}

/// Minimal flag parser: `--name value` pairs after positional arguments.
struct Flags<'a> {
    args: &'a [String],
}

/// Flags that take no value; every other `--flag` consumes one token.
const BOOLEAN_FLAGS: &[&str] = &["--no-cache", "--no-incremental"];

fn flag_takes_value(flag: &str) -> bool {
    !BOOLEAN_FLAGS.contains(&flag)
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args }
    }

    /// The `index`-th token that is neither a flag nor a flag's value.
    fn positional(&self, index: usize) -> Option<&'a str> {
        let mut skip_next = false;
        let mut seen = 0usize;
        for a in self.args {
            if skip_next {
                skip_next = false;
                continue;
            }
            if a.starts_with("--") {
                skip_next = flag_takes_value(a);
                continue;
            }
            if seen == index {
                return Some(a);
            }
            seen += 1;
        }
        None
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    fn get(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None if self.has(name) => Err(format!("flag {name} requires a value")),
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("flag {name}: cannot parse `{v}`: {e}")),
        }
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None if self.has(name) => Err(format!("flag {name} requires a value")),
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("flag {name}: cannot parse `{v}`: {e}")),
        }
    }
}

fn positional_circuit(flags: &Flags<'_>) -> Result<Netlist, String> {
    // The first non-flag token that is not a flag *value*.
    let mut skip_next = false;
    for a in flags.args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = flag_takes_value(a);
            continue;
        }
        return load_circuit(a);
    }
    Err("missing circuit argument".to_string())
}

fn load_circuit(name: &str) -> Result<Netlist, String> {
    if name.ends_with(".bench") {
        minpower::circuits::load_bench_file(Path::new(name)).map_err(|e| e.to_string())
    } else if name.ends_with(".v") {
        let text = std::fs::read_to_string(name).map_err(|e| format!("{name}: {e}"))?;
        minpower::netlist::verilog::parse(&text).map_err(|e| e.to_string())
    } else if name == "c17" {
        Ok(minpower::circuits::c17())
    } else {
        minpower::circuits::circuit(name).ok_or_else(|| {
            format!("unknown circuit `{name}` (see `minpower suite`, or pass a .bench/.v file)")
        })
    }
}

fn build_problem(netlist: &Netlist, flags: &Flags<'_>) -> Result<Problem, String> {
    let fc = flags.get_f64("--fc", 300.0e6)?;
    let activity = flags.get_f64("--activity", 0.3)?;
    let skew = flags.get_f64("--skew", 1.0)?;
    if fc <= 0.0 {
        return Err("--fc must be positive".to_string());
    }
    if !(0.0..=2.0).contains(&activity) {
        return Err("--activity must lie in [0, 2]".to_string());
    }
    if !(0.0 < skew && skew <= 1.0) {
        return Err("--skew must lie in (0, 1]".to_string());
    }
    let model = CircuitModel::with_uniform_activity(netlist, Technology::dac97(), 0.5, activity);
    Ok(Problem::new(model, fc).with_clock_skew(skew))
}

fn search_options(flags: &Flags<'_>) -> Result<SearchOptions, String> {
    let sizing = match flags.get("--sizing") {
        None | Some("budgeted") => minpower::opt::search::SizingMethod::Budgeted,
        Some("greedy") => minpower::opt::search::SizingMethod::Greedy,
        Some(other) => {
            return Err(format!(
                "--sizing must be `budgeted` or `greedy`, got `{other}`"
            ))
        }
    };
    Ok(SearchOptions {
        steps: flags.get_usize("--steps", 14)?,
        vt_groups: flags.get_usize("--vt-groups", 1)?,
        vt_tolerance: flags.get_f64("--tolerance", 0.0)?,
        sizing,
        ..SearchOptions::default()
    })
}

fn optimize(args: &[String]) -> Result<(), String> {
    let flags = Flags::new(args);
    let netlist = positional_circuit(&flags)?;
    let problem = build_problem(&netlist, &flags)?;
    let options = search_options(&flags)?;
    let top = flags.get_usize("--report", 0)?;
    println!("circuit {}: {}", netlist.name(), netlist.stats());
    let t0 = std::time::Instant::now();
    let result = if options.vt_tolerance > 0.0 {
        variation::optimize_with_tolerance_opts(&problem, options.vt_tolerance, options.clone())
    } else {
        Optimizer::new(&problem).with_options(options).run()
    }
    .map_err(|e| e.to_string())?;
    println!(
        "optimized in {:.2?} ({} circuit evaluations)",
        t0.elapsed(),
        result.evaluations
    );
    println!(
        "Vdd = {:.3} V, Vt = {}",
        result.design.vdd,
        result
            .uniform_vt()
            .map(|v| format!("{:.0} mV", v * 1e3))
            .unwrap_or_else(|| "per-group".to_string())
    );
    println!(
        "energy/cycle: static {:.3e} + dynamic {:.3e} = {:.3e} J",
        result.energy.static_,
        result.energy.dynamic,
        result.energy.total()
    );
    println!(
        "critical delay {:.3} ns of {:.3} ns",
        result.critical_delay * 1e9,
        problem.effective_cycle_time() * 1e9
    );
    if top > 0 {
        let report = Report::build(&problem, &result);
        print!("{}", report.render(top));
    }
    print_engine_summary();
    Ok(())
}

fn baseline_cmd(args: &[String]) -> Result<(), String> {
    let flags = Flags::new(args);
    let netlist = positional_circuit(&flags)?;
    let problem = build_problem(&netlist, &flags)?;
    let vt = flags.get_f64("--vt", 0.7)?;
    let result = baseline::optimize_fixed_vt(&problem, vt, SearchOptions::default())
        .map_err(|e| e.to_string())?;
    println!(
        "fixed Vt = {:.0} mV: Vdd = {:.3} V, energy {:.3e} J/cycle, delay {:.3} ns",
        vt * 1e3,
        result.design.vdd,
        result.energy.total(),
        result.critical_delay * 1e9
    );
    print_engine_summary();
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::new(args);
    let netlist = positional_circuit(&flags)?;
    let s = netlist.stats();
    println!("circuit {}: {s}", netlist.name());
    println!("gate kinds:");
    for (kind, count) in &s.kind_histogram {
        println!("  {kind:<5} {count}");
    }
    println!(
        "max fanin {}, max fanout {}",
        minpower::netlist::transform::max_fanin(&netlist),
        s.max_fanout
    );
    Ok(())
}

fn budget(args: &[String]) -> Result<(), String> {
    let flags = Flags::new(args);
    let netlist = positional_circuit(&flags)?;
    let fc = flags.get_f64("--fc", 300.0e6)?;
    let budgets = minpower::opt::budget::assign_max_delays(&netlist, 1.0 / fc);
    println!("per-gate delay budgets at {:.0} MHz:", fc / 1e6);
    let mut rows: Vec<(&str, f64)> = netlist
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.fanin().is_empty())
        .map(|(i, g)| (g.name(), budgets[i]))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("budgets are finite"));
    for (name, b) in rows {
        println!("  {name:<12} {:.1} ps", b * 1e12);
    }
    println!(
        "worst path budget sum: {:.3} ns (cycle {:.3} ns)",
        minpower::opt::budget::longest_budget_path(&netlist, &budgets) * 1e9,
        1.0 / fc * 1e9
    );
    Ok(())
}

fn convert(args: &[String]) -> Result<(), String> {
    let flags = Flags::new(args);
    let input = flags
        .positional(0)
        .ok_or("convert needs an input file")?
        .to_string();
    let output = flags
        .positional(1)
        .ok_or("convert needs an output file")?
        .to_string();
    let netlist = load_circuit(&input)?;
    let text = if output.ends_with(".bench") {
        minpower::netlist::bench::write(&netlist)
    } else if output.ends_with(".v") {
        minpower::netlist::verilog::write(&netlist)
    } else {
        return Err("output must end in .bench or .v".to_string());
    };
    std::fs::write(&output, text).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "wrote {} ({} gates, {} inputs, {} outputs)",
        output,
        netlist.logic_gate_count(),
        netlist.inputs().len(),
        netlist.outputs().len()
    );
    Ok(())
}
