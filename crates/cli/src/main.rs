//! `minpower` — command-line driver for the DAC'97 device-circuit
//! optimizer.
//!
//! ```text
//! minpower optimize s298 --fc 300e6 --activity 0.3 --report 10
//! minpower optimize my_design.bench --tolerance 0.15 --vt-groups 2
//! minpower baseline s298 --vt 0.7
//! minpower stats c17.v
//! minpower budget s298 --fc 300e6
//! minpower convert c17.bench c17.v
//! minpower suite
//! ```
//!
//! Circuits are named suite members (`minpower suite` lists them) or
//! files with a `.bench` / `.v` extension.

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use minpower::opt::baseline;
use minpower::opt::report::Report;
use minpower::{
    CheckpointSpec, CircuitModel, Netlist, OptimizeError, Optimizer, Problem, RunControl,
    SearchOptions, Technology,
};

/// A CLI failure with a documented exit code (see `minpower help`):
/// `2` bad usage, `3` infeasible problem, `4` interrupted (a partial
/// result was printed), `1` everything else.
#[derive(Debug)]
enum CliError {
    /// Unknown command, bad flag, unreadable or malformed circuit.
    Usage(String),
    /// The optimizer proved no probed design meets the cycle time.
    Infeasible(String),
    /// Ctrl-C or `--time-limit` stopped the run; the best design found
    /// so far (if any) was already printed.
    Interrupted(String),
    /// I/O failures, checkpoint corruption, worker panics.
    Other(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Infeasible(_) => 3,
            CliError::Interrupted(_) => 4,
            CliError::Other(_) => 1,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Infeasible(m)
            | CliError::Interrupted(m)
            | CliError::Other(m) => m,
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

/// Maps optimizer failures onto exit-code classes. `Interrupted` is
/// handled (with partial-result printing) before reaching this.
fn map_opt_err(e: OptimizeError) -> CliError {
    match &e {
        OptimizeError::Infeasible { .. } => CliError::Infeasible(e.to_string()),
        OptimizeError::Interrupted { .. } => CliError::Interrupted(e.to_string()),
        OptimizeError::BadOption { .. } | OptimizeError::EmptyNetwork => {
            CliError::Usage(e.to_string())
        }
        _ => CliError::Other(e.to_string()),
    }
}

/// SIGINT wiring: the first Ctrl-C flips the optimizer's shared cancel
/// token so the search stops at the next probe boundary and reports its
/// best-so-far; a second Ctrl-C falls back to the default disposition
/// (immediate termination).
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static TOKEN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    #[cfg(unix)]
    mod imp {
        const SIGINT: i32 = 2;
        const SIG_DFL: usize = 0;

        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }

        extern "C" fn on_sigint(_sig: i32) {
            // Async-signal context: only lock-free atomics. `get` is a
            // single atomic load; the token was set before installation.
            if let Some(token) = super::TOKEN.get() {
                token.store(true, Ordering::Relaxed);
            }
            // Restore the default handler so a second Ctrl-C kills a run
            // that is stuck between poll points.
            unsafe { signal(SIGINT, SIG_DFL) };
        }

        use super::*;

        pub fn install() {
            unsafe { signal(SIGINT, on_sigint as extern "C" fn(i32) as usize) };
        }
    }

    #[cfg(not(unix))]
    mod imp {
        pub fn install() {}
    }

    /// Arms Ctrl-C to set `token`. Safe to call once per process.
    pub fn install(token: Arc<AtomicBool>) {
        if TOKEN.set(token).is_ok() {
            imp::install();
        }
    }
}

/// SIGTERM wiring for the server commands: a fleet rotation (systemd,
/// Kubernetes, CI) delivers SIGTERM expecting a graceful drain — the
/// server refuses new work but finishes what is in flight, then exits.
/// A second SIGTERM falls back to the default disposition (immediate
/// termination), same escalation shape as Ctrl-C.
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static TOKEN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    #[cfg(unix)]
    mod imp {
        const SIGTERM: i32 = 15;
        const SIG_DFL: usize = 0;

        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }

        extern "C" fn on_sigterm(_sig: i32) {
            if let Some(token) = super::TOKEN.get() {
                token.store(true, Ordering::Relaxed);
            }
            unsafe { signal(SIGTERM, SIG_DFL) };
        }

        use super::*;

        pub fn install() {
            unsafe { signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize) };
        }
    }

    #[cfg(not(unix))]
    mod imp {
        pub fn install() {}
    }

    /// Arms SIGTERM to set `token`. Safe to call once per process.
    pub fn install(token: Arc<AtomicBool>) {
        if TOKEN.set(token).is_ok() {
            imp::install();
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    install_engine(&Flags::new(rest))?;
    match command.as_str() {
        "optimize" => optimize(rest),
        "serve" => serve(rest),
        "coord" => coord(rest),
        "baseline" => baseline_cmd(rest),
        "stats" => stats(rest),
        "budget" => budget(rest),
        "convert" => convert(rest),
        "suite" => {
            println!("s27 (genuine ISCAS-89), c17 (genuine ISCAS-85)");
            for spec in minpower::circuits::specs() {
                println!(
                    "{} (synthetic stand-in: {} gates, {} inputs, depth {})",
                    spec.name, spec.gates, spec.inputs, spec.depth
                );
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `minpower help`)"
        ))),
    }
}

fn print_usage() {
    println!(
        "minpower — joint Vdd/Vt/width optimization for CMOS random logic (DAC'97)\n\
         \n\
         usage:\n\
         \x20 minpower optimize <circuit> [--fc HZ] [--activity A] [--steps M]\n\
         \x20                   [--vt-groups N] [--tolerance T] [--skew B] [--report N]\n\
         \x20                   [--sizing budgeted|greedy] [--time-limit SECS]\n\
         \x20                   [--checkpoint FILE] [--resume FILE] [--format human|json]\n\
         \x20 minpower serve    [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
         \x20                   [--job-time-limit SECS] [--state-dir DIR]\n\
         \x20                   [--max-sessions N] [--session-ttl SECS]\n\
         \x20                   [--ops-rate R] [--ops-burst B]\n\
         \x20                   [--client-rate R] [--client-burst B]\n\
         \x20                   [--session-quota-bytes N] [--session-disk-budget N]\n\
         \x20                   [--mem-budget-bytes N] [--session-compact-bytes N]\n\
         \x20                   [--worker --shared-dir DIR]\n\
         \x20 minpower coord    --workers HOST:PORT,HOST:PORT,... [--addr HOST:PORT]\n\
         \x20                   [--state-dir DIR] [--lease-ttl SECS]\n\
         \x20                   [--dispatch-timeout SECS] [--connect-timeout SECS]\n\
         \x20                   [--retry-budget N] [--hedge-delay-floor SECS]\n\
         \x20                   [--job-deadline SECS] [--max-gates N]\n\
         \x20 minpower baseline <circuit> [--fc HZ] [--activity A] [--vt V]\n\
         \x20 minpower stats    <circuit>\n\
         \x20 minpower budget   <circuit> [--fc HZ]\n\
         \x20 minpower convert  <in.bench|in.v> <out.bench|out.v>\n\
         \x20 minpower suite\n\
         \n\
         engine flags (any command): --threads N (default: all cores),\n\
         \x20 --no-cache (disable probe memoization),\n\
         \x20 --no-incremental (dense recomputation in the sizing loops;\n\
         \x20 bit-identical results, diagnostic/benchmark use),\n\
         \x20 --no-soa (scalar gate-by-gate width sweeps instead of the\n\
         \x20 batched SoA kernel; bit-identical results)\n\
         \n\
         run control (optimize): --time-limit SECS stops the search at the\n\
         \x20 next probe once the soft deadline passes; Ctrl-C stops the same\n\
         \x20 way. Either prints the best design found so far and exits 4.\n\
         \x20 --checkpoint FILE periodically snapshots the run (atomic\n\
         \x20 write-then-rename); --resume FILE restarts from a snapshot and\n\
         \x20 finishes bit-identically to an uninterrupted run.\n\
         \n\
         exit codes: 0 success, 1 runtime error, 2 bad usage,\n\
         \x20 3 infeasible (no design meets the cycle time),\n\
         \x20 4 interrupted (partial result printed if one was found)\n\
         \n\
         <circuit> is a suite name (see `minpower suite`) or a .bench/.v file."
    );
}

/// Installs the process-wide evaluation engine from the global
/// `--threads` / `--no-cache` / `--no-incremental` / `--no-soa` flags.
/// Must run before
/// the first optimization — the first probe materializes the default
/// context.
fn install_engine(flags: &Flags<'_>) -> Result<(), String> {
    let threads = flags.get_usize("--threads", minpower::opt::context::default_threads())?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    let capacity = if flags.has("--no-cache") {
        0
    } else {
        minpower::opt::context::DEFAULT_CACHE_CAPACITY
    };
    minpower::EvalContext::install(
        minpower::EvalContext::new(threads, capacity)
            .with_incremental(!flags.has("--no-incremental"))
            .with_soa(!flags.has("--no-soa")),
    );
    Ok(())
}

fn print_engine_summary() {
    if let Some(summary) = minpower::opt::report::engine_summary() {
        print!("{summary}");
    }
}

/// Minimal flag parser: `--name value` pairs after positional arguments.
struct Flags<'a> {
    args: &'a [String],
}

/// Flags that take no value; every other `--flag` consumes one token.
const BOOLEAN_FLAGS: &[&str] = &["--no-cache", "--no-incremental", "--no-soa", "--worker"];

/// Evaluation-engine flags accepted by every command.
const ENGINE_FLAGS: &[&str] = &["--threads", "--no-cache", "--no-incremental", "--no-soa"];

fn flag_takes_value(flag: &str) -> bool {
    !BOOLEAN_FLAGS.contains(&flag)
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args }
    }

    /// The `index`-th token that is neither a flag nor a flag's value.
    fn positional(&self, index: usize) -> Option<&'a str> {
        let mut skip_next = false;
        let mut seen = 0usize;
        for a in self.args {
            if skip_next {
                skip_next = false;
                continue;
            }
            if a.starts_with("--") {
                skip_next = flag_takes_value(a);
                continue;
            }
            if seen == index {
                return Some(a);
            }
            seen += 1;
        }
        None
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    fn get(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None if self.has(name) => Err(format!("flag {name} requires a value")),
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("flag {name}: cannot parse `{v}`: {e}")),
        }
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None if self.has(name) => Err(format!("flag {name} requires a value")),
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("flag {name}: cannot parse `{v}`: {e}")),
        }
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None if self.has(name) => Err(format!("flag {name} requires a value")),
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("flag {name}: cannot parse `{v}`: {e}")),
        }
    }

    /// Rejects any `--flag` this command does not understand, so a typo
    /// (`--time-limt`) fails loudly as a usage error instead of silently
    /// running with defaults. Engine flags are accepted everywhere.
    fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        let mut skip_next = false;
        for a in self.args {
            if skip_next {
                skip_next = false;
                continue;
            }
            if a.starts_with("--") {
                if !known.contains(&a.as_str()) && !ENGINE_FLAGS.contains(&a.as_str()) {
                    return Err(format!("unknown flag `{a}` (try `minpower help`)"));
                }
                skip_next = flag_takes_value(a);
            }
        }
        Ok(())
    }
}

fn positional_circuit(flags: &Flags<'_>) -> Result<Netlist, String> {
    // The first non-flag token that is not a flag *value*.
    let mut skip_next = false;
    for a in flags.args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = flag_takes_value(a);
            continue;
        }
        return load_circuit(a);
    }
    Err("missing circuit argument".to_string())
}

fn load_circuit(name: &str) -> Result<Netlist, String> {
    if name.ends_with(".bench") {
        minpower::circuits::load_bench_file(Path::new(name)).map_err(|e| e.to_string())
    } else if name.ends_with(".v") {
        let text = std::fs::read_to_string(name).map_err(|e| format!("{name}: {e}"))?;
        minpower::netlist::verilog::parse(&text).map_err(|e| e.to_string())
    } else if name == "c17" {
        Ok(minpower::circuits::c17())
    } else {
        minpower::circuits::circuit(name).ok_or_else(|| {
            format!("unknown circuit `{name}` (see `minpower suite`, or pass a .bench/.v file)")
        })
    }
}

fn build_problem(netlist: &Netlist, flags: &Flags<'_>) -> Result<Problem, String> {
    let fc = flags.get_f64("--fc", 300.0e6)?;
    let activity = flags.get_f64("--activity", 0.3)?;
    let skew = flags.get_f64("--skew", 1.0)?;
    if fc <= 0.0 {
        return Err("--fc must be positive".to_string());
    }
    if !(0.0..=1.0).contains(&activity) {
        return Err("--activity must lie in [0, 1] (a transition density per cycle)".to_string());
    }
    if !(0.0 < skew && skew <= 1.0) {
        return Err("--skew must lie in (0, 1]".to_string());
    }
    let model = CircuitModel::with_uniform_activity(netlist, Technology::dac97(), 0.5, activity);
    Ok(Problem::new(model, fc).with_clock_skew(skew))
}

fn search_options(flags: &Flags<'_>) -> Result<SearchOptions, String> {
    let sizing = match flags.get("--sizing") {
        None | Some("budgeted") => minpower::opt::search::SizingMethod::Budgeted,
        Some("greedy") => minpower::opt::search::SizingMethod::Greedy,
        Some(other) => {
            return Err(format!(
                "--sizing must be `budgeted` or `greedy`, got `{other}`"
            ))
        }
    };
    Ok(SearchOptions {
        steps: flags.get_usize("--steps", 14)?,
        vt_groups: flags.get_usize("--vt-groups", 1)?,
        vt_tolerance: flags.get_f64("--tolerance", 0.0)?,
        sizing,
        ..SearchOptions::default()
    })
}

/// How `optimize` renders its result on stdout.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    /// The human-readable block + optional gate table (default).
    Human,
    /// One `minpower-result` JSON document — the exact schema
    /// `minpower serve` returns for a finished job, so scripted callers
    /// can switch between the CLI and the service without reparsing.
    Json,
}

fn output_format(flags: &Flags<'_>) -> Result<OutputFormat, String> {
    match flags.get("--format") {
        None if flags.has("--format") => Err("flag --format requires a value".to_string()),
        None | Some("human") => Ok(OutputFormat::Human),
        Some("json") => Ok(OutputFormat::Json),
        Some(other) => Err(format!("--format must be `human` or `json`, got `{other}`")),
    }
}

/// Prints the result block shared by complete and interrupted runs.
fn print_result(problem: &Problem, result: &minpower::OptimizationResult, top: usize) {
    println!(
        "Vdd = {:.3} V, Vt = {}",
        result.design.vdd,
        result
            .uniform_vt()
            .map(|v| format!("{:.0} mV", v * 1e3))
            .unwrap_or_else(|| "per-group".to_string())
    );
    println!(
        "energy/cycle: static {:.3e} + dynamic {:.3e} = {:.3e} J",
        result.energy.static_,
        result.energy.dynamic,
        result.energy.total()
    );
    println!(
        "critical delay {:.3} ns of {:.3} ns",
        result.critical_delay * 1e9,
        problem.effective_cycle_time() * 1e9
    );
    if top > 0 {
        let report = Report::build(problem, result);
        print!("{}", report.render(top));
    }
}

fn optimize(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::new(args);
    flags.reject_unknown(&[
        "--fc",
        "--activity",
        "--skew",
        "--steps",
        "--vt-groups",
        "--tolerance",
        "--sizing",
        "--report",
        "--time-limit",
        "--checkpoint",
        "--resume",
        "--format",
    ])?;
    let netlist = positional_circuit(&flags)?;
    let problem = build_problem(&netlist, &flags)?;
    let options = search_options(&flags)?;
    let top = flags.get_usize("--report", 0)?;
    let format = output_format(&flags)?;

    let mut control = RunControl::new();
    let time_limit = flags.get_f64("--time-limit", 0.0)?;
    if time_limit < 0.0 || (flags.has("--time-limit") && !time_limit.is_finite()) {
        return Err(CliError::Usage(
            "--time-limit must be a finite, non-negative number of seconds".to_string(),
        ));
    }
    if time_limit > 0.0 {
        control = control.with_deadline(Duration::from_secs_f64(time_limit));
    }
    sigint::install(control.cancel_token());

    let mut optimizer = Optimizer::new(&problem)
        .with_options(options)
        .with_run_control(control.clone());
    if let Some(path) = flags.get("--checkpoint") {
        optimizer = optimizer.with_checkpoint(CheckpointSpec::new(path));
    } else if flags.has("--checkpoint") {
        return Err(CliError::Usage(
            "flag --checkpoint requires a file path".to_string(),
        ));
    }
    if let Some(path) = flags.get("--resume") {
        optimizer = optimizer.resume_from(path);
    } else if flags.has("--resume") {
        return Err(CliError::Usage(
            "flag --resume requires a file path".to_string(),
        ));
    }

    if format == OutputFormat::Human {
        println!("circuit {}: {}", netlist.name(), netlist.stats());
    }
    let t0 = std::time::Instant::now();
    let result = match optimizer.run() {
        Ok(result) => result,
        Err(OptimizeError::Interrupted {
            reason,
            best_so_far,
            progress,
        }) => {
            eprintln!(
                "interrupted ({reason}) after {} evaluations in {:.1} s",
                progress.evaluations, progress.elapsed_secs
            );
            match best_so_far {
                Some(best) => match format {
                    OutputFormat::Human => {
                        println!("best design so far (valid, delay-feasible):");
                        print_result(&problem, &best, top);
                        print_engine_summary();
                    }
                    OutputFormat::Json => {
                        // Stdout stays one parseable document even on
                        // interruption; the diagnostics above went to stderr.
                        println!(
                            "{}",
                            minpower::opt::report::result_to_json(&problem, &best, top).render()
                        );
                    }
                },
                None => eprintln!("no feasible design found before the interruption"),
            }
            return Err(CliError::Interrupted(format!("run interrupted ({reason})")));
        }
        Err(e) => return Err(map_opt_err(e)),
    };
    match format {
        OutputFormat::Human => {
            println!(
                "optimized in {:.2?} ({} circuit evaluations)",
                t0.elapsed(),
                result.evaluations
            );
            print_result(&problem, &result, top);
            print_engine_summary();
        }
        OutputFormat::Json => println!(
            "{}",
            minpower::opt::report::result_to_json(&problem, &result, top).render()
        ),
    }
    Ok(())
}

/// `minpower serve`: run the HTTP optimization service until SIGINT (or
/// `POST /shutdown`) drains it. Prints `listening on <addr>` first so
/// scripts binding port 0 can discover the actual port. Exit codes
/// follow the CLI convention: 0 for a clean drain, 4 when jobs were
/// interrupted mid-run (they stay resumable in the state directory).
fn serve(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::new(args);
    flags.reject_unknown(&[
        "--addr",
        "--workers",
        "--queue-depth",
        "--job-time-limit",
        "--state-dir",
        "--max-gates",
        "--worker",
        "--shared-dir",
        "--max-sessions",
        "--session-ttl",
        "--ops-rate",
        "--ops-burst",
        "--client-rate",
        "--client-burst",
        "--session-quota-bytes",
        "--session-disk-budget",
        "--mem-budget-bytes",
        "--session-compact-bytes",
    ])?;
    let mut config = minpower_serve::Config {
        addr: flags.get("--addr").unwrap_or("127.0.0.1:7817").to_string(),
        workers: flags.get_usize("--workers", 2)?,
        queue_depth: flags.get_usize("--queue-depth", 16)?,
        job_time_limit: flags.get_f64("--job-time-limit", 0.0)?,
        ..minpower_serve::Config::default()
    };
    config.max_gates = flags.get_usize("--max-gates", config.max_gates)?;
    config.max_sessions = flags.get_usize("--max-sessions", config.max_sessions)?;
    config.session_ttl = flags.get_f64("--session-ttl", config.session_ttl)?;
    if config.max_sessions == 0 {
        return Err(CliError::Usage(
            "--max-sessions must be at least 1".to_string(),
        ));
    }
    if config.session_ttl < 0.0 || !config.session_ttl.is_finite() {
        return Err(CliError::Usage(
            "--session-ttl must be a finite, non-negative number of seconds (0 disables the sweep)"
                .to_string(),
        ));
    }
    config.ops_rate = flags.get_f64("--ops-rate", config.ops_rate)?;
    config.ops_burst = flags.get_f64("--ops-burst", config.ops_burst)?;
    config.client_rate = flags.get_f64("--client-rate", config.client_rate)?;
    config.client_burst = flags.get_f64("--client-burst", config.client_burst)?;
    for (name, value) in [
        ("--ops-rate", config.ops_rate),
        ("--ops-burst", config.ops_burst),
        ("--client-rate", config.client_rate),
        ("--client-burst", config.client_burst),
    ] {
        if value < 0.0 || !value.is_finite() {
            return Err(CliError::Usage(format!(
                "{name} must be a finite, non-negative number (0 disables the limiter)"
            )));
        }
    }
    config.session_quota_bytes =
        flags.get_u64("--session-quota-bytes", config.session_quota_bytes)?;
    config.session_disk_budget =
        flags.get_u64("--session-disk-budget", config.session_disk_budget)?;
    config.mem_budget_bytes = flags.get_u64("--mem-budget-bytes", config.mem_budget_bytes)?;
    config.session_compact_bytes =
        flags.get_u64("--session-compact-bytes", config.session_compact_bytes)?;
    if let Some(dir) = flags.get("--state-dir") {
        config.state_dir = dir.into();
    }
    config.worker = flags.has("--worker");
    config.shared_dir = flags.get("--shared-dir").map(Into::into);
    if config.shared_dir.is_some() && !config.worker {
        return Err(CliError::Usage(
            "--shared-dir requires --worker".to_string(),
        ));
    }
    if config.workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".to_string()));
    }
    if config.job_time_limit < 0.0 || !config.job_time_limit.is_finite() {
        return Err(CliError::Usage(
            "--job-time-limit must be a finite, non-negative number of seconds".to_string(),
        ));
    }
    // Fail fast (exit 2) on a state dir that is a file, uncreatable, or
    // not writable — not on the first job's persist attempt.
    minpower_serve::validate_state_dir(&config.state_dir).map_err(CliError::Usage)?;
    let server = minpower_serve::Server::bind(config)
        .map_err(|e| CliError::Other(format!("bind failed: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Other(format!("local_addr: {e}")))?;
    sigint::install(server.stop_token());
    sigterm::install(server.graceful_token());
    println!("listening on {addr}");
    match server.run() {
        minpower_serve::DrainOutcome::Clean => Ok(()),
        minpower_serve::DrainOutcome::JobsInterrupted => Err(CliError::Interrupted(
            "drained with jobs interrupted (resumable from the state directory)".to_string(),
        )),
    }
}

fn coord(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::new(args);
    flags.reject_unknown(&[
        "--addr",
        "--workers",
        "--state-dir",
        "--lease-ttl",
        "--dispatch-timeout",
        "--connect-timeout",
        "--max-gates",
        "--worker-failure-limit",
        "--retry-budget",
        "--hedge-delay-floor",
        "--job-deadline",
    ])?;
    let workers: Vec<String> = flags
        .get("--workers")
        .map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    if workers.is_empty() {
        return Err(CliError::Usage(
            "--workers requires a comma-separated list of worker endpoints (host:port)".to_string(),
        ));
    }
    let mut config = minpower_coord::Config {
        addr: flags.get("--addr").unwrap_or("127.0.0.1:7818").to_string(),
        workers,
        lease_ttl: flags.get_f64("--lease-ttl", 30.0)?,
        dispatch_timeout: flags.get_f64("--dispatch-timeout", 600.0)?,
        ..minpower_coord::Config::default()
    };
    config.max_gates = flags.get_usize("--max-gates", config.max_gates)?;
    config.worker_failure_limit = flags.get_usize(
        "--worker-failure-limit",
        config.worker_failure_limit as usize,
    )? as u32;
    config.retry_budget = flags.get_usize("--retry-budget", config.retry_budget as usize)? as u32;
    config.connect_timeout = flags.get_f64("--connect-timeout", config.connect_timeout)?;
    config.hedge_delay_floor = flags.get_f64("--hedge-delay-floor", config.hedge_delay_floor)?;
    config.job_deadline = flags.get_f64("--job-deadline", config.job_deadline)?;
    if let Some(dir) = flags.get("--state-dir") {
        config.store_dir = dir.into();
    }
    if !(config.lease_ttl.is_finite() && config.lease_ttl > 0.0) {
        return Err(CliError::Usage(
            "--lease-ttl must be a positive number of seconds".to_string(),
        ));
    }
    if !(config.dispatch_timeout.is_finite() && config.dispatch_timeout > 0.0) {
        return Err(CliError::Usage(
            "--dispatch-timeout must be a positive number of seconds".to_string(),
        ));
    }
    if !(config.connect_timeout.is_finite() && config.connect_timeout > 0.0) {
        return Err(CliError::Usage(
            "--connect-timeout must be a positive number of seconds".to_string(),
        ));
    }
    if !(config.hedge_delay_floor.is_finite() && config.hedge_delay_floor >= 0.0) {
        return Err(CliError::Usage(
            "--hedge-delay-floor must be a finite, non-negative number of seconds".to_string(),
        ));
    }
    if !(config.job_deadline.is_finite() && config.job_deadline >= 0.0) {
        return Err(CliError::Usage(
            "--job-deadline must be a finite, non-negative number of seconds (0 disables)"
                .to_string(),
        ));
    }
    minpower_serve::validate_state_dir(&config.store_dir).map_err(CliError::Usage)?;
    let server = minpower_coord::CoordServer::bind(config)
        .map_err(|e| CliError::Other(format!("bind failed: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Other(format!("local_addr: {e}")))?;
    sigint::install(server.stop_token());
    // The coordinator's drain already leaves undispatched shards pending
    // and resumable, so SIGTERM and SIGINT share the stop token.
    sigterm::install(server.stop_token());
    println!("coordinating on {addr}");
    match server.run() {
        minpower_serve::DrainOutcome::Clean => Ok(()),
        minpower_serve::DrainOutcome::JobsInterrupted => Err(CliError::Interrupted(
            "drained with jobs interrupted (resumable from the state directory)".to_string(),
        )),
    }
}

fn baseline_cmd(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::new(args);
    flags.reject_unknown(&["--fc", "--activity", "--skew", "--vt"])?;
    let netlist = positional_circuit(&flags)?;
    let problem = build_problem(&netlist, &flags)?;
    let vt = flags.get_f64("--vt", 0.7)?;
    let result =
        baseline::optimize_fixed_vt(&problem, vt, SearchOptions::default()).map_err(map_opt_err)?;
    println!(
        "fixed Vt = {:.0} mV: Vdd = {:.3} V, energy {:.3e} J/cycle, delay {:.3} ns",
        vt * 1e3,
        result.design.vdd,
        result.energy.total(),
        result.critical_delay * 1e9
    );
    print_engine_summary();
    Ok(())
}

fn stats(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::new(args);
    flags.reject_unknown(&[])?;
    let netlist = positional_circuit(&flags)?;
    let s = netlist.stats();
    println!("circuit {}: {s}", netlist.name());
    println!("gate kinds:");
    for (kind, count) in &s.kind_histogram {
        println!("  {kind:<5} {count}");
    }
    println!(
        "max fanin {}, max fanout {}",
        minpower::netlist::transform::max_fanin(&netlist),
        s.max_fanout
    );
    Ok(())
}

fn budget(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::new(args);
    flags.reject_unknown(&["--fc"])?;
    let netlist = positional_circuit(&flags)?;
    let fc = flags.get_f64("--fc", 300.0e6)?;
    let budgets = minpower::opt::budget::assign_max_delays(&netlist, 1.0 / fc);
    println!("per-gate delay budgets at {:.0} MHz:", fc / 1e6);
    let mut rows: Vec<(&str, f64)> = netlist
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.fanin().is_empty())
        .map(|(i, g)| (g.name(), budgets[i]))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("budgets are finite"));
    for (name, b) in rows {
        println!("  {name:<12} {:.1} ps", b * 1e12);
    }
    println!(
        "worst path budget sum: {:.3} ns (cycle {:.3} ns)",
        minpower::opt::budget::longest_budget_path(&netlist, &budgets) * 1e9,
        1.0 / fc * 1e9
    );
    Ok(())
}

fn convert(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::new(args);
    flags.reject_unknown(&[])?;
    let input = flags
        .positional(0)
        .ok_or_else(|| CliError::Usage("convert needs an input file".to_string()))?
        .to_string();
    let output = flags
        .positional(1)
        .ok_or_else(|| CliError::Usage("convert needs an output file".to_string()))?
        .to_string();
    let netlist = load_circuit(&input)?;
    let text = if output.ends_with(".bench") {
        minpower::netlist::bench::write(&netlist)
    } else if output.ends_with(".v") {
        minpower::netlist::verilog::write(&netlist)
    } else {
        return Err(CliError::Usage(
            "output must end in .bench or .v".to_string(),
        ));
    };
    std::fs::write(&output, text).map_err(|e| CliError::Other(format!("{output}: {e}")))?;
    println!(
        "wrote {} ({} gates, {} inputs, {} outputs)",
        output,
        netlist.logic_gate_count(),
        netlist.inputs().len(),
        netlist.outputs().len()
    );
    Ok(())
}
