use minpower::opt::baseline;
use minpower::opt::budget::BudgetPolicy;
use minpower::{CircuitModel, Optimizer, Problem, SearchOptions, Technology};

fn main() {
    for name in ["s27", "s298", "s713"] {
        let n = minpower::circuits::circuit(name).unwrap();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        let p = Problem::new(model, 300.0e6);
        for policy in [BudgetPolicy::FanoutWeighted, BudgetPolicy::Uniform] {
            let opts = SearchOptions {
                budget_policy: policy,
                ..SearchOptions::default()
            };
            let b = baseline::optimize_fixed_vt(&p, 0.7, opts.clone())
                .map(|r| r.energy.total())
                .unwrap_or(f64::NAN);
            let j = Optimizer::new(&p)
                .with_options(opts)
                .run()
                .map(|r| r.energy.total())
                .unwrap_or(f64::NAN);
            println!(
                "{name} {policy:?}: baseline {b:.3e} joint {j:.3e} savings {:.1}x",
                b / j
            );
        }
    }
}
