//! `minpower` — a Rust reproduction of *Device-Circuit Optimization for
//! Minimal Energy and Power Consumption in CMOS Random Logic Networks*
//! (Pant, De, Chatterjee — DAC 1997).
//!
//! This facade re-exports the whole workspace under stable module names:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`netlist`] | `minpower-netlist` | gate-level DAG, ISCAS `.bench` I/O |
//! | [`device`] | `minpower-device` | technology + transregional MOSFET model |
//! | [`wiring`] | `minpower-wiring` | Rent's-rule a-priori wire-length model |
//! | [`activity`] | `minpower-activity` | signal probability + transition density |
//! | [`models`] | `minpower-models` | Appendix-A energy/delay models |
//! | [`timing`] | `minpower-timing` | STA, criticality, K-most-critical paths |
//! | [`opt`] | `minpower-core` | Procedures 1 + 2, baselines, annealing, variation |
//! | [`spice`] | `minpower-spice` | transient simulator (HSPICE substitute) |
//! | [`circuits`] | `minpower-circuits` | s27/c17 + synthetic ISCAS-like suite |
//! | [`bdd`] | `minpower-bdd` | ROBDDs for exact probability analysis |
//! | [`engine`] | `minpower-engine` | worker pool, probe cache, telemetry |
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use minpower::{CircuitModel, Optimizer, Problem, Technology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = minpower::circuits::s27();
//! let model = CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, 0.1);
//! let problem = Problem::new(model, 300.0e6);
//! let result = Optimizer::new(&problem).run()?;
//! println!(
//!     "s27 @300 MHz: {:.2e} J/cycle at Vdd = {:.2} V",
//!     result.energy.total(),
//!     result.design.vdd
//! );
//! assert!(result.feasible);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use minpower_activity as activity;
pub use minpower_bdd as bdd;
pub use minpower_circuits as circuits;
pub use minpower_core as opt;
pub use minpower_device as device;
pub use minpower_engine as engine;
pub use minpower_models as models;
pub use minpower_netlist as netlist;
pub use minpower_spice as spice;
pub use minpower_timing as timing;
pub use minpower_wiring as wiring;

pub use minpower_activity::{Activities, InputActivity};
pub use minpower_core::{
    Checkpoint, CheckpointSpec, EvalContext, OptimizationResult, OptimizeError, Optimizer, Problem,
    Progress, RunControl, SearchOptions, TripReason,
};
pub use minpower_device::Technology;
pub use minpower_models::{CircuitModel, Design, EnergyBreakdown};
pub use minpower_netlist::{GateKind, Netlist, NetlistBuilder, NetlistError};
pub use minpower_wiring::WireModel;
