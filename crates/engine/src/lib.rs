//! `minpower-engine` — the shared evaluation substrate of the workspace.
//!
//! Procedure 2 of the paper costs `O(M³)` *full-circuit* evaluations per
//! optimization, and the experiment harness multiplies that by the suite
//! size, the ablation grid, and hundreds of Monte-Carlo trials. This
//! crate is the single choke-point those evaluations flow through, built
//! from three dependency-free layers:
//!
//! 1. **[`pool`]** — a scoped worker pool (`std::thread::scope` +
//!    channels, no external crates) exposing [`pool::par_map`] /
//!    [`pool::par_chunks`] with a `threads` knob. `threads = 1` is a
//!    strict serial fallback: it runs the closure in submission order on
//!    the calling thread, so serial output is bit-identical to the
//!    pre-engine code path.
//! 2. **[`cache`]** — [`cache::EvalCache`], an LRU-bounded memo from a
//!    quantized operating point (`V_dd` bucket, per-gate `V_ts` buckets,
//!    FNV-1a hash of the width vector) to an evaluation outcome. Hits
//!    additionally require an exact bit-pattern fingerprint match, so a
//!    cached result is only ever returned for the *identical* operating
//!    point — caching can change wall time but never results.
//! 3. **[`stats`]** — [`stats::EngineStats`], lock-free atomic telemetry
//!    (circuit evaluations, STA passes, cache hits/misses, per-phase wall
//!    time) that the CLI and the experiment harness print.
//!
//! [`rng`] rounds the crate out with a seedable SplitMix64/xorshift PRNG
//! so the annealer, the synthetic-circuit generator, and the Monte-Carlo
//! yield analysis need no external `rand` dependency (the build must
//! resolve offline) and every stream can be split per trial for
//! thread-count-independent reproducibility.
//!
//! Robustness: the pool contains worker panics
//! ([`pool::try_par_map_indices`] returns a typed
//! [`pool::WorkerPanicked`] carrying the surviving sibling results), and
//! the feature-gated [`faults`] module provides deterministic,
//! failpoints-style fault injection (worker panics, NaN model outputs,
//! simulated clock jumps) for the resilience test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod faults;
pub mod pool;
pub mod rng;
pub mod stats;

pub use cache::{fnv1a_words, CacheStats, EvalCache, Fingerprint, PointKey, Quantizer};
pub use pool::{par_chunks, par_map, par_map_indices, try_par_map_indices, WorkerPanicked};
pub use rng::SplitMix64;
pub use stats::{EngineStats, Phase, StatsSnapshot};
