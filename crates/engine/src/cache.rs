//! LRU-bounded memoization of full-circuit evaluations.
//!
//! The nested golden-section searches of Procedure 2 and the benchmark
//! ablations revisit the same `(V_dd, V⃗_ts, W⃗)` operating points many
//! times. [`EvalCache`] maps a *quantized* operating point — a `V_dd`
//! bucket, FNV-1a over per-group `V_ts` buckets, FNV-1a over the width
//! vector buckets — to an arbitrary evaluation outcome.
//!
//! Quantization alone would make caching lossy (two nearby points could
//! share a bucket and return each other's results), so every entry also
//! stores an exact bit-pattern [`Fingerprint`] of the un-quantized inputs
//! and a lookup only hits when the fingerprint matches. The bucketed
//! [`PointKey`] is the index; the fingerprint is the proof. Caching can
//! therefore change wall time but never results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a over 64-bit words.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    pub(crate) fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Hashes a sequence of 64-bit words with FNV-1a.
pub fn fnv1a_words<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut h = Fnv1a::new();
    for w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// The quantized index of an operating point: which `V_dd` bucket it
/// falls in plus FNV-1a digests of its `V_ts` and width bucket vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PointKey {
    /// `floor(vdd / vdd_step)` for the supply voltage.
    pub vdd_bucket: i64,
    /// FNV-1a over the per-group threshold-voltage buckets.
    pub vt_hash: u64,
    /// FNV-1a over the width-vector buckets.
    pub width_hash: u64,
    /// Caller-supplied salt separating circuits / option sets that would
    /// otherwise probe identical numeric points.
    pub salt: u64,
}

/// Exact bit-pattern digest of the un-quantized operating point. Two
/// points share a fingerprint only if every `f64` input is bit-identical
/// (modulo an FNV collision, ~2⁻⁶⁴ per pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint(pub u64);

/// Maps continuous operating points to ([`PointKey`], [`Fingerprint`])
/// pairs using fixed bucket widths.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    /// Bucket width for the supply voltage, in volts.
    pub vdd_step: f64,
    /// Bucket width for threshold voltages, in volts.
    pub vt_step: f64,
    /// Bucket width for gate widths (multiples of minimum width).
    pub w_step: f64,
}

impl Default for Quantizer {
    fn default() -> Self {
        // Well below the optimizer's convergence tolerances (~1e-3 V on
        // voltages), so distinct probes land in distinct buckets.
        Quantizer {
            vdd_step: 1e-6,
            vt_step: 1e-6,
            w_step: 1e-6,
        }
    }
}

impl Quantizer {
    fn bucket(x: f64, step: f64) -> i64 {
        (x / step).floor() as i64
    }

    /// Quantizes an operating point. `salt` distinguishes call sites that
    /// probe numerically identical points on different circuits or under
    /// different sizing options.
    pub fn key(&self, vdd: f64, vts: &[f64], widths: &[f64], salt: u64) -> (PointKey, Fingerprint) {
        let vt_hash = fnv1a_words(vts.iter().map(|&v| Self::bucket(v, self.vt_step) as u64));
        let width_hash = fnv1a_words(widths.iter().map(|&w| Self::bucket(w, self.w_step) as u64));
        let key = PointKey {
            vdd_bucket: Self::bucket(vdd, self.vdd_step),
            vt_hash,
            width_hash,
            salt,
        };
        let mut fp = Fnv1a::new();
        fp.write_u64(salt);
        fp.write_u64(vdd.to_bits());
        fp.write_u64(vts.len() as u64);
        for &v in vts {
            fp.write_u64(v.to_bits());
        }
        for &w in widths {
            fp.write_u64(w.to_bits());
        }
        (key, Fingerprint(fp.finish()))
    }
}

/// Counters describing cache effectiveness. `hits + misses` equals the
/// total number of lookups; `insertions` and `evictions` bound the live
/// entry count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a stored value.
    pub hits: u64,
    /// Lookups that found nothing (or a fingerprint mismatch).
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// Entries removed by LRU pressure.
    pub evictions: u64,
    /// Entries currently live.
    pub len: usize,
}

struct Entry<V> {
    fingerprint: Fingerprint,
    value: V,
    stamp: u64,
}

struct Inner<V> {
    map: HashMap<PointKey, Entry<V>>,
    clock: u64,
}

/// A thread-safe, LRU-bounded memo from quantized operating points to
/// evaluation outcomes.
///
/// Recency is tracked with a monotonic stamp per entry; when the map
/// exceeds `capacity`, the oldest eighth of the entries is evicted in one
/// amortized batch rather than maintaining a linked list per access.
pub struct EvalCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> EvalCache<V> {
    /// Creates a cache holding at most `capacity` entries (minimum 8).
    pub fn new(capacity: usize) -> Self {
        EvalCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(8),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a point. Hits require both the quantized key and the
    /// exact fingerprint to match.
    pub fn get(&self, key: &PointKey, fingerprint: Fingerprint) -> Option<V> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) if entry.fingerprint == fingerprint => {
                entry.stamp = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a value, evicting the least-recently-used entries if the
    /// cache is over capacity.
    pub fn insert(&self, key: PointKey, fingerprint: Fingerprint, value: V) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(
            key,
            Entry {
                fingerprint,
                value,
                stamp,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if inner.map.len() > self.capacity {
            // Drop the oldest ~1/8 in one pass: O(n) now, amortized O(1)
            // per insertion, and no per-access list surgery.
            let keep = self.capacity - self.capacity / 8;
            let mut stamps: Vec<u64> = inner.map.values().map(|e| e.stamp).collect();
            stamps.sort_unstable();
            let cutoff = stamps[stamps.len() - keep];
            let before = inner.map.len();
            inner.map.retain(|_, e| e.stamp >= cutoff);
            let removed = (before - inner.map.len()) as u64;
            self.evictions.fetch_add(removed, Ordering::Relaxed);
        }
    }

    /// Returns the cached value for the point, or computes, stores and
    /// returns it.
    pub fn get_or_compute<F: FnOnce() -> V>(
        &self,
        key: PointKey,
        fingerprint: Fingerprint,
        compute: F,
    ) -> V {
        if let Some(v) = self.get(&key, fingerprint) {
            return v;
        }
        let v = compute();
        self.insert(key, fingerprint, v.clone());
        v
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_points_hit_distinct_points_miss() {
        let q = Quantizer::default();
        let cache: EvalCache<u32> = EvalCache::new(64);
        let (k, fp) = q.key(1.2, &[0.35, 0.4], &[1.0, 2.0, 3.0], 7);
        assert_eq!(cache.get(&k, fp), None);
        cache.insert(k, fp, 99);
        assert_eq!(cache.get(&k, fp), Some(99));
        // A point one bucket away gets a different key entirely.
        let (k2, fp2) = q.key(1.2 + 2.0 * q.vdd_step, &[0.35, 0.4], &[1.0, 2.0, 3.0], 7);
        assert_ne!(k, k2);
        assert_eq!(cache.get(&k2, fp2), None);
    }

    #[test]
    fn same_bucket_different_bits_never_aliases() {
        // Two points inside the same bucket share a PointKey but must not
        // return each other's values: the fingerprint disambiguates.
        let q = Quantizer::default();
        let cache: EvalCache<u32> = EvalCache::new(64);
        let vdd_a = 1.200_000_000_1;
        let vdd_b = 1.200_000_000_2;
        let (ka, fa) = q.key(vdd_a, &[0.35], &[1.0], 0);
        let (kb, fb) = q.key(vdd_b, &[0.35], &[1.0], 0);
        assert_eq!(ka, kb, "points this close should share a bucket");
        assert_ne!(fa, fb);
        cache.insert(ka, fa, 1);
        assert_eq!(cache.get(&kb, fb), None, "fingerprint mismatch must miss");
    }

    #[test]
    fn quantization_never_aliases_beyond_one_bucket() {
        // Sweep pairs of points; whenever any coordinate differs by more
        // than one bucket width, the keys must differ.
        let q = Quantizer {
            vdd_step: 0.01,
            vt_step: 0.01,
            w_step: 0.05,
        };
        let mut rng = crate::rng::SplitMix64::new(0x5EED);
        for _ in 0..2000 {
            let vdd = rng.range_f64(0.5, 3.0);
            let vt = rng.range_f64(0.1, 0.8);
            let w = rng.range_f64(1.0, 20.0);
            let (k1, _) = q.key(vdd, &[vt], &[w], 0);
            let dv = rng.range_f64(-0.1, 0.1);
            let dt = rng.range_f64(-0.1, 0.1);
            let dw = rng.range_f64(-0.5, 0.5);
            let (k2, _) = q.key(vdd + dv, &[vt + dt], &[w + dw], 0);
            let beyond = dv.abs() > q.vdd_step || dt.abs() > q.vt_step || dw.abs() > q.w_step;
            if beyond && k1 == k2 {
                panic!("aliased across >1 bucket: d=({dv:.4},{dt:.4},{dw:.4}) key={k1:?}");
            }
        }
    }

    #[test]
    fn salt_separates_identical_numeric_points() {
        let q = Quantizer::default();
        let (k1, f1) = q.key(1.0, &[0.3], &[1.0], 1);
        let (k2, f2) = q.key(1.0, &[0.3], &[1.0], 2);
        assert_ne!(k1, k2);
        assert_ne!(f1, f2);
    }

    #[test]
    fn lru_eviction_bounds_memory() {
        let q = Quantizer::default();
        let cache: EvalCache<usize> = EvalCache::new(100);
        for i in 0..10_000 {
            let (k, fp) = q.key(i as f64, &[], &[], 0);
            cache.insert(k, fp, i);
            assert!(cache.len() <= cache.capacity() + 1);
        }
        let stats = cache.stats();
        assert!(stats.len <= 100);
        assert_eq!(stats.insertions, 10_000);
        assert_eq!(stats.evictions, 10_000 - stats.len as u64);
    }

    #[test]
    fn eviction_keeps_recently_used_entries() {
        let q = Quantizer::default();
        let cache: EvalCache<usize> = EvalCache::new(64);
        let (hot_k, hot_fp) = q.key(-1.0, &[], &[], 0);
        cache.insert(hot_k, hot_fp, 42);
        for i in 0..1000 {
            // Touch the hot entry so its stamp stays fresh.
            assert_eq!(cache.get(&hot_k, hot_fp), Some(42));
            let (k, fp) = q.key(i as f64, &[], &[], 0);
            cache.insert(k, fp, i);
        }
        assert_eq!(cache.get(&hot_k, hot_fp), Some(42));
    }

    #[test]
    fn hit_miss_counters_sum_to_lookups() {
        let q = Quantizer::default();
        let cache: EvalCache<u8> = EvalCache::new(32);
        let mut rng = crate::rng::SplitMix64::new(1);
        let mut lookups = 0u64;
        for _ in 0..500 {
            let x = rng.range_usize(40) as f64;
            let (k, fp) = q.key(x, &[], &[], 0);
            let _ = cache.get_or_compute(k, fp, || 0);
            lookups += 1;
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, lookups);
        assert!(stats.hits > 0, "repeated points should hit");
        assert_eq!(stats.misses, stats.insertions);
    }

    #[test]
    fn get_or_compute_skips_recompute_on_hit() {
        let cache: EvalCache<u32> = EvalCache::new(16);
        let q = Quantizer::default();
        let (k, fp) = q.key(0.9, &[0.3], &[1.0, 1.0], 0);
        let mut calls = 0;
        let a = cache.get_or_compute(k, fp, || {
            calls += 1;
            7
        });
        let b = cache.get_or_compute(k, fp, || {
            calls += 1;
            8
        });
        assert_eq!((a, b, calls), (7, 7, 1));
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let cache: EvalCache<usize> = EvalCache::new(256);
        let q = Quantizer::default();
        let results = crate::pool::par_map_indices(8, 1000, |i| {
            let (k, fp) = q.key((i % 50) as f64, &[], &[], 0);
            cache.get_or_compute(k, fp, || i % 50)
        });
        for (i, r) in results.into_iter().enumerate() {
            assert_eq!(r, i % 50);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 1000);
    }
}
