//! Lock-free telemetry for the evaluation engine.
//!
//! [`EngineStats`] is a bundle of atomic counters shared (via `Arc`)
//! between the optimizer call sites and whatever prints the report — the
//! CLI, the experiment harness, or a test. Counting is wait-free; reading
//! takes a [`snapshot`](EngineStats::snapshot) that renders itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented phases of an optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Procedure 2 / baseline search probes (sizing + evaluation).
    Search,
    /// Transistor sizing passes (budgeted or TILOS-style greedy).
    Sizing,
    /// Monte-Carlo yield trials.
    MonteCarlo,
    /// Benchmark-suite circuit runs.
    Suite,
}

const PHASES: [(Phase, &str); 4] = [
    (Phase::Search, "search"),
    (Phase::Sizing, "sizing"),
    (Phase::MonteCarlo, "monte-carlo"),
    (Phase::Suite, "suite"),
];

fn phase_index(phase: Phase) -> usize {
    PHASES
        .iter()
        .position(|&(p, _)| p == phase)
        .expect("phase is listed")
}

/// Atomic counters describing everything the engine did.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Full-circuit evaluations (each one sizes and times the netlist).
    pub circuit_evals: AtomicU64,
    /// Static timing passes (critical-path recomputations).
    pub sta_calls: AtomicU64,
    /// Evaluation-cache hits.
    pub cache_hits: AtomicU64,
    /// Evaluation-cache misses.
    pub cache_misses: AtomicU64,
    /// Incremental-STA commits (batched delay edits applied to a
    /// persistent analysis instead of a full pass).
    pub incremental_commits: AtomicU64,
    /// Total gate recomputations across all incremental commits — the
    /// dirty-cone work; divide by `incremental_commits` for the average
    /// cone size.
    pub incremental_gates: AtomicU64,
    /// Incremental commits that fell back to a dense full pass because
    /// the dirty set grew past the fallback fraction.
    pub sta_fallbacks: AtomicU64,
    /// Run-control trips: a soft deadline expired or a cancellation
    /// request (e.g. SIGINT) was observed at an iteration boundary.
    pub deadline_trips: AtomicU64,
    /// Injected faults that were caught and neutralized (non-zero only
    /// under the `faults` feature in fault-injection tests).
    pub faults_injected: AtomicU64,
    /// Checkpoint snapshots written to disk.
    pub checkpoints_written: AtomicU64,
    /// Worker panics contained by the pool and surfaced as typed errors
    /// instead of aborting the run.
    pub panics_recovered: AtomicU64,
    /// Durable-store writes that reached disk (framed, fsynced,
    /// atomically renamed).
    pub store_writes: AtomicU64,
    /// Transient I/O failures absorbed by the store's bounded
    /// retry-with-backoff before a write ultimately succeeded or failed.
    pub store_retries: AtomicU64,
    /// Corrupt or truncated state files moved into quarantine by the
    /// startup recovery audit.
    pub store_quarantined: AtomicU64,
    /// Whole seconds spent in degraded (read-only) mode because durable
    /// writes were failing persistently.
    pub store_degraded_seconds: AtomicU64,
    /// Jittered exponential-backoff sleeps taken before re-dispatching a
    /// shard after a transient failure (`coord.retry.backoff`).
    pub retry_backoffs: AtomicU64,
    /// Per-worker circuit-breaker transitions into the open state
    /// (`coord.breaker.open`).
    pub breaker_opens: AtomicU64,
    /// Hedged shard dispatches fired against a second worker because the
    /// primary straggled past the hedge delay (`coord.hedge.fired`).
    pub hedges_fired: AtomicU64,
    /// Hedge races whose losing side completed after the shard was
    /// already done — discarded duplicates (`coord.hedge.wasted`).
    pub hedges_wasted: AtomicU64,
    phase_nanos: [AtomicU64; 4],
}

impl EngineStats {
    /// A fresh, zeroed counter bundle.
    pub fn new() -> Self {
        EngineStats::default()
    }

    /// Counts one full-circuit evaluation.
    pub fn count_eval(&self) {
        self.circuit_evals.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` static-timing passes.
    pub fn count_sta(&self, n: u64) {
        self.sta_calls.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one cache hit.
    pub fn count_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one cache miss.
    pub fn count_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one incremental-STA commit that touched `gates` gates.
    pub fn count_incremental(&self, gates: u64) {
        self.incremental_commits.fetch_add(1, Ordering::Relaxed);
        self.incremental_gates.fetch_add(gates, Ordering::Relaxed);
    }

    /// Counts one incremental commit that fell back to a dense pass.
    pub fn count_fallback(&self) {
        self.sta_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one run-control trip (deadline expiry or cancellation).
    pub fn count_deadline_trip(&self) {
        self.deadline_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one injected fault that was caught and neutralized.
    pub fn count_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one checkpoint snapshot written to disk.
    pub fn count_checkpoint(&self) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one worker panic contained and surfaced as a typed error.
    pub fn count_panic_recovered(&self) {
        self.panics_recovered.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one completed durable-store write that needed `retries`
    /// transient-failure retries before it landed.
    pub fn count_store_write(&self, retries: u64) {
        self.store_writes.fetch_add(1, Ordering::Relaxed);
        self.store_retries.fetch_add(retries, Ordering::Relaxed);
    }

    /// Counts `n` state files quarantined by a recovery audit.
    pub fn count_store_quarantined(&self, n: u64) {
        self.store_quarantined.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `secs` whole seconds of degraded-mode operation.
    pub fn add_store_degraded_seconds(&self, secs: u64) {
        self.store_degraded_seconds
            .fetch_add(secs, Ordering::Relaxed);
    }

    /// Counts one jittered backoff sleep before a shard re-dispatch.
    pub fn count_retry_backoff(&self) {
        self.retry_backoffs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one circuit-breaker transition into the open state.
    pub fn count_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one hedged dispatch fired against a second worker.
    pub fn count_hedge_fired(&self) {
        self.hedges_fired.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one hedge race lost — a duplicate completion discarded.
    pub fn count_hedge_wasted(&self) {
        self.hedges_wasted.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs `f`, attributing its wall time to `phase`.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.phase_nanos[phase_index(phase)].fetch_add(nanos, Ordering::Relaxed);
        out
    }

    /// Adds externally measured wall time to a phase.
    pub fn add_phase_nanos(&self, phase: Phase, nanos: u64) {
        self.phase_nanos[phase_index(phase)].fetch_add(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            circuit_evals: self.circuit_evals.load(Ordering::Relaxed),
            sta_calls: self.sta_calls.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            incremental_commits: self.incremental_commits.load(Ordering::Relaxed),
            incremental_gates: self.incremental_gates.load(Ordering::Relaxed),
            sta_fallbacks: self.sta_fallbacks.load(Ordering::Relaxed),
            deadline_trips: self.deadline_trips.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            panics_recovered: self.panics_recovered.load(Ordering::Relaxed),
            store_writes: self.store_writes.load(Ordering::Relaxed),
            store_retries: self.store_retries.load(Ordering::Relaxed),
            store_quarantined: self.store_quarantined.load(Ordering::Relaxed),
            store_degraded_seconds: self.store_degraded_seconds.load(Ordering::Relaxed),
            retry_backoffs: self.retry_backoffs.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            hedges_fired: self.hedges_fired.load(Ordering::Relaxed),
            hedges_wasted: self.hedges_wasted.load(Ordering::Relaxed),
            phase_nanos: [
                self.phase_nanos[0].load(Ordering::Relaxed),
                self.phase_nanos[1].load(Ordering::Relaxed),
                self.phase_nanos[2].load(Ordering::Relaxed),
                self.phase_nanos[3].load(Ordering::Relaxed),
            ],
        }
    }
}

/// A plain-data copy of [`EngineStats`] counters at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Full-circuit evaluations.
    pub circuit_evals: u64,
    /// Static timing passes.
    pub sta_calls: u64,
    /// Evaluation-cache hits.
    pub cache_hits: u64,
    /// Evaluation-cache misses.
    pub cache_misses: u64,
    /// Incremental-STA commits.
    pub incremental_commits: u64,
    /// Total gate recomputations across all incremental commits.
    pub incremental_gates: u64,
    /// Incremental commits that fell back to a dense full pass.
    pub sta_fallbacks: u64,
    /// Run-control trips (deadline expiry or cancellation) observed.
    pub deadline_trips: u64,
    /// Injected faults caught and neutralized.
    pub faults_injected: u64,
    /// Checkpoint snapshots written to disk.
    pub checkpoints_written: u64,
    /// Worker panics contained and surfaced as typed errors.
    pub panics_recovered: u64,
    /// Durable-store writes that reached disk.
    pub store_writes: u64,
    /// Transient I/O failures absorbed by the store's bounded retry.
    pub store_retries: u64,
    /// Corrupt state files quarantined by recovery audits.
    pub store_quarantined: u64,
    /// Whole seconds spent in degraded (read-only) mode.
    pub store_degraded_seconds: u64,
    /// Jittered backoff sleeps before shard re-dispatches.
    pub retry_backoffs: u64,
    /// Circuit-breaker transitions into the open state.
    pub breaker_opens: u64,
    /// Hedged dispatches fired against a second worker.
    pub hedges_fired: u64,
    /// Hedge races lost — duplicate completions discarded.
    pub hedges_wasted: u64,
    /// Wall time per phase, in the order of `Phase`'s variants.
    pub phase_nanos: [u64; 4],
}

impl StatsSnapshot {
    /// Accumulates `other` into `self`, counter by counter — how a
    /// service aggregates per-job engine telemetry (each job runs on its
    /// own [`EngineStats`]) into one fleet-wide snapshot.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.circuit_evals += other.circuit_evals;
        self.sta_calls += other.sta_calls;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.incremental_commits += other.incremental_commits;
        self.incremental_gates += other.incremental_gates;
        self.sta_fallbacks += other.sta_fallbacks;
        self.deadline_trips += other.deadline_trips;
        self.faults_injected += other.faults_injected;
        self.checkpoints_written += other.checkpoints_written;
        self.panics_recovered += other.panics_recovered;
        self.store_writes += other.store_writes;
        self.store_retries += other.store_retries;
        self.store_quarantined += other.store_quarantined;
        self.store_degraded_seconds += other.store_degraded_seconds;
        self.retry_backoffs += other.retry_backoffs;
        self.breaker_opens += other.breaker_opens;
        self.hedges_fired += other.hedges_fired;
        self.hedges_wasted += other.hedges_wasted;
        for (mine, theirs) in self.phase_nanos.iter_mut().zip(other.phase_nanos) {
            *mine += theirs;
        }
    }

    /// Cache hit rate in `[0, 1]`, or 0 when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Wall time attributed to `phase`, in seconds.
    pub fn phase_seconds(&self, phase: Phase) -> f64 {
        self.phase_nanos[phase_index(phase)] as f64 * 1e-9
    }

    /// Mean dirty-cone size per incremental commit, or 0 with no commits.
    pub fn gates_per_commit(&self) -> f64 {
        if self.incremental_commits == 0 {
            0.0
        } else {
            self.incremental_gates as f64 / self.incremental_commits as f64
        }
    }

    /// Fraction of incremental commits that fell back to a dense pass, in
    /// `[0, 1]`, or 0 with no commits.
    pub fn fallback_rate(&self) -> f64 {
        if self.incremental_commits == 0 {
            0.0
        } else {
            self.sta_fallbacks as f64 / self.incremental_commits as f64
        }
    }

    /// Multi-line human-readable report for CLI / experiments output.
    pub fn render(&self) -> String {
        let mut out = String::from("engine stats\n");
        out.push_str(&format!(
            "  circuit evaluations : {}\n  STA passes          : {}\n",
            self.circuit_evals, self.sta_calls
        ));
        out.push_str(&format!(
            "  cache               : {} hits / {} misses ({:.1}% hit rate)\n",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate()
        ));
        if self.incremental_commits > 0 {
            out.push_str(&format!(
                "  incremental STA     : {} commits, {:.1} gates/commit, {} fallbacks ({:.1}% fallback rate)\n",
                self.incremental_commits,
                self.gates_per_commit(),
                self.sta_fallbacks,
                100.0 * self.fallback_rate()
            ));
        }
        if self.deadline_trips
            + self.faults_injected
            + self.checkpoints_written
            + self.panics_recovered
            > 0
        {
            out.push_str(&format!(
                "  run control         : {} deadline/cancel trips, {} faults caught, {} checkpoints written, {} panics recovered\n",
                self.deadline_trips,
                self.faults_injected,
                self.checkpoints_written,
                self.panics_recovered
            ));
        }
        if self.store_writes
            + self.store_retries
            + self.store_quarantined
            + self.store_degraded_seconds
            > 0
        {
            out.push_str(&format!(
                "  durable store       : {} writes, {} retries, {} quarantined, {} s degraded\n",
                self.store_writes,
                self.store_retries,
                self.store_quarantined,
                self.store_degraded_seconds
            ));
        }
        if self.retry_backoffs + self.breaker_opens + self.hedges_fired + self.hedges_wasted > 0 {
            out.push_str(&format!(
                "  rpc resilience      : {} backoffs, {} breaker opens, {} hedges fired, {} hedges wasted\n",
                self.retry_backoffs,
                self.breaker_opens,
                self.hedges_fired,
                self.hedges_wasted
            ));
        }
        for (phase, name) in PHASES {
            let secs = self.phase_seconds(phase);
            if secs > 0.0 {
                out.push_str(&format!("  {name:<20}: {secs:.3} s\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = EngineStats::new();
        for _ in 0..5 {
            stats.count_eval();
        }
        stats.count_sta(12);
        stats.count_hit();
        stats.count_hit();
        stats.count_miss();
        let snap = stats.snapshot();
        assert_eq!(snap.circuit_evals, 5);
        assert_eq!(snap.sta_calls, 12);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
        assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn timing_is_attributed_to_the_right_phase() {
        let stats = EngineStats::new();
        let v = stats.time(Phase::MonteCarlo, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            17
        });
        assert_eq!(v, 17);
        let snap = stats.snapshot();
        assert!(snap.phase_seconds(Phase::MonteCarlo) >= 0.004);
        assert_eq!(snap.phase_seconds(Phase::Search), 0.0);
    }

    #[test]
    fn concurrent_counting_loses_nothing() {
        let stats = EngineStats::new();
        crate::pool::par_map_indices(8, 10_000, |_| stats.count_eval());
        assert_eq!(stats.snapshot().circuit_evals, 10_000);
    }

    #[test]
    fn render_mentions_key_figures() {
        let stats = EngineStats::new();
        stats.count_eval();
        stats.count_hit();
        stats.count_miss();
        let text = stats.snapshot().render();
        assert!(text.contains("circuit evaluations : 1"));
        assert!(text.contains("50.0% hit rate"));
    }

    #[test]
    fn resilience_counters_render_only_when_used() {
        let stats = EngineStats::new();
        assert!(!stats.snapshot().render().contains("run control"));
        stats.count_deadline_trip();
        stats.count_fault_injected();
        stats.count_fault_injected();
        stats.count_checkpoint();
        stats.count_panic_recovered();
        let snap = stats.snapshot();
        assert_eq!(snap.deadline_trips, 1);
        assert_eq!(snap.faults_injected, 2);
        assert_eq!(snap.checkpoints_written, 1);
        assert_eq!(snap.panics_recovered, 1);
        let text = snap.render();
        assert!(
            text.contains(
                "run control         : 1 deadline/cancel trips, 2 faults caught, \
                 1 checkpoints written, 1 panics recovered"
            ),
            "{text}"
        );
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = EngineStats::new();
        a.count_eval();
        a.count_hit();
        a.count_incremental(4);
        a.add_phase_nanos(Phase::Search, 100);
        let b = EngineStats::new();
        b.count_eval();
        b.count_miss();
        b.count_fallback();
        b.count_deadline_trip();
        b.add_phase_nanos(Phase::Search, 50);
        b.add_phase_nanos(Phase::Suite, 7);
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.circuit_evals, 2);
        assert_eq!((total.cache_hits, total.cache_misses), (1, 1));
        assert_eq!(total.incremental_commits, 1);
        assert_eq!(total.incremental_gates, 4);
        assert_eq!(total.sta_fallbacks, 1);
        assert_eq!(total.deadline_trips, 1);
        assert_eq!(total.phase_nanos[phase_index(Phase::Search)], 150);
        assert_eq!(total.phase_nanos[phase_index(Phase::Suite)], 7);
    }

    #[test]
    fn zero_lookup_hit_rate_is_zero() {
        assert_eq!(StatsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn store_counters_count_merge_and_render() {
        let a = EngineStats::new();
        assert!(!a.snapshot().render().contains("durable store"));
        a.count_store_write(0);
        a.count_store_write(3);
        a.count_store_quarantined(2);
        a.add_store_degraded_seconds(7);
        let b = EngineStats::new();
        b.count_store_write(1);
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.store_writes, 3);
        assert_eq!(total.store_retries, 4);
        assert_eq!(total.store_quarantined, 2);
        assert_eq!(total.store_degraded_seconds, 7);
        let text = total.render();
        assert!(
            text.contains("durable store       : 3 writes, 4 retries, 2 quarantined, 7 s degraded"),
            "{text}"
        );
    }

    #[test]
    fn rpc_counters_count_merge_and_render() {
        let a = EngineStats::new();
        assert!(!a.snapshot().render().contains("rpc resilience"));
        a.count_retry_backoff();
        a.count_retry_backoff();
        a.count_breaker_open();
        a.count_hedge_fired();
        let b = EngineStats::new();
        b.count_hedge_fired();
        b.count_hedge_wasted();
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.retry_backoffs, 2);
        assert_eq!(total.breaker_opens, 1);
        assert_eq!(total.hedges_fired, 2);
        assert_eq!(total.hedges_wasted, 1);
        let text = total.render();
        assert!(
            text.contains(
                "rpc resilience      : 2 backoffs, 1 breaker opens, 2 hedges fired, 1 hedges wasted"
            ),
            "{text}"
        );
    }

    #[test]
    fn incremental_counters_render_only_when_used() {
        let stats = EngineStats::new();
        assert!(!stats.snapshot().render().contains("incremental STA"));
        stats.count_incremental(7);
        stats.count_incremental(3);
        stats.count_fallback();
        let snap = stats.snapshot();
        assert_eq!(snap.incremental_commits, 2);
        assert_eq!(snap.incremental_gates, 10);
        assert_eq!(snap.sta_fallbacks, 1);
        assert!((snap.gates_per_commit() - 5.0).abs() < 1e-12);
        assert!((snap.fallback_rate() - 0.5).abs() < 1e-12);
        let text = snap.render();
        assert!(text.contains("incremental STA     : 2 commits, 5.0 gates/commit, 1 fallbacks"));
        assert!(text.contains("50.0% fallback rate"));
    }
}
