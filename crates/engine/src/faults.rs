//! Deterministic fault injection (failpoints-style), behind the `faults`
//! feature.
//!
//! Robustness claims — "a worker panic is recovered", "a NaN model output
//! never becomes the returned optimum", "a clock jump past the deadline
//! degrades to best-so-far" — are untestable without a way to *cause*
//! those faults on demand. This module is the single switchboard: code
//! under test arms a named **site** with a `Trigger`, and production
//! code queries the site at the matching point. With the feature disabled
//! (the default) every query compiles to a constant `false` and the
//! library carries no registry, no locking, and no behavioral difference.
//!
//! Sites are plain strings agreed between the arm point and the fire
//! point; the ones built into the workspace are:
//!
//! | site                | effect at the fire point                     |
//! |---------------------|----------------------------------------------|
//! | `pool.worker.panic` | the worker closure panics before running     |
//! | `probe.nan`         | a sizing probe reports NaN energy            |
//! | `runctl.clock_jump` | a deadline check behaves as if time jumped   |
//! | `service.conn.drop` | an HTTP connection dies before the response  |
//! | `io.write.torn`     | a durable write persists only a prefix of the
//!                         record and still reports success (torn write
//!                         caught by the CRC frame on the next read)     |
//! | `io.write.short`    | a durable write fails with a short-write error
//!                         (transient; absorbed by the bounded retry)    |
//! | `io.fsync.fail`     | an fsync fails (transient; retried)          |
//! | `io.disk.full`      | a durable write fails as if the disk is full |
//! | `checkpoint.corrupt`| a bit flips inside the persisted payload
//!                         (silent corruption for the recovery audit)    |
//! | `coord.worker.lost` | a coordinator→worker shard dispatch connects
//!                         and then drops before sending (network-drop
//!                         worker loss; indexed by the per-endpoint
//!                         dispatch sequence number)                     |
//! | `net.connect.refused`| a dispatch's TCP connect fails immediately,
//!                         as if no worker listens on the endpoint
//!                         (indexed by the coordinator-wide network
//!                         sequence number, as are all `net.*` sites)    |
//! | `net.partition`     | a dispatch's TCP connect black-holes: it
//!                         blocks for the (bounded) connect timeout and
//!                         then fails — a network partition between the
//!                         coordinator and the worker                    |
//! | `net.read.stall`    | the request is sent but the response read
//!                         stalls until the (bounded) read timeout — a
//!                         straggling worker, the hedge-dispatch trigger |
//! | `net.response.truncated` | the response arrives cut off mid-stream,
//!                         so HTTP/JSON parsing fails and the dispatch
//!                         is classified transient                       |
//! | `session.oplog.torn`| a session op-log append persists only the
//!                         record header and half the payload while
//!                         reporting success — a torn tail the replay
//!                         path truncates at the last intact record
//!                         (indexed by the process-wide append sequence) |
//! | `session.compact.crash` | a session compaction crashes after the
//!                         folded snapshot is durable but before the op
//!                         log is truncated — the window recovery must
//!                         normalize without double-applying ops
//!                         (indexed by the process-wide compaction
//!                         sequence)                                    |
//! | `govern.clock_skew` | a token-bucket refill observes a wildly
//!                         skewed monotonic reading (hours forward on
//!                         even indices, to zero on odd ones); the
//!                         limiter must clamp instead of banking
//!                         unbounded tokens or locking clients out
//!                         (indexed by the process-wide acquire
//!                         sequence)                                    |
//!
//! Triggers are deterministic: an explicit index set, every-nth, or a
//! seeded pseudo-random subset — never wall clock — so failing runs
//! replay exactly.

#[cfg(feature = "faults")]
mod imp {
    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::sync::OnceLock;

    use crate::rng::SplitMix64;

    /// When an armed site fires, as a function of the site's call index.
    #[derive(Debug, Clone)]
    pub enum Trigger {
        /// Fire on exactly these call indices.
        OnIndices(Vec<u64>),
        /// Fire on every `n`-th call (indices `n-1, 2n-1, ...`).
        EveryNth(u64),
        /// Fire on a seeded pseudo-random subset: call index `i` fires
        /// when `SplitMix64::stream(seed, i)` draws below `probability`.
        /// Deterministic per `(seed, i)` — independent of thread timing.
        Seeded {
            /// Stream seed.
            seed: u64,
            /// Per-call fire probability in `[0, 1]`.
            probability: f64,
        },
    }

    struct Armed {
        trigger: Trigger,
        calls: u64,
        fired: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arms `site` with `trigger`, replacing any previous arming.
    pub fn arm(site: &str, trigger: Trigger) {
        registry().lock().expect("fault registry").insert(
            site.to_string(),
            Armed {
                trigger,
                calls: 0,
                fired: 0,
            },
        );
    }

    /// Disarms one site.
    pub fn disarm(site: &str) {
        registry().lock().expect("fault registry").remove(site);
    }

    /// Disarms every site (test teardown).
    pub fn disarm_all() {
        registry().lock().expect("fault registry").clear();
    }

    /// Number of times `site` actually fired since it was armed.
    pub fn fired_count(site: &str) -> u64 {
        registry()
            .lock()
            .expect("fault registry")
            .get(site)
            .map_or(0, |a| a.fired)
    }

    /// Queries `site` at its next call index, returning whether the fault
    /// fires. Unarmed sites never fire. `index` is the *caller's* notion
    /// of position (work-item index, probe count); [`Trigger::OnIndices`]
    /// matches against it so injection is independent of call ordering
    /// across threads, while `EveryNth`/`Seeded` use it likewise.
    pub fn should_fire(site: &str, index: u64) -> bool {
        let mut reg = registry().lock().expect("fault registry");
        let Some(armed) = reg.get_mut(site) else {
            return false;
        };
        armed.calls += 1;
        let fire = match &armed.trigger {
            Trigger::OnIndices(set) => set.contains(&index),
            Trigger::EveryNth(n) => *n > 0 && (index + 1).is_multiple_of(*n),
            Trigger::Seeded { seed, probability } => {
                SplitMix64::stream(*seed, index).next_f64() < *probability
            }
        };
        if fire {
            armed.fired += 1;
        }
        fire
    }
}

#[cfg(feature = "faults")]
pub use imp::{arm, disarm, disarm_all, fired_count, should_fire, Trigger};

/// No-op stand-in when the `faults` feature is off: sites never fire and
/// the query inlines to `false`.
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub fn should_fire(_site: &str, _index: u64) -> bool {
    false
}

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;

    // The registry is process-global, so tests share it; each test uses
    // its own site names to stay independent.

    #[test]
    fn unarmed_sites_never_fire() {
        assert!(!should_fire("t.unarmed", 0));
        assert!(!should_fire("t.unarmed", 99));
    }

    #[test]
    fn on_indices_fires_exactly_there() {
        arm("t.idx", Trigger::OnIndices(vec![2, 5]));
        let fired: Vec<u64> = (0..8).filter(|&i| should_fire("t.idx", i)).collect();
        assert_eq!(fired, vec![2, 5]);
        assert_eq!(fired_count("t.idx"), 2);
        disarm("t.idx");
        assert!(!should_fire("t.idx", 2));
    }

    #[test]
    fn every_nth_fires_periodically() {
        arm("t.nth", Trigger::EveryNth(3));
        let fired: Vec<u64> = (0..9).filter(|&i| should_fire("t.nth", i)).collect();
        assert_eq!(fired, vec![2, 5, 8]);
        disarm("t.nth");
    }

    #[test]
    fn seeded_trigger_is_deterministic_per_index() {
        arm(
            "t.seeded",
            Trigger::Seeded {
                seed: 7,
                probability: 0.5,
            },
        );
        let a: Vec<bool> = (0..64).map(|i| should_fire("t.seeded", i)).collect();
        let b: Vec<bool> = (0..64).map(|i| should_fire("t.seeded", i)).collect();
        assert_eq!(a, b, "same (seed, index) must fire identically");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
        disarm("t.seeded");
    }
}
