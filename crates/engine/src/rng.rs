//! Seedable SplitMix64 PRNG with xorshift output mixing.
//!
//! The workspace must build offline, so the `rand` crate is out; this is
//! the standard 64-bit SplitMix64 generator (Steele, Lea & Flood;
//! Vigna's `splitmix64.c`), which passes BigCrush, seeds in one word, and
//! splits cheaply into independent per-trial streams — exactly what the
//! annealer, the synthetic-circuit generator, and the parallel
//! Monte-Carlo yield analysis need for thread-count-independent
//! reproducibility.

/// A seedable 64-bit PRNG (SplitMix64 state walk + xorshift finalizer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives the generator for an indexed sub-stream (e.g. one
    /// Monte-Carlo trial), decorrelated from the parent and from every
    /// other index.
    pub fn stream(seed: u64, index: u64) -> Self {
        // Run the parent one finalization deep so `seed` and
        // `seed ^ index` collisions across calls don't line up streams.
        let mut parent = SplitMix64::new(seed);
        let base = parent.next_u64();
        SplitMix64::new(base ^ index.wrapping_mul(GOLDEN_GAMMA))
    }

    /// The raw generator state, for checkpointing. Restoring via
    /// [`SplitMix64::from_state`] continues the stream exactly where this
    /// generator left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a state captured with
    /// [`SplitMix64::state`]. Note this is *not* the same as `new(seed)`:
    /// `state` is the walked internal counter, not the original seed.
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range [0, 0)");
        // Multiply-shift (Lemire) without the rejection step: the bias is
        // at most n / 2^64, far below anything these simulations resolve.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A standard-normal sample (Box–Muller from two uniforms).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut s0 = SplitMix64::stream(7, 0);
        let mut s1 = SplitMix64::stream(7, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        // And stable: re-deriving yields the same stream.
        let mut again = SplitMix64::stream(7, 1);
        let mut s1b = SplitMix64::stream(7, 1);
        assert_eq!(again.next_u64(), s1b.next_u64());
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = SplitMix64::new(123);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_ranges_hold() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.range_f64(-2.5, 1.5);
            assert!((-2.5..1.5).contains(&y));
            let k = r.range_usize(7);
            assert!(k < 7);
        }
    }

    #[test]
    fn range_usize_covers_all_values() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.range_usize(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SplitMix64::new(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SplitMix64::new(0);
        let _ = r.range_usize(0);
    }
}
