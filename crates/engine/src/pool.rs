//! Scoped worker pool: `par_map` / `par_chunks` over borrowed data.
//!
//! Built on `std::thread::scope` and `mpsc` channels only — the build
//! environment is offline, so no rayon. Work is distributed by an atomic
//! index counter (work stealing at item granularity), results are
//! reassembled in submission order, and `threads = 1` short-circuits to a
//! plain in-order loop on the calling thread so serial runs are
//! bit-identical to a hand-written `for` loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `0..n`, returning results in index order.
///
/// With `threads <= 1` (or fewer than two items) this is exactly
/// `(0..n).map(f).collect()` on the calling thread. Otherwise
/// `min(threads, n)` scoped workers pull indices from a shared atomic
/// counter; the closure must therefore be safe to call concurrently, and
/// any mutable state belongs in its return value.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated by the scope).
pub fn par_map_indices<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A send only fails if the receiver is gone, which means
                // the main thread is already unwinding — stop quietly.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index was dispatched exactly once"))
            .collect()
    })
}

/// Maps `f` over a slice, returning results in item order.
///
/// See [`par_map_indices`] for the execution model.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indices(threads, items.len(), |i| f(&items[i]))
}

/// Splits `0..n` into contiguous chunks of at most `chunk` items and maps
/// `f` over the chunk ranges, returning results in range order.
///
/// The chunk boundaries depend only on `n` and `chunk` — never on
/// `threads` — so a reduction over the returned partials is identical for
/// every thread count.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn par_chunks<R, F>(threads: usize, n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be at least 1");
    let ranges: Vec<std::ops::Range<usize>> = (0..n.div_ceil(chunk))
        .map(|c| c * chunk..((c + 1) * chunk).min(n))
        .collect();
    par_map(threads, &ranges, |r| f(r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = par_map_indices(1, 100, |i| i * i);
        for threads in [2, 4, 7] {
            assert_eq!(par_map_indices(threads, 100, |i| i * i), serial);
        }
    }

    #[test]
    fn results_keep_item_order() {
        let items: Vec<usize> = (0..57).rev().collect();
        let out = par_map(4, &items, |&x| x + 1);
        assert_eq!(out, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map_indices(16, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(par_map_indices(16, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map_indices(8, 1000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_boundaries_do_not_depend_on_threads() {
        let a = par_chunks(1, 103, 10, |r| (r.start, r.end));
        let b = par_chunks(8, 103, 10, |r| (r.start, r.end));
        assert_eq!(a, b);
        assert_eq!(a.len(), 11);
        assert_eq!(a[10], (100, 103));
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        let _ = par_chunks(2, 10, 0, |r| r.len());
    }
}
