//! Scoped worker pool: `par_map` / `par_chunks` over borrowed data.
//!
//! Built on `std::thread::scope` and `mpsc` channels only — the build
//! environment is offline, so no rayon. Work is distributed by an atomic
//! index counter (work stealing at item granularity), results are
//! reassembled in submission order, and `threads = 1` short-circuits to a
//! plain in-order loop on the calling thread so serial runs are
//! bit-identical to a hand-written `for` loop.
//!
//! Worker panics are **contained**: [`try_par_map_indices`] catches a
//! panicking closure with `catch_unwind`, keeps draining the remaining
//! work items, and returns a typed [`WorkerPanicked`] error carrying the
//! panicking index, the panic payload message, and every sibling result
//! that completed — nothing computed is thrown away. The unchecked
//! [`par_map_indices`] preserves the historical propagate-the-panic
//! behavior on top of it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A worker closure panicked during a parallel map.
///
/// Carries everything the caller needs to degrade gracefully: which work
/// item blew up, the panic payload rendered as text, and the results of
/// every sibling item that completed (`partial[i]` is `Some` unless item
/// `i` itself panicked). When several items panic in one map, `index` and
/// `message` report the smallest panicking index — deterministic
/// regardless of thread scheduling.
pub struct WorkerPanicked<R> {
    /// The smallest work-item index whose closure panicked.
    pub index: usize,
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case); `"<non-string panic payload>"` otherwise.
    pub message: String,
    /// Per-item results: `Some` for every item that completed, `None` for
    /// the panicked one(s).
    pub partial: Vec<Option<R>>,
}

impl<R> std::fmt::Debug for WorkerPanicked<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPanicked")
            .field("index", &self.index)
            .field("message", &self.message)
            .field(
                "completed",
                &self.partial.iter().filter(|r| r.is_some()).count(),
            )
            .finish()
    }
}

impl<R> std::fmt::Display for WorkerPanicked<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked at index {}: {} ({} of {} sibling results retained)",
            self.index,
            self.message,
            self.partial.iter().filter(|r| r.is_some()).count(),
            self.partial.len().saturating_sub(1),
        )
    }
}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

enum Outcome<R> {
    Done(R),
    Panicked(String),
}

fn run_item<R, F>(f: &F, i: usize) -> Outcome<R>
where
    F: Fn(usize) -> R + Sync,
{
    // The fault-injection site for worker panics: armed tests make the
    // item itself panic, exercising the same containment path a bug in
    // the closure would.
    match catch_unwind(AssertUnwindSafe(|| {
        if crate::faults::should_fire("pool.worker.panic", i as u64) {
            panic!("injected fault: worker panic at index {i}");
        }
        f(i)
    })) {
        Ok(r) => Outcome::Done(r),
        Err(payload) => Outcome::Panicked(payload_message(payload)),
    }
}

/// Maps `f` over `0..n`, returning results in index order, containing
/// worker panics.
///
/// With `threads <= 1` (or fewer than two items) items run in order on
/// the calling thread. Otherwise `min(threads, n)` scoped workers pull
/// indices from a shared atomic counter; the closure must therefore be
/// safe to call concurrently, and any mutable state belongs in its return
/// value.
///
/// If an item's closure panics, the panic is caught, the **remaining work
/// is still drained** (siblings complete), and the map returns
/// [`WorkerPanicked`] with the smallest panicking index, the payload
/// message, and all completed sibling results.
///
/// # Errors
///
/// [`WorkerPanicked`] if any item's closure panicked.
pub fn try_par_map_indices<R, F>(
    threads: usize,
    n: usize,
    f: F,
) -> Result<Vec<R>, WorkerPanicked<R>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut first_panic: Option<(usize, String)> = None;
    if threads <= 1 || n <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            match run_item(&f, i) {
                Outcome::Done(r) => *slot = Some(r),
                Outcome::Panicked(msg) => {
                    if first_panic.as_ref().is_none_or(|&(j, _)| i < j) {
                        first_panic = Some((i, msg));
                    }
                }
            }
        }
    } else {
        let workers = threads.min(n);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Outcome<R>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A send only fails if the receiver is gone, which
                    // means the main thread is already unwinding — stop
                    // quietly.
                    if tx.send((i, run_item(f, i))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, outcome) in rx {
                match outcome {
                    Outcome::Done(r) => slots[i] = Some(r),
                    Outcome::Panicked(msg) => {
                        if first_panic.as_ref().is_none_or(|&(j, _)| i < j) {
                            first_panic = Some((i, msg));
                        }
                    }
                }
            }
        });
    }
    match first_panic {
        None => Ok(slots
            .into_iter()
            .map(|s| s.expect("every index was dispatched exactly once"))
            .collect()),
        Some((index, message)) => Err(WorkerPanicked {
            index,
            message,
            partial: slots,
        }),
    }
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// See [`try_par_map_indices`] for the execution model; this wrapper
/// preserves the historical contract of re-raising a worker panic.
///
/// # Panics
///
/// Panics if a worker panics (with the original payload message).
pub fn par_map_indices<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match try_par_map_indices(threads, n, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Maps `f` over a slice, returning results in item order.
///
/// See [`par_map_indices`] for the execution model.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indices(threads, items.len(), |i| f(&items[i]))
}

/// Splits `0..n` into contiguous chunks of at most `chunk` items and maps
/// `f` over the chunk ranges, returning results in range order.
///
/// The chunk boundaries depend only on `n` and `chunk` — never on
/// `threads` — so a reduction over the returned partials is identical for
/// every thread count.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn par_chunks<R, F>(threads: usize, n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be at least 1");
    let ranges: Vec<std::ops::Range<usize>> = (0..n.div_ceil(chunk))
        .map(|c| c * chunk..((c + 1) * chunk).min(n))
        .collect();
    par_map(threads, &ranges, |r| f(r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = par_map_indices(1, 100, |i| i * i);
        for threads in [2, 4, 7] {
            assert_eq!(par_map_indices(threads, 100, |i| i * i), serial);
        }
    }

    #[test]
    fn results_keep_item_order() {
        let items: Vec<usize> = (0..57).rev().collect();
        let out = par_map(4, &items, |&x| x + 1);
        assert_eq!(out, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map_indices(16, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(par_map_indices(16, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map_indices(8, 1000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_boundaries_do_not_depend_on_threads() {
        let a = par_chunks(1, 103, 10, |r| (r.start, r.end));
        let b = par_chunks(8, 103, 10, |r| (r.start, r.end));
        assert_eq!(a, b);
        assert_eq!(a.len(), 11);
        assert_eq!(a[10], (100, 103));
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        let _ = par_chunks(2, 10, 0, |r| r.len());
    }

    #[test]
    fn panicking_item_is_contained_and_siblings_survive() {
        for threads in [1, 4] {
            let err = try_par_map_indices(threads, 20, |i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
                i * 2
            })
            .unwrap_err();
            assert_eq!(err.index, 7, "threads = {threads}");
            assert!(err.message.contains("boom at 7"), "{}", err.message);
            // Every sibling result was drained, none lost.
            for i in 0..20 {
                if i == 7 {
                    assert!(err.partial[i].is_none());
                } else {
                    assert_eq!(err.partial[i], Some(i * 2), "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn multiple_panics_report_smallest_index() {
        let err = try_par_map_indices(4, 32, |i| {
            if i % 10 == 3 {
                panic!("bad {i}");
            }
            i
        })
        .unwrap_err();
        assert_eq!(err.index, 3);
        assert!(err.message.contains("bad 3"));
        assert_eq!(err.partial.iter().filter(|r| r.is_none()).count(), 3);
    }

    #[test]
    #[should_panic(expected = "worker panicked at index 2")]
    fn unchecked_wrapper_reraises() {
        let _ = par_map_indices(2, 5, |i| {
            if i == 2 {
                panic!("kapow");
            }
            i
        });
    }

    #[test]
    fn try_succeeds_when_nothing_panics() {
        let out = try_par_map_indices(4, 50, |i| i + 1).unwrap();
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
    }
}
