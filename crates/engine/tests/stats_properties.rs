//! Property-based algebra of [`StatsSnapshot::merge`]: the coordinator
//! merges per-shard snapshots in shard-index order, a restarted
//! coordinator merges recovered snapshots in whatever order recovery
//! finds them, and `/metrics` folds per-job snapshots incrementally —
//! all three agree only if merge is a commutative monoid (associative,
//! commutative, with the default snapshot as identity).
//!
//! Run with `cargo test -p minpower-engine --features proptest`.
#![cfg(feature = "proptest")]

use minpower_engine::StatsSnapshot;

/// SplitMix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A counter value: usually moderate, sometimes zero, sometimes huge
    /// (but bounded so summing hundreds of them cannot overflow u64).
    fn counter(&mut self) -> u64 {
        match self.next_u64() % 8 {
            0 => 0,
            1 => self.next_u64() % (1 << 50),
            _ => self.next_u64() % 10_000,
        }
    }
}

fn random_snapshot(rng: &mut Rng) -> StatsSnapshot {
    StatsSnapshot {
        circuit_evals: rng.counter(),
        sta_calls: rng.counter(),
        cache_hits: rng.counter(),
        cache_misses: rng.counter(),
        incremental_commits: rng.counter(),
        incremental_gates: rng.counter(),
        sta_fallbacks: rng.counter(),
        deadline_trips: rng.counter(),
        faults_injected: rng.counter(),
        checkpoints_written: rng.counter(),
        panics_recovered: rng.counter(),
        store_writes: rng.counter(),
        store_retries: rng.counter(),
        store_quarantined: rng.counter(),
        store_degraded_seconds: rng.counter(),
        retry_backoffs: rng.counter(),
        breaker_opens: rng.counter(),
        hedges_fired: rng.counter(),
        hedges_wasted: rng.counter(),
        phase_nanos: [rng.counter(), rng.counter(), rng.counter(), rng.counter()],
    }
}

fn merged(a: &StatsSnapshot, b: &StatsSnapshot) -> StatsSnapshot {
    let mut out = *a;
    out.merge(b);
    out
}

#[test]
fn merge_is_associative() {
    for seed in 0..256u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ 0xa5a5);
        let a = random_snapshot(&mut rng);
        let b = random_snapshot(&mut rng);
        let c = random_snapshot(&mut rng);
        assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c)),
            "seed {seed}: (a+b)+c != a+(b+c)"
        );
    }
}

#[test]
fn merge_is_commutative() {
    for seed in 0..256u64 {
        let mut rng = Rng(seed ^ 0xdead_beef);
        let a = random_snapshot(&mut rng);
        let b = random_snapshot(&mut rng);
        assert_eq!(merged(&a, &b), merged(&b, &a), "seed {seed}: a+b != b+a");
    }
}

#[test]
fn default_is_the_identity() {
    for seed in 0..64u64 {
        let mut rng = Rng(seed.wrapping_add(0x1111_2222_3333_4444));
        let a = random_snapshot(&mut rng);
        let zero = StatsSnapshot::default();
        assert_eq!(merged(&a, &zero), a, "seed {seed}: a+0 != a");
        assert_eq!(merged(&zero, &a), a, "seed {seed}: 0+a != a");
    }
}

#[test]
fn any_merge_order_folds_to_the_same_total() {
    // The fleet-level property the coordinator actually relies on: N
    // per-shard snapshots folded in any order — left fold, right fold, a
    // shuffled fold, pairwise tree reduction — give one total.
    for seed in 0..32u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9) | 1);
        let n = 2 + (rng.next_u64() % 30) as usize;
        let parts: Vec<StatsSnapshot> = (0..n).map(|_| random_snapshot(&mut rng)).collect();

        let left = parts
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| merged(&acc, s));
        let right = parts
            .iter()
            .rev()
            .fold(StatsSnapshot::default(), |acc, s| merged(&acc, s));

        // Deterministic shuffle.
        let mut shuffled = parts.clone();
        for i in (1..shuffled.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let any = shuffled
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| merged(&acc, s));

        // Pairwise tree reduction.
        let mut layer = parts.clone();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        merged(&pair[0], &pair[1])
                    } else {
                        pair[0]
                    }
                })
                .collect();
        }

        assert_eq!(left, right, "seed {seed}: left fold != right fold");
        assert_eq!(left, any, "seed {seed}: shuffled fold diverged");
        assert_eq!(left, layer[0], "seed {seed}: tree reduction diverged");
    }
}
