//! Property tests for activity propagation invariants.
//!
//! Requires the external `proptest` crate: compiled only with the
//! `proptest` feature enabled (offline builds skip it).
#![cfg(feature = "proptest")]

use minpower_activity::{Activities, InputActivity};
use minpower_netlist::{GateKind, Netlist, NetlistBuilder};
use proptest::prelude::*;

/// Builds a random layered DAG with `n_inputs` inputs and `n_gates` gates.
fn random_netlist(n_inputs: usize, n_gates: usize, picks: &[usize]) -> Netlist {
    let mut b = NetlistBuilder::new("prop");
    let mut nets: Vec<String> = Vec::new();
    for i in 0..n_inputs {
        let name = format!("i{i}");
        b.input(&name).unwrap();
        nets.push(name);
    }
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Not,
        GateKind::Xor,
    ];
    let mut k = 0usize;
    let mut pick = |m: usize| {
        let v = picks[k % picks.len()] % m;
        k += 1;
        v
    };
    for g in 0..n_gates {
        let kind = kinds[pick(kinds.len())];
        let arity = if kind.is_unary() { 1 } else { 2 + pick(2) };
        let mut fanin = Vec::new();
        for _ in 0..arity {
            fanin.push(nets[pick(nets.len())].clone());
        }
        let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
        let name = format!("g{g}");
        b.gate(&name, kind, &refs).unwrap();
        nets.push(name);
    }
    b.output(&format!("g{}", n_gates - 1)).unwrap();
    b.finish().unwrap()
}

proptest! {
    #[test]
    fn probabilities_stay_in_unit_interval(
        probs in proptest::collection::vec(0.0f64..=1.0, 4),
        picks in proptest::collection::vec(0usize..1000, 64),
        n_gates in 1usize..30,
    ) {
        let n = random_netlist(4, n_gates, &picks);
        let profile: Vec<InputActivity> =
            probs.iter().map(|&p| InputActivity::bernoulli(p)).collect();
        let acts = Activities::propagate(&n, &profile);
        for &p in acts.probabilities() {
            prop_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
    }

    #[test]
    fn gate_density_bounded_by_fanin_density_sum(
        probs in proptest::collection::vec(0.0f64..=1.0, 4),
        dens in proptest::collection::vec(0.0f64..=1.0, 4),
        picks in proptest::collection::vec(0usize..1000, 64),
        n_gates in 1usize..30,
    ) {
        let n = random_netlist(4, n_gates, &picks);
        let profile: Vec<InputActivity> = probs
            .iter()
            .zip(dens.iter())
            .map(|(&p, &d)| InputActivity::new(p, d))
            .collect();
        let acts = Activities::propagate(&n, &profile);
        // Boolean-difference probabilities never exceed 1, so each gate's
        // density is bounded by the sum of its fanin densities.
        for &id in n.topological_order() {
            let g = n.gate(id);
            if g.kind() == GateKind::Input {
                continue;
            }
            let bound: f64 = g.fanin().iter().map(|&f| acts.density(f)).sum();
            prop_assert!(
                acts.density(id) <= bound + 1e-9,
                "gate {} density {} exceeds fanin sum {bound}",
                g.name(),
                acts.density(id)
            );
        }
    }

    #[test]
    fn zero_density_inputs_yield_zero_density_everywhere(
        probs in proptest::collection::vec(0.0f64..=1.0, 4),
        picks in proptest::collection::vec(0usize..1000, 64),
        n_gates in 1usize..30,
    ) {
        let n = random_netlist(4, n_gates, &picks);
        let profile: Vec<InputActivity> = probs
            .iter()
            .map(|&p| InputActivity::new(p, 0.0))
            .collect();
        let acts = Activities::propagate(&n, &profile);
        for &d in acts.densities() {
            prop_assert!(d.abs() < 1e-15);
        }
    }
}
