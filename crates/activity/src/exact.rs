//! Exact activity computation by input-space enumeration.
//!
//! The paper's transition-density propagation is a *first-order*
//! approximation: it "does not take into account input signal
//! correlations" (§4.1), i.e. it ignores reconvergent fanout. For small
//! networks the exact quantities can be computed by enumerating all
//! `2^n` input vectors, which lets the experiments quantify the
//! approximation error on real structures (the role of ref \[11\]'s
//! correlation-aware methods).
//!
//! Two exact quantities are provided:
//!
//! * [`probabilities`] — the exact static `1`-probability of every gate;
//! * [`densities`] — the exact Najm density
//!   `D(y) = Σ_x P(∂y/∂x)·D(x)` over **primary inputs** `x`, with the
//!   Boolean difference of the whole fanin cone evaluated exactly.

use minpower_netlist::{GateKind, Netlist};

use crate::InputActivity;

/// Maximum number of primary inputs accepted for enumeration.
pub const MAX_INPUTS: usize = 20;

/// Per-vector outputs of every gate, stored as bitsets over the input
/// space.
struct Truth {
    /// `bits[g][v / 64] >> (v % 64) & 1` = output of gate `g` on vector `v`.
    bits: Vec<Vec<u64>>,
    n_inputs: usize,
}

fn enumerate(netlist: &Netlist) -> Truth {
    let n_in = netlist.inputs().len();
    assert!(
        n_in <= MAX_INPUTS,
        "exact enumeration supports at most {MAX_INPUTS} inputs, got {n_in}"
    );
    let vectors = 1usize << n_in;
    let words = vectors.div_ceil(64);
    let mut bits = vec![vec![0u64; words]; netlist.gate_count()];

    // Seed input bitsets: input k's output over vector v is bit k of v.
    for (k, &id) in netlist.inputs().iter().enumerate() {
        let row = &mut bits[id.index()];
        for v in 0..vectors {
            if (v >> k) & 1 == 1 {
                row[v / 64] |= 1u64 << (v % 64);
            }
        }
    }
    // Bitwise-parallel evaluation in topological order.
    for &id in netlist.topological_order() {
        let gate = netlist.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        let mut acc: Option<Vec<u64>> = None;
        for &f in gate.fanin() {
            let src = bits[f.index()].clone();
            acc = Some(match acc {
                None => src,
                Some(mut a) => {
                    for (aw, sw) in a.iter_mut().zip(src.iter()) {
                        match gate.kind() {
                            GateKind::And | GateKind::Nand => *aw &= sw,
                            GateKind::Or | GateKind::Nor => *aw |= sw,
                            GateKind::Xor | GateKind::Xnor => *aw ^= sw,
                            GateKind::Not | GateKind::Buf | GateKind::Input => {}
                        }
                    }
                    a
                }
            });
        }
        let mut row = acc.expect("logic gates have fanin");
        if matches!(
            gate.kind(),
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        ) {
            for w in &mut row {
                *w = !*w;
            }
        }
        // Mask off the bits beyond 2^n in the last word.
        let tail = vectors % 64;
        if tail != 0 {
            let last = row.len() - 1;
            row[last] &= (1u64 << tail) - 1;
        }
        bits[id.index()] = row;
    }
    Truth {
        bits,
        n_inputs: n_in,
    }
}

/// Probability weight of each input vector under independent inputs.
fn vector_weights(probabilities: &[f64]) -> Vec<f64> {
    let n = probabilities.len();
    let vectors = 1usize << n;
    let mut w = vec![0.0f64; vectors];
    for (v, weight) in w.iter_mut().enumerate() {
        let mut acc = 1.0;
        for (k, &p) in probabilities.iter().enumerate() {
            acc *= if (v >> k) & 1 == 1 { p } else { 1.0 - p };
        }
        *weight = acc;
    }
    w
}

/// Exact static `1`-probability of every gate (indexed by
/// [`minpower_netlist::GateId::index`]) for independent inputs with the
/// given `1`-probabilities.
///
/// # Panics
///
/// Panics if the input count exceeds [`MAX_INPUTS`] or
/// `input_probabilities.len()` mismatches the netlist.
///
/// # Example
///
/// ```
/// use minpower_netlist::{GateKind, NetlistBuilder};
/// # fn main() -> Result<(), minpower_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("recon");
/// b.input("a")?;
/// b.gate("x", GateKind::Not, &["a"])?;
/// // y = a AND NOT a == 0: reconvergence the first-order rule misses.
/// b.gate("y", GateKind::And, &["a", "x"])?;
/// b.output("y")?;
/// let n = b.finish()?;
/// let exact = minpower_activity::exact::probabilities(&n, &[0.5]);
/// assert_eq!(exact[n.find("y").unwrap().index()], 0.0);
/// # Ok(())
/// # }
/// ```
pub fn probabilities(netlist: &Netlist, input_probabilities: &[f64]) -> Vec<f64> {
    assert_eq!(input_probabilities.len(), netlist.inputs().len());
    let truth = enumerate(netlist);
    let weights = vector_weights(input_probabilities);
    let vectors = 1usize << truth.n_inputs;
    truth
        .bits
        .iter()
        .map(|row| {
            let mut p = 0.0;
            for v in 0..vectors {
                if row[v / 64] >> (v % 64) & 1 == 1 {
                    p += weights[v];
                }
            }
            p
        })
        .collect()
}

/// Exact Najm transition density of every gate: the Boolean difference
/// with respect to each **primary input** is evaluated exactly over the
/// cone, then weighted by that input's density.
///
/// # Panics
///
/// Same conditions as [`probabilities`].
pub fn densities(netlist: &Netlist, inputs: &[InputActivity]) -> Vec<f64> {
    assert_eq!(inputs.len(), netlist.inputs().len());
    let truth = enumerate(netlist);
    let probs: Vec<f64> = inputs.iter().map(|a| a.probability).collect();
    let weights = vector_weights(&probs);
    let vectors = 1usize << truth.n_inputs;

    let mut density = vec![0.0f64; netlist.gate_count()];
    for (k, activity) in inputs.iter().enumerate() {
        if activity.density == 0.0 {
            continue;
        }
        // P(∂y/∂x_k): probability (over the other inputs) that flipping
        // input k flips y. Pair vectors differing only in bit k; weight
        // by the pair's probability conditioned on x_k's distribution —
        // the standard convention takes the weight of the remaining
        // inputs, so sum w(v)/P(x_k = v_k) over sensitized v with
        // v_k = 0 (each pair counted once).
        let bit = 1usize << k;
        let p0 = 1.0 - probs[k];
        for (g, row) in truth.bits.iter().enumerate() {
            let mut sens = 0.0;
            for v in 0..vectors {
                if v & bit != 0 {
                    continue;
                }
                let y0 = row[v / 64] >> (v % 64) & 1;
                let v1 = v | bit;
                let y1 = row[v1 / 64] >> (v1 % 64) & 1;
                if y0 != y1 {
                    // weight of the other inputs = w(v) / (1 - p_k).
                    sens += if p0 > 0.0 {
                        weights[v] / p0
                    } else {
                        // p_k = 1: condition on the v1 branch instead.
                        weights[v1] / probs[k]
                    };
                }
            }
            density[g] += sens * activity.density;
        }
    }
    density
}

/// Exact static `1`-probabilities via BDDs (no input-count limit; size
/// tracks circuit structure instead). One BDD traversal per gate.
///
/// # Errors
///
/// Returns [`minpower_bdd::CapacityError`] when the circuit's BDDs exceed
/// the default node cap (exponential cones such as multipliers).
///
/// # Panics
///
/// Panics if `input_probabilities.len()` mismatches the netlist.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), minpower_bdd::CapacityError> {
/// # use minpower_netlist::{GateKind, NetlistBuilder};
/// # let mut b = NetlistBuilder::new("t");
/// # b.input("a").unwrap();
/// # b.input("c").unwrap();
/// # b.gate("y", GateKind::Nand, &["a", "c"]).unwrap();
/// # b.output("y").unwrap();
/// # let n = b.finish().unwrap();
/// let p = minpower_activity::exact::probabilities_bdd(&n, &[0.5, 0.5])?;
/// let y = n.find("y").unwrap();
/// assert!((p[y.index()] - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn probabilities_bdd(
    netlist: &Netlist,
    input_probabilities: &[f64],
) -> Result<Vec<f64>, minpower_bdd::CapacityError> {
    assert_eq!(input_probabilities.len(), netlist.inputs().len());
    let mut bdd = minpower_bdd::Bdd::new(netlist.inputs().len());
    let nodes = minpower_bdd::build_outputs(&mut bdd, netlist)?;
    Ok(nodes
        .iter()
        .map(|&f| bdd.probability(f, input_probabilities))
        .collect())
}

/// Exact Najm densities via BDDs: for every gate, the Boolean difference
/// with respect to each primary input is built symbolically and its
/// probability weighted by that input's density.
///
/// Cost is `O(gates × inputs)` Boolean-difference constructions; use
/// [`densities`] (enumeration) for tiny circuits and this for the
/// s298/s713-class benchmarks.
///
/// # Errors
///
/// Returns [`minpower_bdd::CapacityError`] on node-cap exhaustion.
///
/// # Panics
///
/// Panics if `inputs.len()` mismatches the netlist.
pub fn densities_bdd(
    netlist: &Netlist,
    inputs: &[InputActivity],
) -> Result<Vec<f64>, minpower_bdd::CapacityError> {
    assert_eq!(inputs.len(), netlist.inputs().len());
    let probs: Vec<f64> = inputs.iter().map(|a| a.probability).collect();
    let mut bdd = minpower_bdd::Bdd::new(netlist.inputs().len());
    let nodes = minpower_bdd::build_outputs(&mut bdd, netlist)?;
    let mut density = vec![0.0f64; netlist.gate_count()];
    for (g, &f) in nodes.iter().enumerate() {
        let mut d = 0.0;
        for (k, activity) in inputs.iter().enumerate() {
            if activity.density == 0.0 {
                continue;
            }
            let diff = bdd.boolean_difference(f, k)?;
            if diff == minpower_bdd::NodeId::FALSE {
                continue;
            }
            d += bdd.probability(diff, &probs) * activity.density;
        }
        density[g] = d;
    }
    Ok(density)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activities;
    use minpower_netlist::NetlistBuilder;

    fn reconvergent() -> Netlist {
        // y = (a NAND b) NAND (a NAND c): reconvergence through a.
        let mut b = NetlistBuilder::new("recon");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Nand, &["a", "b"]).unwrap();
        b.gate("v", GateKind::Nand, &["a", "c"]).unwrap();
        b.gate("y", GateKind::Nand, &["u", "v"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn exact_matches_propagation_on_trees() {
        let mut b = NetlistBuilder::new("tree");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.input("c").unwrap();
        b.input("d").unwrap();
        b.gate("u", GateKind::And, &["a", "b"]).unwrap();
        b.gate("v", GateKind::Or, &["c", "d"]).unwrap();
        b.gate("y", GateKind::Xor, &["u", "v"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        let probs = [0.3, 0.6, 0.5, 0.2];
        let profile: Vec<InputActivity> =
            probs.iter().map(|&p| InputActivity::new(p, 0.4)).collect();
        let exact_p = probabilities(&n, &probs);
        let exact_d = densities(&n, &profile);
        let approx = Activities::propagate(&n, &profile);
        for &id in n.topological_order() {
            let i = id.index();
            assert!(
                (exact_p[i] - approx.probability(id)).abs() < 1e-12,
                "{}: p {} vs {}",
                n.gate(id).name(),
                exact_p[i],
                approx.probability(id)
            );
            assert!(
                (exact_d[i] - approx.density(id)).abs() < 1e-12,
                "{}: d {} vs {}",
                n.gate(id).name(),
                exact_d[i],
                approx.density(id)
            );
        }
    }

    #[test]
    fn reconvergence_creates_a_gap() {
        let n = reconvergent();
        let probs = [0.5, 0.5, 0.5];
        let profile: Vec<InputActivity> =
            probs.iter().map(|&p| InputActivity::bernoulli(p)).collect();
        let exact_p = probabilities(&n, &probs);
        let approx = Activities::propagate(&n, &profile);
        let y = n.find("y").unwrap();
        // y = (a∧b) ∨ (a∧c) = a∧(b∨c): exact P = 0.5·0.75 = 0.375.
        assert!((exact_p[y.index()] - 0.375).abs() < 1e-12);
        // The first-order rule treats u and v as independent: P = 1 −
        // 0.75·0.75 ≠ 0.375 — a real, measurable gap.
        assert!((approx.probability(y) - exact_p[y.index()]).abs() > 0.04);
    }

    #[test]
    fn exact_probability_of_contradiction_is_zero() {
        let mut b = NetlistBuilder::new("zero");
        b.input("a").unwrap();
        b.gate("na", GateKind::Not, &["a"]).unwrap();
        b.gate("y", GateKind::And, &["a", "na"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        let exact = probabilities(&n, &[0.7]);
        let y = n.find("y").unwrap();
        assert_eq!(exact[y.index()], 0.0);
        // And its exact density is zero: flipping a never flips y.
        let d = densities(&n, &[InputActivity::bernoulli(0.7)]);
        assert_eq!(d[y.index()], 0.0);
    }

    #[test]
    fn skewed_input_probabilities_are_honored() {
        let n = reconvergent();
        let probs = [0.9, 0.1, 0.2];
        let exact = probabilities(&n, &probs);
        let y = n.find("y").unwrap();
        // y = a∧(b∨c): 0.9·(1 − 0.9·0.8) = 0.9·0.28 = 0.252.
        assert!((exact[y.index()] - 0.252).abs() < 1e-12);
    }

    #[test]
    fn bdd_route_matches_enumeration() {
        let n = reconvergent();
        let probs = [0.5, 0.3, 0.8];
        let profile: Vec<InputActivity> =
            probs.iter().map(|&p| InputActivity::new(p, 0.4)).collect();
        let enum_p = probabilities(&n, &probs);
        let bdd_p = probabilities_bdd(&n, &probs).unwrap();
        let enum_d = densities(&n, &profile);
        let bdd_d = densities_bdd(&n, &profile).unwrap();
        for i in 0..n.gate_count() {
            assert!((enum_p[i] - bdd_p[i]).abs() < 1e-12, "p mismatch at {i}");
            assert!((enum_d[i] - bdd_d[i]).abs() < 1e-12, "d mismatch at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_inputs_panics() {
        let mut b = NetlistBuilder::new("wide");
        let mut names = Vec::new();
        for i in 0..(MAX_INPUTS + 1) {
            let nm = format!("i{i}");
            b.input(&nm).unwrap();
            names.push(nm);
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.gate("y", GateKind::And, &refs[..2]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        let _ = probabilities(&n, &[0.5; MAX_INPUTS + 1]);
    }
}
