//! Signal probability and switching-activity estimation.
//!
//! The dynamic energy of a gate (paper Eq. A2) is proportional to its
//! output activity factor `a_i`. The paper computes internal-node
//! activities with Najm's *transition density* propagation (§4.1, ref \[8\]):
//!
//! ```text
//! D(y) = Σ_i  P(∂y/∂x_i) · D(x_i)
//! ```
//!
//! where `∂y/∂x_i` is the Boolean difference of the gate function with
//! respect to input `i`, evaluated under the spatial-independence
//! assumption (a first-order approximation that ignores input correlation
//! and reconvergent fanout — exactly the approximation the paper adopts).
//!
//! This crate propagates both static signal probabilities and per-cycle
//! transition densities from a per-input [`InputActivity`] profile to every
//! gate of a [`Netlist`], and offers a Monte-Carlo reference estimator used
//! to validate the analytic propagation on fanout-free structures.
//!
//! # Example
//!
//! ```
//! use minpower_activity::{Activities, InputActivity};
//! use minpower_netlist::{GateKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), minpower_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("and2");
//! b.input("a")?;
//! b.input("b")?;
//! b.gate("y", GateKind::And, &["a", "b"])?;
//! b.output("y")?;
//! let n = b.finish()?;
//!
//! let acts = Activities::propagate(&n, &InputActivity::uniform(0.5, 0.5, 2));
//! let y = n.find("y").unwrap();
//! assert!((acts.probability(y) - 0.25).abs() < 1e-12);
//! assert!((acts.density(y) - 0.5).abs() < 1e-12); // 0.5·0.5 + 0.5·0.5
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;

use minpower_netlist::{GateId, GateKind, Netlist};

/// Switching profile of one primary input: static `1`-probability and
/// per-cycle transition density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputActivity {
    /// Probability that the input is logic `1`.
    pub probability: f64,
    /// Expected transitions per clock cycle (`0 ≤ d ≤ 2` for physical
    /// waveforms; `2p(1−p)` for a temporally independent source).
    pub density: f64,
}

impl InputActivity {
    /// Creates a profile, validating the ranges.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]` or `density` is
    /// negative.
    pub fn new(probability: f64, density: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        assert!(density >= 0.0, "density must be non-negative");
        InputActivity {
            probability,
            density,
        }
    }

    /// A uniform profile: `count` copies of the same `(p, d)` pair — the
    /// "same activity level over all inputs" assumption of the paper's
    /// tables.
    pub fn uniform(probability: f64, density: f64, count: usize) -> Vec<Self> {
        vec![InputActivity::new(probability, density); count]
    }

    /// The profile of a temporally independent random source with
    /// `1`-probability `p`: density `2p(1−p)`.
    pub fn bernoulli(p: f64) -> Self {
        InputActivity::new(p, 2.0 * p * (1.0 - p))
    }

    /// The profile of a lag-1 correlated source: `1`-probability `p` and
    /// autocorrelation `rho ∈ [−1, 1]` between consecutive cycles, giving
    /// density `2p(1−p)(1−ρ)`. Positive correlation (slowly-varying
    /// control signals) lowers activity; negative correlation
    /// (clock-like toggling) raises it up to the `2p(1−p)·2` ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `rho` outside `[−1, 1]`.
    ///
    /// # Example
    ///
    /// ```
    /// use minpower_activity::InputActivity;
    /// let slow = InputActivity::correlated(0.5, 0.8);
    /// let fast = InputActivity::correlated(0.5, -0.8);
    /// assert!(slow.density < fast.density);
    /// ```
    pub fn correlated(p: f64, rho: f64) -> Self {
        assert!(
            (-1.0..=1.0).contains(&rho),
            "correlation must be in [-1, 1]"
        );
        InputActivity::new(p, 2.0 * p * (1.0 - p) * (1.0 - rho))
    }
}

/// Per-gate signal probabilities and transition densities for a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Activities {
    probability: Vec<f64>,
    density: Vec<f64>,
}

impl Activities {
    /// Propagates a per-input profile through the network in topological
    /// order.
    ///
    /// `inputs` must supply one [`InputActivity`] per primary input, in
    /// [`Netlist::inputs`] order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn propagate(netlist: &Netlist, inputs: &[InputActivity]) -> Self {
        assert_eq!(
            inputs.len(),
            netlist.inputs().len(),
            "one InputActivity per primary input required"
        );
        let n = netlist.gate_count();
        let mut probability = vec![0.0; n];
        let mut density = vec![0.0; n];
        for (k, &id) in netlist.inputs().iter().enumerate() {
            probability[id.index()] = inputs[k].probability;
            density[id.index()] = inputs[k].density;
        }
        for &id in netlist.topological_order() {
            let gate = netlist.gate(id);
            if gate.kind() == GateKind::Input {
                continue;
            }
            let fanin = gate.fanin();
            let p_in: Vec<f64> = fanin.iter().map(|f| probability[f.index()]).collect();
            probability[id.index()] = output_probability(gate.kind(), &p_in);
            let mut d = 0.0;
            for (i, f) in fanin.iter().enumerate() {
                d += boolean_difference_probability(gate.kind(), &p_in, i) * density[f.index()];
            }
            density[id.index()] = d;
        }
        Activities {
            probability,
            density,
        }
    }

    /// Static probability that gate `id`'s output is logic `1`.
    pub fn probability(&self, id: GateId) -> f64 {
        self.probability[id.index()]
    }

    /// Per-cycle transition density of gate `id`'s output — the activity
    /// factor `a_i` of the paper's dynamic-energy expression.
    pub fn density(&self, id: GateId) -> f64 {
        self.density[id.index()]
    }

    /// All probabilities, indexed by [`GateId::index`].
    pub fn probabilities(&self) -> &[f64] {
        &self.probability
    }

    /// All densities, indexed by [`GateId::index`].
    pub fn densities(&self) -> &[f64] {
        &self.density
    }
}

/// Output `1`-probability of a gate under the input-independence
/// assumption.
fn output_probability(kind: GateKind, p: &[f64]) -> f64 {
    match kind {
        GateKind::Input => 0.0,
        GateKind::And => p.iter().product(),
        GateKind::Nand => 1.0 - p.iter().product::<f64>(),
        GateKind::Or => 1.0 - p.iter().map(|q| 1.0 - q).product::<f64>(),
        GateKind::Nor => p.iter().map(|q| 1.0 - q).product(),
        GateKind::Not => 1.0 - p[0],
        GateKind::Buf => p[0],
        // P(odd parity) = (1 − Π(1 − 2p_i)) / 2.
        GateKind::Xor => (1.0 - p.iter().map(|q| 1.0 - 2.0 * q).product::<f64>()) / 2.0,
        GateKind::Xnor => (1.0 + p.iter().map(|q| 1.0 - 2.0 * q).product::<f64>()) / 2.0,
    }
}

/// Probability that the Boolean difference `∂y/∂x_i` of the gate function
/// is `1` — the sensitization probability of input `i`.
fn boolean_difference_probability(kind: GateKind, p: &[f64], i: usize) -> f64 {
    let others = |f: &dyn Fn(f64) -> f64| -> f64 {
        p.iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &q)| f(q))
            .product()
    };
    match kind {
        GateKind::Input => 0.0,
        // AND/NAND sensitize input i when all other inputs are 1.
        GateKind::And | GateKind::Nand => others(&|q| q),
        // OR/NOR sensitize input i when all other inputs are 0.
        GateKind::Or | GateKind::Nor => others(&|q| 1.0 - q),
        GateKind::Not | GateKind::Buf => 1.0,
        // XOR/XNOR always propagate a change.
        GateKind::Xor | GateKind::Xnor => 1.0,
    }
}

/// Monte-Carlo transition-density estimate, used to validate the analytic
/// propagation.
///
/// Primary inputs are driven with temporally independent Bernoulli
/// sequences matching the given probabilities (so their empirical density
/// is `2p(1−p)`), the network is evaluated cycle by cycle, and output
/// toggles counted. Returns per-gate densities indexed by
/// [`GateId::index`].
pub fn monte_carlo_density(
    netlist: &Netlist,
    probabilities: &[f64],
    cycles: usize,
    seed: u64,
) -> Vec<f64> {
    assert_eq!(probabilities.len(), netlist.inputs().len());
    assert!(cycles > 0, "need at least one cycle");
    // xorshift64* PRNG: deterministic, no external dependency in the
    // published API (rand stays a dev-dependency).
    let mut state = seed.max(1);
    let mut next_f64 = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (r >> 11) as f64 / (1u64 << 53) as f64
    };
    let n_in = netlist.inputs().len();
    let mut toggles = vec![0u64; netlist.gate_count()];
    let mut prev: Option<Vec<bool>> = None;
    let mut stimulus = vec![false; n_in];
    for _ in 0..=cycles {
        for (k, s) in stimulus.iter_mut().enumerate() {
            *s = next_f64() < probabilities[k];
        }
        let values = netlist.evaluate(&stimulus);
        if let Some(prev) = &prev {
            for (i, (&a, &b)) in prev.iter().zip(values.iter()).enumerate() {
                if a != b {
                    toggles[i] += 1;
                }
            }
        }
        prev = Some(values);
    }
    toggles
        .into_iter()
        .map(|t| t as f64 / cycles as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_netlist::NetlistBuilder;

    fn two_input(kind: GateKind) -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("y", kind, &["a", "b"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn probability_rules_two_input() {
        let cases = [
            (GateKind::And, 0.6 * 0.3),
            (GateKind::Nand, 1.0 - 0.6 * 0.3),
            (GateKind::Or, 1.0 - 0.4 * 0.7),
            (GateKind::Nor, 0.4 * 0.7),
            (GateKind::Xor, 0.6 * 0.7 + 0.4 * 0.3),
            (GateKind::Xnor, 1.0 - (0.6 * 0.7 + 0.4 * 0.3)),
        ];
        for (kind, expect) in cases {
            let n = two_input(kind);
            let acts = Activities::propagate(
                &n,
                &[InputActivity::new(0.6, 0.1), InputActivity::new(0.3, 0.1)],
            );
            let y = n.find("y").unwrap();
            assert!(
                (acts.probability(y) - expect).abs() < 1e-12,
                "{kind:?}: got {}, want {expect}",
                acts.probability(y)
            );
        }
    }

    #[test]
    fn density_rules_two_input() {
        // D(y) for AND = p_b·D_a + p_a·D_b; for OR = (1−p_b)·D_a + (1−p_a)·D_b.
        let n = two_input(GateKind::And);
        let acts = Activities::propagate(
            &n,
            &[InputActivity::new(0.6, 0.2), InputActivity::new(0.3, 0.4)],
        );
        let y = n.find("y").unwrap();
        assert!((acts.density(y) - (0.3 * 0.2 + 0.6 * 0.4)).abs() < 1e-12);

        let n = two_input(GateKind::Nor);
        let acts = Activities::propagate(
            &n,
            &[InputActivity::new(0.6, 0.2), InputActivity::new(0.3, 0.4)],
        );
        let y = n.find("y").unwrap();
        assert!((acts.density(y) - (0.7 * 0.2 + 0.4 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn inverter_passes_density_through() {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        let acts = Activities::propagate(&n, &[InputActivity::new(0.25, 0.7)]);
        let y = n.find("y").unwrap();
        assert!((acts.probability(y) - 0.75).abs() < 1e-12);
        assert!((acts.density(y) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn xor_sums_densities() {
        let n = two_input(GateKind::Xor);
        let acts = Activities::propagate(
            &n,
            &[InputActivity::new(0.5, 0.3), InputActivity::new(0.5, 0.4)],
        );
        let y = n.find("y").unwrap();
        assert!((acts.density(y) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn constant_inputs_kill_activity() {
        let n = two_input(GateKind::And);
        // b stuck at 0 with no transitions: output never switches.
        let acts = Activities::propagate(
            &n,
            &[InputActivity::new(0.5, 0.5), InputActivity::new(0.0, 0.0)],
        );
        let y = n.find("y").unwrap();
        assert_eq!(acts.probability(y), 0.0);
        assert_eq!(acts.density(y), 0.0);
    }

    #[test]
    fn monte_carlo_matches_analytic_on_tree() {
        // A fanout-free tree: independence assumption is exact.
        let mut b = NetlistBuilder::new("tree");
        for name in ["a", "b", "c", "d"] {
            b.input(name).unwrap();
        }
        b.gate("n1", GateKind::Nand, &["a", "b"]).unwrap();
        b.gate("n2", GateKind::Nor, &["c", "d"]).unwrap();
        b.gate("y", GateKind::And, &["n1", "n2"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();

        let p = [0.5, 0.3, 0.6, 0.2];
        let profile: Vec<InputActivity> = p.iter().map(|&q| InputActivity::bernoulli(q)).collect();
        let analytic = Activities::propagate(&n, &profile);
        let mc = monte_carlo_density(&n, &p, 200_000, 42);
        for &id in n.topological_order() {
            let m = mc[id.index()];
            // Under i.i.d. stimulus, consecutive output samples are i.i.d.
            // too, so the exact toggle rate is 2·P_y·(1−P_y); the analytic
            // probability is exact on a fanout-free tree.
            let py = analytic.probability(id);
            let exact = 2.0 * py * (1.0 - py);
            assert!(
                (exact - m).abs() < 0.01,
                "gate {}: toggle rate {exact} vs MC {m}",
                n.gate(id).name()
            );
            // Najm's continuous-time density can only overcount relative to
            // the discrete toggle rate (coincident input transitions cancel
            // in discrete time but are counted separately by the density).
            assert!(
                analytic.density(id) + 1e-9 >= m - 0.01,
                "gate {}: density {} below MC toggle rate {m}",
                n.gate(id).name(),
                analytic.density(id)
            );
        }
    }

    #[test]
    #[should_panic(expected = "one InputActivity per primary input")]
    fn wrong_profile_length_panics() {
        let n = two_input(GateKind::And);
        let _ = Activities::propagate(&n, &[InputActivity::new(0.5, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn bad_probability_panics() {
        let _ = InputActivity::new(1.5, 0.1);
    }

    #[test]
    fn bernoulli_density_is_2p1p() {
        let a = InputActivity::bernoulli(0.3);
        assert!((a.density - 2.0 * 0.3 * 0.7).abs() < 1e-12);
    }
}
