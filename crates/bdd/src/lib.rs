//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! Najm's transition-density work — the paper's activity-estimation
//! reference \[8\] — computes signal and Boolean-difference probabilities
//! on BDDs; the first-order propagation the paper adopts is its cheap
//! approximation. This crate supplies the real thing: a compact ROBDD
//! manager with the operations exact analysis needs —
//!
//! * [`Bdd::apply_and`] / [`Bdd::apply_or`] / [`Bdd::apply_xor`] /
//!   [`Bdd::not`] with memoized apply;
//! * [`Bdd::probability`] — exact `P(f = 1)` for independent inputs, by
//!   one linear-in-nodes traversal;
//! * [`Bdd::cofactor`] and [`Bdd::boolean_difference`] — the `∂f/∂x`
//!   machinery of the density definition;
//! * [`build_outputs`] — symbolic evaluation of a whole
//!   [`minpower_netlist::Netlist`], one BDD root per gate.
//!
//! Unlike the `2^n` enumeration in `minpower-activity`, BDD size tracks
//! the circuit's structure, not its input count — the genuine s713-class
//! benchmarks (50+ inputs) become analyzable exactly. A configurable node
//! cap keeps pathological circuits (multiplier cones) from exhausting
//! memory; hitting it is reported as an error, never an abort.
//!
//! # Example
//!
//! ```
//! use minpower_bdd::Bdd;
//!
//! let mut bdd = Bdd::new(2);
//! let a = bdd.var(0);
//! let b = bdd.var(1);
//! let f = bdd.apply_and(a, b).unwrap();
//! assert_eq!(bdd.probability(f, &[0.5, 0.5]), 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use minpower_netlist::{GateKind, Netlist};

/// Handle to a BDD node (function) within a [`Bdd`] manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant FALSE function.
    pub const FALSE: NodeId = NodeId(0);
    /// The constant TRUE function.
    pub const TRUE: NodeId = NodeId(1);
}

/// Error raised when a BDD operation would exceed the manager's node cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// The configured node limit.
    pub cap: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BDD exceeded the {}-node capacity", self.cap)
    }
}

impl Error for CapacityError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: NodeId,
    hi: NodeId,
}

/// An ROBDD manager over a fixed variable order `0..n_vars`.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    apply_cache: HashMap<(u8, NodeId, NodeId), NodeId>,
    n_vars: usize,
    cap: usize,
}

const OP_AND: u8 = 0;
const OP_OR: u8 = 1;
const OP_XOR: u8 = 2;

impl Bdd {
    /// Creates a manager for `n_vars` variables with the default
    /// 2-million-node cap.
    pub fn new(n_vars: usize) -> Self {
        Bdd::with_capacity(n_vars, 2_000_000)
    }

    /// Creates a manager with an explicit node cap.
    pub fn with_capacity(n_vars: usize, cap: usize) -> Self {
        let terminal = Node {
            var: u32::MAX,
            lo: NodeId::FALSE,
            hi: NodeId::FALSE,
        };
        Bdd {
            // Slots 0 and 1 are the FALSE/TRUE terminals.
            nodes: vec![terminal, terminal],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            n_vars,
            cap,
        }
    }

    /// Number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of variables in the order.
    pub fn var_count(&self) -> usize {
        self.n_vars
    }

    fn is_terminal(id: NodeId) -> bool {
        id.0 < 2
    }

    fn var_of(&self, id: NodeId) -> u32 {
        if Self::is_terminal(id) {
            u32::MAX
        } else {
            self.nodes[id.0 as usize].var
        }
    }

    fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> Result<NodeId, CapacityError> {
        if lo == hi {
            return Ok(lo);
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return Ok(id);
        }
        if self.nodes.len() >= self.cap {
            return Err(CapacityError { cap: self.cap });
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        Ok(id)
    }

    /// The single-variable function `x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the variable order.
    pub fn var(&mut self, index: usize) -> NodeId {
        assert!(index < self.n_vars, "variable {index} outside the order");
        self.mk(index as u32, NodeId::FALSE, NodeId::TRUE)
            .expect("a single fresh node never exceeds the cap")
    }

    /// Negation — `O(|f|)` via apply with XOR TRUE.
    pub fn not(&mut self, f: NodeId) -> Result<NodeId, CapacityError> {
        self.apply(OP_XOR, f, NodeId::TRUE)
    }

    /// Conjunction.
    pub fn apply_and(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, CapacityError> {
        self.apply(OP_AND, f, g)
    }

    /// Disjunction.
    pub fn apply_or(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, CapacityError> {
        self.apply(OP_OR, f, g)
    }

    /// Exclusive or.
    pub fn apply_xor(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, CapacityError> {
        self.apply(OP_XOR, f, g)
    }

    fn apply(&mut self, op: u8, f: NodeId, g: NodeId) -> Result<NodeId, CapacityError> {
        // Terminal rules.
        match op {
            OP_AND => {
                if f == NodeId::FALSE || g == NodeId::FALSE {
                    return Ok(NodeId::FALSE);
                }
                if f == NodeId::TRUE {
                    return Ok(g);
                }
                if g == NodeId::TRUE {
                    return Ok(f);
                }
                if f == g {
                    return Ok(f);
                }
            }
            OP_OR => {
                if f == NodeId::TRUE || g == NodeId::TRUE {
                    return Ok(NodeId::TRUE);
                }
                if f == NodeId::FALSE {
                    return Ok(g);
                }
                if g == NodeId::FALSE {
                    return Ok(f);
                }
                if f == g {
                    return Ok(f);
                }
            }
            OP_XOR => {
                if f == g {
                    return Ok(NodeId::FALSE);
                }
                if f == NodeId::FALSE {
                    return Ok(g);
                }
                if g == NodeId::FALSE {
                    return Ok(f);
                }
                if f == NodeId::TRUE && g == NodeId::TRUE {
                    return Ok(NodeId::FALSE);
                }
            }
            _ => unreachable!("unknown op"),
        }
        // Normalize commutative operand order for the cache.
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        if let Some(&hit) = self.apply_cache.get(&(op, a, b)) {
            return Ok(hit);
        }
        let va = self.var_of(a);
        let vb = self.var_of(b);
        let v = va.min(vb);
        let (a_lo, a_hi) = if va == v {
            let n = self.nodes[a.0 as usize];
            (n.lo, n.hi)
        } else {
            (a, a)
        };
        let (b_lo, b_hi) = if vb == v {
            let n = self.nodes[b.0 as usize];
            (n.lo, n.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, a_lo, b_lo)?;
        let hi = self.apply(op, a_hi, b_hi)?;
        let result = self.mk(v, lo, hi)?;
        self.apply_cache.insert((op, a, b), result);
        Ok(result)
    }

    /// Exact probability that `f = 1` under independent inputs with the
    /// given per-variable `1`-probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `probabilities.len()` differs from the variable count.
    pub fn probability(&self, f: NodeId, probabilities: &[f64]) -> f64 {
        assert_eq!(probabilities.len(), self.n_vars);
        let mut memo: HashMap<NodeId, f64> = HashMap::new();
        self.prob_rec(f, probabilities, &mut memo)
    }

    fn prob_rec(&self, f: NodeId, p: &[f64], memo: &mut HashMap<NodeId, f64>) -> f64 {
        if f == NodeId::FALSE {
            return 0.0;
        }
        if f == NodeId::TRUE {
            return 1.0;
        }
        if let Some(&v) = memo.get(&f) {
            return v;
        }
        let node = self.nodes[f.0 as usize];
        let pv = p[node.var as usize];
        let value =
            (1.0 - pv) * self.prob_rec(node.lo, p, memo) + pv * self.prob_rec(node.hi, p, memo);
        memo.insert(f, value);
        value
    }

    /// The cofactor `f|x_i = value`.
    pub fn cofactor(
        &mut self,
        f: NodeId,
        var: usize,
        value: bool,
    ) -> Result<NodeId, CapacityError> {
        let mut memo = HashMap::new();
        self.cofactor_rec(f, var as u32, value, &mut memo)
    }

    fn cofactor_rec(
        &mut self,
        f: NodeId,
        var: u32,
        value: bool,
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> Result<NodeId, CapacityError> {
        if Self::is_terminal(f) {
            return Ok(f);
        }
        if let Some(&hit) = memo.get(&f) {
            return Ok(hit);
        }
        let node = self.nodes[f.0 as usize];
        let result = if node.var == var {
            if value {
                node.hi
            } else {
                node.lo
            }
        } else if node.var > var {
            f // var does not appear below this point
        } else {
            let lo = self.cofactor_rec(node.lo, var, value, memo)?;
            let hi = self.cofactor_rec(node.hi, var, value, memo)?;
            self.mk(node.var, lo, hi)?
        };
        memo.insert(f, result);
        Ok(result)
    }

    /// The Boolean difference `∂f/∂x_i = f|x=1 ⊕ f|x=0` — the function
    /// that is `1` exactly where toggling `x_i` toggles `f` (the density
    /// definition's sensitization condition).
    pub fn boolean_difference(&mut self, f: NodeId, var: usize) -> Result<NodeId, CapacityError> {
        let hi = self.cofactor(f, var, true)?;
        let lo = self.cofactor(f, var, false)?;
        self.apply_xor(hi, lo)
    }

    /// Number of satisfying assignments of `f` over the full variable
    /// order (as `f64`; exact for up to ~2^53).
    pub fn sat_count(&self, f: NodeId) -> f64 {
        let uniform = vec![0.5; self.n_vars];
        self.probability(f, &uniform) * 2f64.powi(self.n_vars as i32)
    }
}

/// Builds one BDD per gate of `netlist` (indexed by
/// [`minpower_netlist::GateId::index`]), with BDD variable `k` bound to
/// the `k`-th primary input.
///
/// # Errors
///
/// Returns [`CapacityError`] if the circuit's BDDs exceed the manager's
/// node cap (reconvergent arithmetic cones can be exponential; random
/// logic rarely is).
pub fn build_outputs(bdd: &mut Bdd, netlist: &Netlist) -> Result<Vec<NodeId>, CapacityError> {
    assert_eq!(
        bdd.var_count(),
        netlist.inputs().len(),
        "manager must have one variable per primary input"
    );
    let mut node = vec![NodeId::FALSE; netlist.gate_count()];
    for (k, &input) in netlist.inputs().iter().enumerate() {
        node[input.index()] = bdd.var(k);
    }
    for &id in netlist.topological_order() {
        let gate = netlist.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        let operands: Vec<NodeId> = gate.fanin().iter().map(|f| node[f.index()]).collect();
        let mut acc = operands[0];
        for &next in &operands[1..] {
            acc = match gate.kind() {
                GateKind::And | GateKind::Nand => bdd.apply_and(acc, next)?,
                GateKind::Or | GateKind::Nor => bdd.apply_or(acc, next)?,
                GateKind::Xor | GateKind::Xnor => bdd.apply_xor(acc, next)?,
                GateKind::Not | GateKind::Buf | GateKind::Input => acc,
            };
        }
        if matches!(
            gate.kind(),
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        ) {
            acc = bdd.not(acc)?;
        }
        node[id.index()] = acc;
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_netlist::NetlistBuilder;

    #[test]
    fn terminal_identities() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        assert_eq!(b.apply_and(x, NodeId::TRUE).unwrap(), x);
        assert_eq!(b.apply_and(x, NodeId::FALSE).unwrap(), NodeId::FALSE);
        assert_eq!(b.apply_or(x, NodeId::FALSE).unwrap(), x);
        assert_eq!(b.apply_or(x, NodeId::TRUE).unwrap(), NodeId::TRUE);
        assert_eq!(b.apply_xor(x, x).unwrap(), NodeId::FALSE);
        let nx = b.not(x).unwrap();
        let nnx = b.not(nx).unwrap();
        assert_eq!(nnx, x);
    }

    #[test]
    fn reduction_shares_nodes() {
        let mut b = Bdd::new(3);
        let x0 = b.var(0);
        let x1 = b.var(1);
        // Build x0 AND x1 twice: the second build must add no nodes.
        let f1 = b.apply_and(x0, x1).unwrap();
        let count = b.node_count();
        let f2 = b.apply_and(x0, x1).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(b.node_count(), count);
    }

    #[test]
    fn probability_basic_gates() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let and = b.apply_and(x, y).unwrap();
        let or = b.apply_or(x, y).unwrap();
        let xor = b.apply_xor(x, y).unwrap();
        let p = [0.3, 0.7];
        assert!((b.probability(and, &p) - 0.21).abs() < 1e-12);
        assert!((b.probability(or, &p) - 0.79).abs() < 1e-12);
        assert!((b.probability(xor, &p) - (0.3 * 0.3 + 0.7 * 0.7)).abs() < 1e-12);
    }

    #[test]
    fn sat_count_of_parity() {
        let mut b = Bdd::new(4);
        let mut f = b.var(0);
        for i in 1..4 {
            let v = b.var(i);
            f = b.apply_xor(f, v).unwrap();
        }
        // Odd parity of 4 variables: exactly half the assignments.
        assert_eq!(b.sat_count(f), 8.0);
    }

    #[test]
    fn boolean_difference_of_and() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.apply_and(x, y).unwrap();
        // ∂(x∧y)/∂x = y.
        let d = b.boolean_difference(f, 0).unwrap();
        assert_eq!(d, y);
        // ∂ of XOR is constant TRUE.
        let g = b.apply_xor(x, y).unwrap();
        let dg = b.boolean_difference(g, 1).unwrap();
        assert_eq!(dg, NodeId::TRUE);
    }

    #[test]
    fn cofactor_eliminates_the_variable() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let xy = b.apply_and(x, y).unwrap();
        let f = b.apply_or(xy, z).unwrap();
        let f1 = b.cofactor(f, 0, true).unwrap();
        let yz = b.apply_or(y, z).unwrap();
        assert_eq!(f1, yz);
        let f0 = b.cofactor(f, 0, false).unwrap();
        assert_eq!(f0, z);
    }

    #[test]
    fn capacity_errors_are_reported_not_fatal() {
        let mut b = Bdd::with_capacity(8, 10);
        // Parity chains grow one node per variable; cap at 10 total nodes
        // trips quickly.
        let mut f = b.var(0);
        let mut tripped = false;
        for i in 1..8 {
            let v = b.var(i);
            match b.apply_xor(f, v) {
                Ok(next) => f = next,
                Err(CapacityError { cap }) => {
                    assert_eq!(cap, 10);
                    tripped = true;
                    break;
                }
            }
        }
        assert!(tripped, "cap never engaged");
    }

    #[test]
    fn netlist_outputs_match_exhaustive_evaluation() {
        let mut nb = NetlistBuilder::new("t");
        nb.input("a").unwrap();
        nb.input("b").unwrap();
        nb.input("c").unwrap();
        nb.gate("u", GateKind::Nand, &["a", "b"]).unwrap();
        nb.gate("v", GateKind::Nor, &["b", "c"]).unwrap();
        nb.gate("y", GateKind::Xor, &["u", "v"]).unwrap();
        nb.output("y").unwrap();
        let n = nb.finish().unwrap();
        let mut bdd = Bdd::new(3);
        let nodes = build_outputs(&mut bdd, &n).unwrap();
        for bits in 0..8u32 {
            let assignment: Vec<bool> = (0..3).map(|k| bits >> k & 1 == 1).collect();
            let probs: Vec<f64> = assignment
                .iter()
                .map(|&b| if b { 1.0 } else { 0.0 })
                .collect();
            let values = n.evaluate(&assignment);
            for &id in n.topological_order() {
                let p = bdd.probability(nodes[id.index()], &probs);
                assert_eq!(p > 0.5, values[id.index()], "gate {}", n.gate(id).name());
            }
        }
    }
}
