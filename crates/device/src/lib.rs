//! Device technology and transregional MOSFET models.
//!
//! The DAC'97 optimizer treats the *device design* (threshold voltage) as a
//! free variable alongside the circuit design (supply voltage, widths), so
//! the device model has to stay accurate across an unusually wide operating
//! range: from strong superthreshold conduction (`Vdd = 3.3 V`,
//! `Vt = 0.7 V`) down to subthreshold switching (`Vdd < Vt`). The paper
//! calls this a *transregional* model (Appendix A.2), built on the
//! Sakurai–Newton alpha-power law extended into the subthreshold region.
//!
//! This crate provides:
//!
//! * [`Technology`] — the process description (drive coefficient, velocity
//!   saturation index α, subthreshold slope, leakage, capacitances per unit
//!   feature-size width, interconnect R/C, search ranges), with the
//!   calibrated [`Technology::dac97`] instance used by all experiments;
//! * [`Mosfet`] — per-device current evaluation `I_D(V_gs, V_ds)` for the
//!   transient simulator, plus the saturation drive and off-current used by
//!   the closed-form delay/energy models.
//!
//! # Example
//!
//! ```
//! use minpower_device::Technology;
//!
//! let tech = Technology::dac97();
//! // Superthreshold drive grows with overdrive...
//! let strong = tech.drive_current(1.0, 3.3, 0.7);
//! let weak = tech.drive_current(1.0, 1.0, 0.7);
//! assert!(strong > weak);
//! // ...and leakage explodes as the threshold drops.
//! assert!(tech.off_current(1.0, 0.2) > 1e3 * tech.off_current(1.0, 0.7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod body_bias;
mod mosfet;
mod tech;

pub use body_bias::{BiasError, BiasPlan, BodyEffect};
pub use mosfet::{Mosfet, MosfetPolarity};
pub use tech::{Technology, TechnologyBuilder};

/// Boltzmann constant over electron charge, in volts per kelvin.
pub const KB_OVER_Q: f64 = 8.617_333e-5;

/// Thermal voltage `kT/q` at the given temperature in kelvin.
///
/// # Example
///
/// ```
/// let vt = minpower_device::thermal_voltage(300.0);
/// assert!((vt - 0.02585).abs() < 1e-4);
/// ```
pub fn thermal_voltage(temperature_k: f64) -> f64 {
    KB_OVER_Q * temperature_k
}
