//! Process technology description and transregional current laws.

use crate::thermal_voltage;

/// A CMOS process technology as seen by the energy/delay models.
///
/// All per-device quantities are expressed *per unit feature-size width*
/// (the paper's `w = 1` device is one minimum feature `F` wide), so a gate
/// of width `w` simply scales them linearly. The PMOS network is folded
/// into the NMOS-referred coefficients through the `beta` width ratio, as
/// the paper's symmetric-gate assumption permits.
///
/// Use [`Technology::dac97`] for the calibrated 3.3 V / 0.7 V / 300 MHz
/// operating point of the paper, or [`Technology::builder`] to customize.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Minimum feature size in meters (drawn channel length and unit width).
    pub feature_m: f64,
    /// Velocity-saturation index α of the alpha-power law (≈2 long-channel,
    /// →1 fully velocity-saturated; ~1.3 for a 0.35–0.5 µm process).
    pub alpha: f64,
    /// Saturation drive coefficient `K`: `I_Dsat = K·w·(V_gs−V_t)^α`
    /// amperes for the overdrive in volts and `w` in feature widths.
    pub k_drive: f64,
    /// Subthreshold ideality factor `n` (slope = n·vT·ln10 per decade).
    pub subthreshold_n: f64,
    /// Leakage prefactor: off-current per unit width at `V_t = 0`, amperes.
    pub i_off0: f64,
    /// Reverse-biased drain junction leakage per unit width, amperes.
    pub i_junction: f64,
    /// Junction temperature, kelvin.
    pub temperature_k: f64,
    /// Gate input capacitance per unit width, farads (`C_t` in Eq. A2;
    /// includes the PMOS gate through the beta ratio).
    pub c_in: f64,
    /// Parasitic output capacitance (overlap + drain junction + fringing)
    /// per unit width, farads (`C_PD`).
    pub c_pd: f64,
    /// Intermediate-node capacitance of series stacks per unit width,
    /// farads (`C_m`).
    pub c_mi: f64,
    /// PMOS-to-NMOS width ratio β (layout area and input-cap accounting).
    pub beta: f64,
    /// Interconnect resistance per meter, ohms.
    pub wire_r_per_m: f64,
    /// Interconnect capacitance per meter, farads.
    pub wire_c_per_m: f64,
    /// Signal propagation velocity on interconnect, m/s (time of flight).
    pub wire_velocity: f64,
    /// Search range for the supply voltage, volts (paper: 0.1–3.3 V).
    pub vdd_range: (f64, f64),
    /// Search range for the threshold voltage, volts (paper: 0.1–0.7 V).
    pub vt_range: (f64, f64),
    /// Search range for gate widths in feature widths (paper: 1–100).
    pub w_range: (f64, f64),
}

impl Technology {
    /// The calibrated process used throughout the reproduction: a
    /// 0.5 µm-class technology whose nominal corner (`Vdd = 3.3 V`,
    /// `Vt = 0.7 V`) runs the paper's benchmark suite at 300 MHz, matching
    /// the operating point of Table 1.
    pub fn dac97() -> Self {
        Technology {
            feature_m: 0.5e-6,
            alpha: 1.3,
            // ~150 µA for a minimum-width device at 2.6 V overdrive —
            // calibrated so the paper's benchmark suite meets 300 MHz at
            // the (3.3 V, 0.7 V) process corner only with deliberate
            // upsizing, reproducing the binding delay constraint behind
            // Table 1 (the fixed-Vt baseline is forced to a high supply).
            k_drive: 3.0e-5,
            subthreshold_n: 1.5,
            // Extrapolated off-current at Vt = 0; with the 89 mV/dec swing
            // this gives ~0.3 pA/unit at Vt = 0.7 V (negligible, as in the
            // paper's baseline) and ~0.1 µA/unit at Vt = 0.2 V — the level
            // at which static and dynamic energy balance at the optimum.
            i_off0: 2.0e-5,
            i_junction: 1.0e-15,
            temperature_k: 300.0,
            c_in: 1.2e-15,
            c_pd: 0.6e-15,
            c_mi: 0.3e-15,
            beta: 2.0,
            wire_r_per_m: 7.5e4,   // 0.075 Ω/µm
            wire_c_per_m: 2.0e-10, // 0.2 fF/µm
            wire_velocity: 1.5e8,
            vdd_range: (0.1, 3.3),
            vt_range: (0.1, 0.7),
            w_range: (1.0, 100.0),
        }
    }

    /// Derives the same process at a different junction temperature.
    ///
    /// Three first-order effects are modeled: the thermal voltage (and
    /// with it the subthreshold swing) scales with `T`; the threshold
    /// falls by ~1 mV/K (captured by *lowering the effective threshold*
    /// seen by the leakage law through a larger `i_off0`); and carrier
    /// mobility degrades as `(T/300)^−1.5`, reducing the drive
    /// coefficient. Net effect: hotter silicon is slower *and* leaks
    /// exponentially more — the robustness axis complementing the
    /// Fig. 2(a) process-tolerance study.
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is not in the physical `[200, 500]` range.
    pub fn at_temperature(&self, kelvin: f64) -> Technology {
        assert!(
            (200.0..=500.0).contains(&kelvin),
            "temperature must be within [200, 500] K"
        );
        let mut t = self.clone();
        t.temperature_k = kelvin;
        let dt = kelvin - self.temperature_k;
        // ~1 mV/K threshold reduction folded into the leakage prefactor:
        // I_off(vt) = i_off0·10^(−vt/S), so a ΔVt of −1 mV/K·dt is an
        // i_off0 multiplier of 10^(k_vt·dt/S).
        let swing = self.subthreshold_swing();
        t.i_off0 = self.i_off0 * 10f64.powf(1.0e-3 * dt / swing);
        // Mobility: μ ∝ T^−1.5.
        t.k_drive = self.k_drive * (self.temperature_k / kelvin).powf(1.5);
        t
    }

    /// Derives a constant-field-scaled technology node.
    ///
    /// `factor` is the new-to-old feature-size ratio (e.g. `0.7` takes
    /// the 0.5 µm `dac97` process to a 0.35 µm-class node). Dimensions,
    /// per-unit-width capacitances, drive, and the supply ceiling scale
    /// with `factor` (Dennard's rules); the subthreshold swing — set by
    /// `kT/q`, which does not scale — and therefore the leakage model
    /// stay fixed. That asymmetry is the point: re-optimizing across
    /// nodes shows the optimal threshold refusing to scale and leakage
    /// claiming a growing share, the trajectory that made the paper's
    /// joint optimization mainstream a decade later.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor ≤ 1`.
    pub fn scaled(&self, factor: f64) -> Technology {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scaling factor must be in (0, 1]"
        );
        let mut t = self.clone();
        t.feature_m *= factor;
        t.c_in *= factor;
        t.c_pd *= factor;
        t.c_mi *= factor;
        t.k_drive *= factor;
        t.vdd_range = (self.vdd_range.0, self.vdd_range.1 * factor);
        // Thresholds are a design variable here; keep the search range,
        // capped by the scaled supply.
        t.vt_range = (self.vt_range.0, self.vt_range.1.min(t.vdd_range.1 * 0.5));
        t
    }

    /// Starts a builder initialized to [`Technology::dac97`].
    pub fn builder() -> TechnologyBuilder {
        TechnologyBuilder {
            tech: Technology::dac97(),
        }
    }

    /// Thermal voltage `kT/q` at this technology's temperature, volts.
    pub fn v_thermal(&self) -> f64 {
        thermal_voltage(self.temperature_k)
    }

    /// Subthreshold swing in volts per decade of current.
    pub fn subthreshold_swing(&self) -> f64 {
        self.subthreshold_n * self.v_thermal() * std::f64::consts::LN_10
    }

    /// Smoothed gate overdrive (volts): `n·vT·ln(1 + exp((v_gs−v_t)/(n·vT)))`.
    ///
    /// This softplus form is what makes the current law *transregional*: it
    /// approaches `v_gs − v_t` deep in superthreshold and an exponential in
    /// `(v_gs − v_t)` in subthreshold, so the same expression covers both
    /// regimes of Appendix A.2.
    pub fn overdrive(&self, v_gs: f64, v_t: f64) -> f64 {
        let nvt = self.subthreshold_n * self.v_thermal();
        let x = (v_gs - v_t) / nvt;
        // ln(1+e^x), numerically stable on both tails.
        if x > 30.0 {
            nvt * x
        } else if x < -30.0 {
            nvt * x.exp()
        } else {
            nvt * x.exp().ln_1p()
        }
    }

    /// Saturation drive current `I_D` in amperes for a device of width `w`
    /// (feature widths), gate at `v_gs` volts, threshold `v_t` volts.
    ///
    /// This is the `I_Diw·w` of the delay expression (Eq. A3): the
    /// worst-case switching current of a single device, before series-stack
    /// derating (which is a circuit-level concern handled by the models
    /// crate).
    pub fn drive_current(&self, w: f64, v_gs: f64, v_t: f64) -> f64 {
        self.k_drive * w * self.overdrive(v_gs, v_t).powf(self.alpha)
    }

    /// Off-state (leakage) current in amperes for a device of width `w`:
    /// subthreshold channel leakage plus drain-junction leakage, the two
    /// contributions the paper includes in its static dissipation (Eq. A1).
    pub fn off_current(&self, w: f64, v_t: f64) -> f64 {
        let swing = self.subthreshold_swing();
        w * (self.i_off0 * 10f64.powf(-v_t / swing) + self.i_junction)
    }

    /// Expected interconnect capacitance in farads of a wire `length_m`
    /// meters long.
    pub fn wire_capacitance(&self, length_m: f64) -> f64 {
        self.wire_c_per_m * length_m
    }

    /// Interconnect resistance in ohms of a wire `length_m` meters long.
    pub fn wire_resistance(&self, length_m: f64) -> f64 {
        self.wire_r_per_m * length_m
    }

    /// Time of flight in seconds down a wire `length_m` meters long.
    pub fn time_of_flight(&self, length_m: f64) -> f64 {
        length_m / self.wire_velocity
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::dac97()
    }
}

/// Non-consuming builder for [`Technology`], seeded from
/// [`Technology::dac97`].
///
/// # Example
///
/// ```
/// use minpower_device::Technology;
/// let hot = Technology::builder().temperature(400.0).build();
/// assert!(hot.v_thermal() > Technology::dac97().v_thermal());
/// ```
#[derive(Debug, Clone)]
pub struct TechnologyBuilder {
    tech: Technology,
}

impl TechnologyBuilder {
    /// Sets the velocity-saturation index α.
    pub fn alpha(&mut self, alpha: f64) -> &mut Self {
        self.tech.alpha = alpha;
        self
    }

    /// Sets the saturation drive coefficient `K`.
    pub fn k_drive(&mut self, k: f64) -> &mut Self {
        self.tech.k_drive = k;
        self
    }

    /// Sets the subthreshold ideality factor `n`.
    pub fn subthreshold_n(&mut self, n: f64) -> &mut Self {
        self.tech.subthreshold_n = n;
        self
    }

    /// Sets the junction temperature in kelvin.
    pub fn temperature(&mut self, kelvin: f64) -> &mut Self {
        self.tech.temperature_k = kelvin;
        self
    }

    /// Sets the zero-threshold leakage prefactor.
    pub fn i_off0(&mut self, amps: f64) -> &mut Self {
        self.tech.i_off0 = amps;
        self
    }

    /// Sets the gate input capacitance per unit width.
    pub fn c_in(&mut self, farads: f64) -> &mut Self {
        self.tech.c_in = farads;
        self
    }

    /// Sets the parasitic output capacitance per unit width.
    pub fn c_pd(&mut self, farads: f64) -> &mut Self {
        self.tech.c_pd = farads;
        self
    }

    /// Sets the supply-voltage search range in volts.
    pub fn vdd_range(&mut self, lo: f64, hi: f64) -> &mut Self {
        self.tech.vdd_range = (lo, hi);
        self
    }

    /// Sets the threshold-voltage search range in volts.
    pub fn vt_range(&mut self, lo: f64, hi: f64) -> &mut Self {
        self.tech.vt_range = (lo, hi);
        self
    }

    /// Sets the gate-width search range in feature widths.
    pub fn w_range(&mut self, lo: f64, hi: f64) -> &mut Self {
        self.tech.w_range = (lo, hi);
        self
    }

    /// Produces the configured technology.
    pub fn build(&self) -> Technology {
        self.tech.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac97_meets_calibration_targets() {
        let t = Technology::dac97();
        // ~75 µA-class minimum-width drive at the nominal corner.
        let i = t.drive_current(1.0, 3.3, 0.7);
        assert!(i > 3.0e-5 && i < 2.0e-4, "I_Dsat = {i}");
        // Swing near 90 mV/dec at 300 K with n = 1.5.
        let s = t.subthreshold_swing();
        assert!((s - 0.0893).abs() < 0.003, "swing = {s}");
        // Off current at 0.7 V threshold is sub-picoamp (leakage is
        // negligible at the paper's fixed-Vt baseline corner).
        let ioff = t.off_current(1.0, 0.7);
        assert!(ioff > 1.0e-14 && ioff < 1.0e-12, "I_off = {ioff}");
    }

    #[test]
    fn overdrive_superthreshold_limit() {
        let t = Technology::dac97();
        // Deep superthreshold: softplus → linear overdrive within 1 %.
        let od = t.overdrive(3.3, 0.7);
        assert!((od - 2.6).abs() / 2.6 < 0.01, "od = {od}");
    }

    #[test]
    fn overdrive_subthreshold_limit_is_exponential() {
        let t = Technology::dac97();
        let nvt = t.subthreshold_n * t.v_thermal();
        // 100 mV below threshold, each further nvt·ln(10)/1 drop of Vgs
        // divides the overdrive (hence current for alpha=1) by e per nvt.
        let od1 = t.overdrive(0.2, 0.7);
        let od2 = t.overdrive(0.2 - nvt, 0.7);
        let ratio = od1 / od2;
        assert!(
            (ratio - std::f64::consts::E).abs() < 0.05,
            "ratio = {ratio}"
        );
    }

    #[test]
    fn drive_current_monotonicities() {
        let t = Technology::dac97();
        assert!(t.drive_current(2.0, 2.0, 0.4) > t.drive_current(1.0, 2.0, 0.4));
        assert!(t.drive_current(1.0, 2.5, 0.4) > t.drive_current(1.0, 2.0, 0.4));
        assert!(t.drive_current(1.0, 2.0, 0.3) > t.drive_current(1.0, 2.0, 0.4));
    }

    #[test]
    fn off_current_decade_per_swing() {
        let t = Technology::dac97();
        let s = t.subthreshold_swing();
        let hi = t.off_current(1.0, 0.3);
        let lo = t.off_current(1.0, 0.3 + s);
        // One swing of extra threshold = one decade less leakage (junction
        // floor is negligible at these levels).
        assert!((hi / lo - 10.0).abs() < 0.1, "ratio = {}", hi / lo);
    }

    #[test]
    fn junction_leakage_floors_the_off_current() {
        let t = Technology::dac97();
        let deep = t.off_current(1.0, 5.0);
        assert!((deep - t.i_junction).abs() < 1e-18);
    }

    #[test]
    fn wire_helpers_scale_linearly() {
        let t = Technology::dac97();
        assert!((t.wire_capacitance(2e-3) - 2.0 * t.wire_capacitance(1e-3)).abs() < 1e-18);
        assert!((t.wire_resistance(2e-3) - 2.0 * t.wire_resistance(1e-3)).abs() < 1e-9);
        assert!(t.time_of_flight(1.5e-1) > t.time_of_flight(1.5e-3));
    }

    #[test]
    fn builder_overrides_fields() {
        let t = Technology::builder().alpha(2.0).vdd_range(0.2, 2.5).build();
        assert_eq!(t.alpha, 2.0);
        assert_eq!(t.vdd_range, (0.2, 2.5));
        // Untouched fields keep dac97 values.
        assert_eq!(t.beta, Technology::dac97().beta);
    }

    #[test]
    fn default_is_dac97() {
        assert_eq!(Technology::default(), Technology::dac97());
    }

    #[test]
    fn constant_field_scaling_shrinks_everything_but_the_swing() {
        let t0 = Technology::dac97();
        let t1 = t0.scaled(0.7);
        assert!((t1.feature_m - 0.35e-6).abs() < 1e-9 * 0.35e-6);
        assert!((t1.c_in / t0.c_in - 0.7).abs() < 1e-12);
        assert!((t1.k_drive / t0.k_drive - 0.7).abs() < 1e-12);
        assert!((t1.vdd_range.1 - 3.3 * 0.7).abs() < 1e-12);
        // kT/q does not scale: identical swing, identical leakage law.
        assert_eq!(t1.subthreshold_swing(), t0.subthreshold_swing());
        assert_eq!(t1.off_current(1.0, 0.2), t0.off_current(1.0, 0.2));
    }

    #[test]
    #[should_panic(expected = "scaling factor")]
    fn upscaling_rejected() {
        let _ = Technology::dac97().scaled(1.4);
    }

    #[test]
    fn hot_silicon_is_slower_and_leakier() {
        let cold = Technology::dac97();
        let hot = cold.at_temperature(400.0);
        assert!(hot.drive_current(1.0, 3.3, 0.7) < cold.drive_current(1.0, 3.3, 0.7));
        // Leakage explodes: wider swing AND falling threshold.
        let ratio = hot.off_current(1.0, 0.3) / cold.off_current(1.0, 0.3);
        assert!(ratio > 10.0, "leakage ratio only {ratio}");
        assert!(hot.subthreshold_swing() > cold.subthreshold_swing());
    }

    #[test]
    fn room_temperature_is_identity() {
        let t = Technology::dac97();
        let same = t.at_temperature(300.0);
        assert!((same.i_off0 - t.i_off0).abs() < 1e-18);
        assert!((same.k_drive - t.k_drive).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn absurd_temperature_rejected() {
        let _ = Technology::dac97().at_temperature(1000.0);
    }
}
