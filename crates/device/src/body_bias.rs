//! Threshold adjustment through substrate / n-well reverse bias.
//!
//! The paper's §1 (Figure 1) proposes manufacturing the optimizer's
//! chosen threshold **without new process steps**: eliminate the
//! threshold-adjust implant, leaving low-`V_t` *natural* devices, then
//! apply a static reverse bias to the p-substrate (NMOS) and the n-well
//! (PMOS) to raise each threshold to the optimized value via the body
//! effect:
//!
//! ```text
//! V_t(V_sb) = V_t,natural + γ·(√(2φ_F + V_sb) − √(2φ_F))
//! ```
//!
//! This module models that body effect and computes the bias plan — the
//! substrate and n-well voltages — that realizes an optimization result
//! on an existing CMOS process.

use std::error::Error;
use std::fmt;

/// Error computing a reverse-bias plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BiasError {
    /// The target threshold is below the natural (zero-bias) threshold;
    /// reverse body bias can only *raise* the threshold. (Forward bias
    /// could lower it slightly, but the paper's static scheme is
    /// reverse-only.)
    BelowNatural {
        /// Requested threshold, volts.
        target: f64,
        /// The device's natural threshold, volts.
        natural: f64,
    },
    /// The required reverse bias exceeds the junction-safe limit.
    ExceedsLimit {
        /// Required bias, volts.
        required: f64,
        /// The configured maximum, volts.
        limit: f64,
    },
}

impl fmt::Display for BiasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BiasError::BelowNatural { target, natural } => write!(
                f,
                "target threshold {target:.3} V below the natural threshold {natural:.3} V"
            ),
            BiasError::ExceedsLimit { required, limit } => write!(
                f,
                "required reverse bias {required:.2} V exceeds the {limit:.2} V junction limit"
            ),
        }
    }
}

impl Error for BiasError {}

/// Body-effect model of one device polarity.
///
/// # Example
///
/// ```
/// use minpower_device::BodyEffect;
/// let nmos = BodyEffect::natural_nmos();
/// // Reverse bias raises the threshold...
/// assert!(nmos.vt_at(1.0) > nmos.vt_at(0.0));
/// // ...and the inverse recovers the bias for a target threshold.
/// let bias = nmos.bias_for(0.25).unwrap();
/// assert!((nmos.vt_at(bias) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyEffect {
    /// Natural (zero-bias) threshold magnitude, volts.
    pub vt_natural: f64,
    /// Body-effect coefficient γ, √V.
    pub gamma: f64,
    /// Surface potential `2φ_F`, volts.
    pub phi_2f: f64,
    /// Maximum junction-safe reverse bias, volts.
    pub max_bias: f64,
}

impl BodyEffect {
    /// A natural (implant-free) NMOS device in the `dac97` technology:
    /// ~100 mV zero-bias threshold.
    pub fn natural_nmos() -> Self {
        BodyEffect {
            vt_natural: 0.10,
            gamma: 0.50,
            phi_2f: 0.70,
            max_bias: 5.0,
        }
    }

    /// A natural PMOS device (threshold magnitude; bias is applied to the
    /// n-well above `V_dd`).
    pub fn natural_pmos() -> Self {
        BodyEffect {
            vt_natural: 0.12,
            gamma: 0.45,
            phi_2f: 0.70,
            max_bias: 5.0,
        }
    }

    /// Threshold magnitude at reverse body bias `v_sb ≥ 0` volts.
    ///
    /// # Panics
    ///
    /// Panics if `v_sb` is negative (forward bias is outside the model).
    pub fn vt_at(&self, v_sb: f64) -> f64 {
        assert!(v_sb >= 0.0, "reverse bias must be non-negative");
        self.vt_natural + self.gamma * ((self.phi_2f + v_sb).sqrt() - self.phi_2f.sqrt())
    }

    /// Reverse bias (volts) required to realize `vt_target`.
    ///
    /// # Errors
    ///
    /// [`BiasError::BelowNatural`] if the target is below the natural
    /// threshold, [`BiasError::ExceedsLimit`] if the junction-safe limit
    /// would be exceeded.
    pub fn bias_for(&self, vt_target: f64) -> Result<f64, BiasError> {
        if vt_target < self.vt_natural - 1e-12 {
            return Err(BiasError::BelowNatural {
                target: vt_target,
                natural: self.vt_natural,
            });
        }
        let delta = (vt_target - self.vt_natural).max(0.0);
        let root = delta / self.gamma + self.phi_2f.sqrt();
        let bias = root * root - self.phi_2f;
        if bias > self.max_bias {
            return Err(BiasError::ExceedsLimit {
                required: bias,
                limit: self.max_bias,
            });
        }
        Ok(bias.max(0.0))
    }

    /// Largest threshold reachable within the junction-safe bias limit.
    pub fn max_vt(&self) -> f64 {
        self.vt_at(self.max_bias)
    }
}

/// The static rail plan of Figure 1: substrate and n-well voltages that
/// realize one optimized threshold pair on natural devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasPlan {
    /// The realized threshold magnitude, volts.
    pub vt: f64,
    /// p-substrate voltage (≤ 0: reverse bias below ground), volts.
    pub v_substrate: f64,
    /// n-well voltage (≥ `V_dd`: reverse bias above the supply), volts.
    pub v_nwell: f64,
}

impl BiasPlan {
    /// Computes the plan realizing threshold `vt` at supply `vdd` on the
    /// given natural devices.
    ///
    /// # Errors
    ///
    /// Propagates [`BiasError`] from either polarity.
    pub fn for_threshold(
        vt: f64,
        vdd: f64,
        nmos: &BodyEffect,
        pmos: &BodyEffect,
    ) -> Result<Self, BiasError> {
        let bias_n = nmos.bias_for(vt)?;
        let bias_p = pmos.bias_for(vt)?;
        Ok(BiasPlan {
            vt,
            v_substrate: -bias_n,
            v_nwell: vdd + bias_p,
        })
    }
}

impl fmt::Display for BiasPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Vt = {:.0} mV: V_substrate = {:.2} V, V_nwell = {:.2} V",
            self.vt * 1e3,
            self.v_substrate,
            self.v_nwell
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bias_gives_natural_threshold() {
        let n = BodyEffect::natural_nmos();
        assert!((n.vt_at(0.0) - n.vt_natural).abs() < 1e-15);
    }

    #[test]
    fn threshold_rises_sublinearly_with_bias() {
        let n = BodyEffect::natural_nmos();
        let d1 = n.vt_at(1.0) - n.vt_at(0.0);
        let d2 = n.vt_at(2.0) - n.vt_at(1.0);
        assert!(d1 > d2, "body effect must saturate: {d1} vs {d2}");
        assert!(d1 > 0.0 && d2 > 0.0);
    }

    #[test]
    fn bias_for_round_trips() {
        let n = BodyEffect::natural_nmos();
        for vt in [0.10, 0.15, 0.20, 0.30, 0.45] {
            let b = n.bias_for(vt).unwrap();
            assert!((n.vt_at(b) - vt).abs() < 1e-12, "vt = {vt}");
        }
    }

    #[test]
    fn optimizer_range_is_realizable() {
        // The joint optimizer returns 150-350 mV thresholds; all must be
        // reachable with small (sub-2 V) static biases.
        let n = BodyEffect::natural_nmos();
        let p = BodyEffect::natural_pmos();
        for vt in [0.15, 0.20, 0.25, 0.30, 0.35] {
            let bn = n.bias_for(vt).unwrap();
            let bp = p.bias_for(vt).unwrap();
            assert!(bn < 2.0, "vt {vt}: nmos bias {bn}");
            assert!(bp < 2.0, "vt {vt}: pmos bias {bp}");
        }
    }

    #[test]
    fn below_natural_is_rejected() {
        let n = BodyEffect::natural_nmos();
        assert!(matches!(
            n.bias_for(0.05),
            Err(BiasError::BelowNatural { .. })
        ));
    }

    #[test]
    fn excessive_target_is_rejected() {
        let n = BodyEffect::natural_nmos();
        let too_high = n.max_vt() + 0.05;
        assert!(matches!(
            n.bias_for(too_high),
            Err(BiasError::ExceedsLimit { .. })
        ));
    }

    #[test]
    fn plan_places_rails_outside_the_supply() {
        let plan = BiasPlan::for_threshold(
            0.23,
            0.9,
            &BodyEffect::natural_nmos(),
            &BodyEffect::natural_pmos(),
        )
        .unwrap();
        assert!(plan.v_substrate < 0.0);
        assert!(plan.v_nwell > 0.9);
        assert!(!plan.to_string().is_empty());
    }

    #[test]
    fn errors_display() {
        let n = BodyEffect::natural_nmos();
        assert!(!n.bias_for(0.01).unwrap_err().to_string().is_empty());
    }
}
