//! Full `I_D(V_gs, V_ds)` device evaluation for transient simulation.

use crate::tech::Technology;

/// Channel polarity of a [`Mosfet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosfetPolarity {
    /// N-channel device (pull-down network).
    Nmos,
    /// P-channel device (pull-up network).
    Pmos,
}

/// A single MOSFET instance for the numerical transient simulator.
///
/// The model is the alpha-power law (Sakurai–Newton) with the transregional
/// softplus overdrive from [`Technology::overdrive`], a square-law triode
/// region below the saturation drain voltage, and the `1 − exp(−V_ds/v_T)`
/// subthreshold drain-saturation factor. PMOS devices are handled by
/// symmetry (voltages mirrored about the source, drive scaled by the β
/// mobility-compensation ratio built into the width).
///
/// # Example
///
/// ```
/// use minpower_device::{Mosfet, MosfetPolarity, Technology};
/// let tech = Technology::dac97();
/// let m = Mosfet::new(MosfetPolarity::Nmos, 2.0, 0.4);
/// let sat = m.current(&tech, 2.0, 2.0);
/// let lin = m.current(&tech, 2.0, 0.05);
/// assert!(sat > lin && lin > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    polarity: MosfetPolarity,
    width: f64,
    v_t: f64,
}

impl Mosfet {
    /// Creates a device of the given polarity, width (feature widths), and
    /// threshold-voltage magnitude (volts, positive for both polarities).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive or `v_t` is negative.
    pub fn new(polarity: MosfetPolarity, width: f64, v_t: f64) -> Self {
        assert!(width > 0.0, "device width must be positive");
        assert!(v_t >= 0.0, "threshold magnitude must be non-negative");
        Mosfet {
            polarity,
            width,
            v_t,
        }
    }

    /// The device polarity.
    pub fn polarity(&self) -> MosfetPolarity {
        self.polarity
    }

    /// The device width in feature widths.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The threshold-voltage magnitude in volts.
    pub fn v_t(&self) -> f64 {
        self.v_t
    }

    /// Drain current in amperes, positive when the device conducts from
    /// drain to source (discharging its drain node for NMOS, charging it
    /// for PMOS).
    ///
    /// For NMOS, `v_gs`/`v_ds` are gate/drain voltages relative to the
    /// source; for PMOS pass the magnitudes `V_sg`/`V_sd` (source relative
    /// to gate/drain) — the polarity only selects which network the device
    /// belongs to, the electrical model is symmetric.
    pub fn current(&self, tech: &Technology, v_gs: f64, v_ds: f64) -> f64 {
        if v_ds <= 0.0 {
            return 0.0;
        }
        let i_sat = tech.drive_current(self.width, v_gs, self.v_t);
        let od = tech.overdrive(v_gs, self.v_t);
        // Saturation drain voltage from the alpha-power law: scales as
        // overdrive^(alpha/2), anchored to equal the overdrive itself at
        // 1 V of overdrive (the classical long-channel pinch-off limit).
        let v_dsat = od.powf(tech.alpha / 2.0).max(1e-9);
        let v_th = tech.v_thermal();
        // Drain factor: the triode parabola governs strong inversion, the
        // exponential factor governs subthreshold drain saturation; both
        // rise monotonically from 0 at v_ds = 0 to 1 in saturation.
        let x = (v_ds / v_dsat).min(1.0);
        let triode = (x * (2.0 - x)).min(1.0);
        let sub = 1.0 - (-v_ds / v_th).exp();
        // The off-state floor keeps the transient simulator's leakage
        // consistent with the closed-form `Technology::off_current` the
        // energy model integrates (the channel term alone under-predicts
        // deep-subthreshold conduction because its swing is steepened by
        // the alpha exponent).
        (i_sat * triode * sub).max(self.leakage(tech, v_ds))
    }

    /// Leakage current in amperes with the gate off (`v_gs = 0`) and the
    /// full `v_ds` across the device.
    pub fn leakage(&self, tech: &Technology, v_ds: f64) -> f64 {
        if v_ds <= 0.0 {
            return 0.0;
        }
        tech.off_current(self.width, self.v_t) * (1.0 - (-v_ds / tech.v_thermal()).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::dac97()
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = Mosfet::new(MosfetPolarity::Nmos, 1.0, 0.5);
        assert_eq!(m.current(&tech(), 3.3, 0.0), 0.0);
        assert_eq!(m.current(&tech(), 3.3, -0.5), 0.0);
    }

    #[test]
    fn saturation_current_matches_drive_law() {
        let t = tech();
        let m = Mosfet::new(MosfetPolarity::Nmos, 3.0, 0.5);
        let i = m.current(&t, 3.3, 3.3);
        let expect = t.drive_current(3.0, 3.3, 0.5);
        assert!(
            (i - expect).abs() / expect < 1e-6,
            "i = {i}, expect = {expect}"
        );
    }

    #[test]
    fn current_monotone_in_vds_up_to_saturation() {
        let t = tech();
        let m = Mosfet::new(MosfetPolarity::Nmos, 1.0, 0.5);
        let mut prev = 0.0;
        for step in 1..=33 {
            let v_ds = step as f64 * 0.1;
            let i = m.current(&t, 3.3, v_ds);
            assert!(i >= prev - 1e-15, "non-monotone at v_ds = {v_ds}");
            prev = i;
        }
    }

    #[test]
    fn current_monotone_in_vgs() {
        let t = tech();
        let m = Mosfet::new(MosfetPolarity::Nmos, 1.0, 0.5);
        let lo = m.current(&t, 1.0, 2.0);
        let hi = m.current(&t, 2.0, 2.0);
        assert!(hi > lo);
    }

    #[test]
    fn subthreshold_conduction_is_nonzero() {
        let t = tech();
        let m = Mosfet::new(MosfetPolarity::Nmos, 1.0, 0.5);
        // Gate 200 mV below threshold still conducts (transregional).
        let i = m.current(&t, 0.3, 0.3);
        assert!(i > 0.0);
        assert!(i < m.current(&t, 0.7, 0.3));
    }

    #[test]
    fn leakage_saturates_with_vds() {
        let t = tech();
        let m = Mosfet::new(MosfetPolarity::Nmos, 1.0, 0.4);
        let near = m.leakage(&t, 3.0 * t.v_thermal());
        let far = m.leakage(&t, 3.3);
        assert!(far > near);
        assert!((far - t.off_current(1.0, 0.4)).abs() / far < 1e-3);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = Mosfet::new(MosfetPolarity::Pmos, 0.0, 0.4);
    }

    #[test]
    fn accessors() {
        let m = Mosfet::new(MosfetPolarity::Pmos, 2.5, 0.45);
        assert_eq!(m.polarity(), MosfetPolarity::Pmos);
        assert_eq!(m.width(), 2.5);
        assert_eq!(m.v_t(), 0.45);
    }
}
