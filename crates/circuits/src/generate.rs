//! Seeded synthesis of ISCAS-like random logic networks.

use minpower_engine::SplitMix64;
use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

/// Why a [`BenchmarkSpec`] cannot be realized as a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// The spec asked for a zero logic depth; at least one level of logic
    /// is required.
    ZeroDepth,
    /// Fewer gates than levels: every level needs at least one gate for
    /// the requested depth to be realized.
    TooFewGates {
        /// Requested logic gate count.
        gates: usize,
        /// Requested logic depth.
        depth: usize,
    },
    /// The spec asked for zero primary inputs; level-1 gates would have
    /// nothing to read.
    NoInputs,
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::ZeroDepth => write!(f, "depth must be at least 1"),
            GenerateError::TooFewGates { gates, depth } => write!(
                f,
                "need at least one gate per level ({gates} gates, depth {depth})"
            ),
            GenerateError::NoInputs => write!(f, "need at least one primary input"),
        }
    }
}

impl std::error::Error for GenerateError {}

/// Prescription for a synthetic benchmark circuit.
///
/// The generator builds the network level by level: every gate at level
/// `L` takes at least one fanin from level `L − 1` (so the realized logic
/// depth equals `depth` exactly) and the rest from anywhere below, giving
/// the reconvergent, shared-fanout structure of real random logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Circuit name (used as the netlist name).
    pub name: String,
    /// Number of logic gates to generate.
    pub gates: usize,
    /// Number of primary inputs (including cut flip-flop outputs).
    pub inputs: usize,
    /// Minimum number of primary outputs.
    pub outputs: usize,
    /// Exact logic depth of the generated network.
    pub depth: usize,
    /// PRNG seed; equal specs generate identical netlists.
    pub seed: u64,
}

impl BenchmarkSpec {
    /// Creates a spec with a seed derived from the name.
    pub fn new(name: &str, gates: usize, inputs: usize, outputs: usize, depth: usize) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        BenchmarkSpec {
            name: name.to_string(),
            gates,
            inputs,
            outputs,
            depth,
            seed,
        }
    }

    /// A Rent's-rule-shaped spec for large synthetic netlists: terminal
    /// count follows `T = t · G^p` with the classic random-logic
    /// coefficients `t = 4`, `p = 0.6`, split two-thirds inputs to
    /// one-third outputs, and logic depth grows logarithmically in the
    /// gate count (`≈ 1.9 · ln G`) as mapped random logic does. This is
    /// the generator mode used to scale evaluation-kernel benchmarks to
    /// 10⁵–10⁶ gates with realistic fanout sharing and I/O pressure.
    ///
    /// Deterministic for a given `(name, gates)`; equal specs generate
    /// identical netlists.
    ///
    /// # Example
    ///
    /// ```
    /// use minpower_circuits::{synthesize, BenchmarkSpec};
    /// let spec = BenchmarkSpec::rent("r2k", 2000);
    /// let n = synthesize(&spec).unwrap();
    /// assert_eq!(n.logic_gate_count(), 2000);
    /// ```
    pub fn rent(name: &str, gates: usize) -> Self {
        let g = gates.max(1) as f64;
        let terminals = 4.0 * g.powf(0.6);
        let inputs = ((terminals * 2.0 / 3.0).ceil() as usize).max(1);
        let outputs = ((terminals / 3.0).ceil() as usize).max(1);
        let depth = ((1.9 * g.ln()).round() as usize).clamp(4, gates.max(4));
        BenchmarkSpec::new(name, gates, inputs, outputs, depth)
    }

    /// Checks that the spec can be realized, returning the first
    /// violation.
    ///
    /// # Errors
    ///
    /// The corresponding [`GenerateError`] for a zero depth, fewer gates
    /// than levels, or zero inputs.
    pub fn validate(&self) -> Result<(), GenerateError> {
        if self.depth < 1 {
            return Err(GenerateError::ZeroDepth);
        }
        if self.gates < self.depth {
            return Err(GenerateError::TooFewGates {
                gates: self.gates,
                depth: self.depth,
            });
        }
        if self.inputs < 1 {
            return Err(GenerateError::NoInputs);
        }
        Ok(())
    }
}

/// Generates the netlist described by `spec`.
///
/// Deterministic: the same spec always yields the same netlist.
///
/// # Errors
///
/// [`GenerateError`] if the spec is degenerate (`gates < depth`, no
/// inputs, or zero depth) — such shapes cannot be realized.
///
/// # Example
///
/// ```
/// use minpower_circuits::{synthesize, BenchmarkSpec};
/// let spec = BenchmarkSpec::new("demo", 50, 8, 6, 7);
/// let n = synthesize(&spec).unwrap();
/// assert_eq!(n.logic_gate_count(), 50);
/// assert_eq!(n.depth(), 7);
/// ```
pub fn synthesize(spec: &BenchmarkSpec) -> Result<Netlist, GenerateError> {
    spec.validate()?;

    let mut rng = SplitMix64::new(spec.seed);
    let mut b = NetlistBuilder::new(&spec.name);

    let mut input_names = Vec::with_capacity(spec.inputs);
    for i in 0..spec.inputs {
        let name = format!("I{i}");
        b.input(&name).expect("generated names are unique");
        input_names.push(name);
    }

    // Distribute gates over levels: one guaranteed per level, remainder
    // spread with a bulge in the middle (like mapped random logic).
    let mut per_level = vec![1usize; spec.depth];
    for _ in 0..spec.gates - spec.depth {
        let l = (rng.next_f64() * rng.next_f64() * spec.depth as f64) as usize;
        // Bias toward earlier-middle levels.
        per_level[l.min(spec.depth - 1)] += 1;
    }

    // names_at[0] = primary inputs; names_at[L] = gates of level L.
    let mut names_at: Vec<Vec<String>> = vec![input_names];
    let mut below: Vec<String> = names_at[0].clone();
    let mut referenced: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut gate_no = 0usize;
    for level in 1..=spec.depth {
        let mut this_level = Vec::with_capacity(per_level[level - 1]);
        for _ in 0..per_level[level - 1] {
            let name = format!("G{gate_no}");
            gate_no += 1;
            let kind = pick_kind(&mut rng);
            let arity = if kind.is_unary() {
                1
            } else {
                // Mostly 2-input, some 3- and 4-input gates.
                match rng.range_usize(10) {
                    0..=6 => 2,
                    7..=8 => 3,
                    _ => 4,
                }
            };
            let mut fanin: Vec<String> = Vec::with_capacity(arity);
            // First fanin from the previous level pins the gate's depth.
            let prev = &names_at[level - 1];
            fanin.push(prev[rng.range_usize(prev.len())].clone());
            while fanin.len() < arity {
                let candidate = &below[rng.range_usize(below.len())];
                if !fanin.contains(candidate) {
                    fanin.push(candidate.clone());
                }
                if below.len() <= arity {
                    break;
                }
            }
            let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
            b.gate(&name, kind, &refs)
                .expect("generated wiring is valid");
            referenced.extend(fanin.iter().cloned());
            this_level.push(name);
        }
        below.extend(this_level.iter().cloned());
        names_at.push(this_level);
    }

    // Outputs: every dangling gate becomes an output (no dead logic),
    // topped up with random deep gates until the requested count.
    let dangling: Vec<String> = names_at
        .iter()
        .skip(1)
        .flatten()
        .filter(|n| !referenced.contains(*n))
        .cloned()
        .collect();
    let mut out_count = 0usize;
    for name in &dangling {
        b.output(name).expect("dangling gates exist");
        out_count += 1;
    }
    let deepest = &names_at[spec.depth];
    let mut guard = 0;
    while out_count < spec.outputs && guard < 10 * spec.outputs {
        guard += 1;
        let level = spec.depth / 2 + 1 + rng.range_usize(spec.depth - spec.depth / 2);
        let pool = &names_at[level];
        let name = &pool[rng.range_usize(pool.len())];
        b.output(name).expect("name exists");
        out_count += 1;
    }
    // Make sure at least one deepest gate is an output so depth is
    // realized on an input→output path.
    b.output(&deepest[0]).expect("deepest gate exists");

    Ok(b.finish().expect("generated netlists are acyclic"))
}

fn pick_kind(rng: &mut SplitMix64) -> GateKind {
    match rng.range_usize(100) {
        0..=29 => GateKind::Nand,
        30..=49 => GateKind::Nor,
        50..=63 => GateKind::And,
        64..=77 => GateKind::Or,
        78..=87 => GateKind::Not,
        88..=93 => GateKind::Xor,
        94..=96 => GateKind::Xnor,
        _ => GateKind::Buf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec::new("t", 120, 17, 20, 9)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synthesize(&spec()).unwrap();
        let b = synthesize(&spec()).unwrap();
        assert_eq!(a.gate_count(), b.gate_count());
        assert_eq!(
            minpower_netlist::bench::write(&a),
            minpower_netlist::bench::write(&b)
        );
    }

    #[test]
    fn realizes_requested_shape() {
        let n = synthesize(&spec()).unwrap();
        assert_eq!(n.logic_gate_count(), 120);
        assert_eq!(n.inputs().len(), 17);
        assert_eq!(n.depth(), 9);
        assert!(n.outputs().len() >= 20);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = spec();
        s2.seed ^= 1;
        let a = synthesize(&spec()).unwrap();
        let b = synthesize(&s2).unwrap();
        assert_ne!(
            minpower_netlist::bench::write(&a),
            minpower_netlist::bench::write(&b)
        );
    }

    #[test]
    fn no_dead_logic() {
        let n = synthesize(&spec()).unwrap();
        // Every logic gate either fans out or is a primary output.
        for (i, g) in n.gates().iter().enumerate() {
            if g.fanin().is_empty() {
                continue; // primary inputs may legitimately go unused
            }
            let id = minpower_netlist::GateId::new(i);
            assert!(
                !n.fanout(id).is_empty() || n.is_output(id),
                "gate {} is dead",
                g.name()
            );
        }
    }

    #[test]
    fn round_trips_through_bench_format() {
        let n = synthesize(&spec()).unwrap();
        let text = minpower_netlist::bench::write(&n);
        let back = minpower_netlist::bench::parse(n.name(), &text).unwrap();
        assert_eq!(back.gate_count(), n.gate_count());
        assert_eq!(back.depth(), n.depth());
    }

    #[test]
    fn degenerate_specs_report_typed_errors() {
        assert_eq!(
            synthesize(&BenchmarkSpec::new("bad", 3, 2, 1, 10)).unwrap_err(),
            GenerateError::TooFewGates {
                gates: 3,
                depth: 10
            }
        );
        assert_eq!(
            synthesize(&BenchmarkSpec::new("bad", 3, 2, 1, 0)).unwrap_err(),
            GenerateError::ZeroDepth
        );
        assert_eq!(
            synthesize(&BenchmarkSpec::new("bad", 3, 0, 1, 2)).unwrap_err(),
            GenerateError::NoInputs
        );
        // The messages survive in the Display impl for CLI surfaces.
        assert!(GenerateError::ZeroDepth.to_string().contains("depth"));
    }

    #[test]
    fn rent_spec_scales_terminals_sublinearly() {
        let small = BenchmarkSpec::rent("r", 1000);
        let large = BenchmarkSpec::rent("r", 100_000);
        assert!(small.validate().is_ok() && large.validate().is_ok());
        // 100x the gates, well under 100x the terminals (p = 0.6).
        let t = |s: &BenchmarkSpec| s.inputs + s.outputs;
        assert!(t(&large) < 20 * t(&small));
        assert!(large.depth > small.depth);
        let n = synthesize(&BenchmarkSpec::rent("r", 1500)).unwrap();
        assert_eq!(n.logic_gate_count(), 1500);
        assert_eq!(n.depth(), BenchmarkSpec::rent("r", 1500).depth);
    }
}
