//! Benchmark circuits for the DAC'97 reproduction.
//!
//! The paper evaluates on ISCAS-89 sequential benchmarks, analyzed as
//! combinational cores (flip-flops cut into pseudo inputs/outputs). The
//! original netlists are not distributable inside this repository, so this
//! crate provides, in decreasing order of fidelity:
//!
//! 1. the genuine **s27** netlist (tiny and long-since published verbatim
//!    in textbooks), embedded as `.bench` text;
//! 2. a **loader** for real `.bench` files ([`load_bench_file`]) — drop
//!    the ISCAS-89 suite next to the repository and the experiment
//!    harness will pick the real circuits up by name;
//! 3. a seeded **synthetic generator** ([`synthesize`]) producing random
//!    logic networks with prescribed gate count, input/output count, and
//!    logic depth, used as stand-ins at the published sizes
//!    ([`paper_suite`]). The optimizer consumes only DAG structure and
//!    activity, so size-matched random logic exercises identical code
//!    paths (see DESIGN.md, "Substitutions").
//!
//! # Example
//!
//! ```
//! let s27 = minpower_circuits::s27();
//! assert_eq!(s27.logic_gate_count(), 10);
//!
//! let suite = minpower_circuits::paper_suite();
//! assert!(suite.iter().any(|c| c.name() == "s298"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
mod generate;
mod suite;

pub use generate::{synthesize, BenchmarkSpec, GenerateError};
pub use suite::{c17, circuit, load_bench_file, paper_suite, s27, spec_by_name, specs};
