//! Canonical parametric circuit structures.
//!
//! Besides the ISCAS-style random logic the paper evaluates on, the
//! ablation studies want circuits with *known extreme* structure: pure
//! chains (all delay, no fanout), balanced trees (logarithmic depth,
//! exponential width), and array multiplg-like meshes (reconvergence and
//! long/short path mixtures). These generators build them at any size.

use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

/// A chain of `len` inverters — the canonical critical-path-only circuit
/// (every gate's budget must sum exactly to the cycle time).
///
/// # Panics
///
/// Panics if `len` is zero.
///
/// # Example
///
/// ```
/// let c = minpower_circuits::canonical::inverter_chain(10);
/// assert_eq!(c.depth(), 10);
/// assert_eq!(c.logic_gate_count(), 10);
/// ```
pub fn inverter_chain(len: usize) -> Netlist {
    assert!(len > 0, "chain needs at least one stage");
    let mut b = NetlistBuilder::new(format!("chain{len}"));
    b.input("in").expect("fresh builder");
    let mut prev = "in".to_string();
    for i in 0..len {
        let name = format!("n{i}");
        b.gate(&name, GateKind::Not, &[&prev]).expect("valid chain");
        prev = name;
    }
    b.output(&prev).expect("last stage exists");
    b.finish().expect("chains are acyclic")
}

/// A balanced binary reduction tree of `leaves` inputs (power of two)
/// with alternating NAND/NOR levels — maximal width, logarithmic depth.
///
/// # Panics
///
/// Panics if `leaves` is not a power of two or is less than 2.
///
/// # Example
///
/// ```
/// let t = minpower_circuits::canonical::reduction_tree(16);
/// assert_eq!(t.depth(), 4);
/// assert_eq!(t.logic_gate_count(), 15);
/// ```
pub fn reduction_tree(leaves: usize) -> Netlist {
    assert!(
        leaves >= 2 && leaves.is_power_of_two(),
        "leaves must be a power of two, at least 2"
    );
    let mut b = NetlistBuilder::new(format!("tree{leaves}"));
    let mut level: Vec<String> = (0..leaves)
        .map(|i| {
            let name = format!("in{i}");
            b.input(&name).expect("fresh names");
            name
        })
        .collect();
    let mut depth = 0usize;
    let mut counter = 0usize;
    while level.len() > 1 {
        let kind = if depth.is_multiple_of(2) {
            GateKind::Nand
        } else {
            GateKind::Nor
        };
        depth += 1;
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let name = format!("t{counter}");
            counter += 1;
            b.gate(&name, kind, &[&pair[0], &pair[1]])
                .expect("valid tree");
            next.push(name);
        }
        level = next;
    }
    b.output(&level[0]).expect("root exists");
    b.finish().expect("trees are acyclic")
}

/// An `n × n` carry-save-like mesh: cell `(i, j)` combines its west and
/// north neighbors — dense reconvergent fanout with a long diagonal
/// critical path, the structure of array multipliers.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Example
///
/// ```
/// let m = minpower_circuits::canonical::mesh(4);
/// assert_eq!(m.logic_gate_count(), 16);
/// assert_eq!(m.depth(), 7); // 2n - 1 diagonal levels
/// ```
pub fn mesh(n: usize) -> Netlist {
    assert!(n > 0, "mesh needs at least one cell");
    let mut b = NetlistBuilder::new(format!("mesh{n}"));
    for i in 0..n {
        b.input(&format!("r{i}")).expect("fresh names");
        b.input(&format!("c{i}")).expect("fresh names");
    }
    for i in 0..n {
        for j in 0..n {
            let west = if j == 0 {
                format!("r{i}")
            } else {
                format!("m{}_{}", i, j - 1)
            };
            let north = if i == 0 {
                format!("c{j}")
            } else {
                format!("m{}_{}", i - 1, j)
            };
            let kind = if (i + j) % 2 == 0 {
                GateKind::Nand
            } else {
                GateKind::Nor
            };
            b.gate(&format!("m{i}_{j}"), kind, &[&west, &north])
                .expect("valid mesh");
        }
    }
    for j in 0..n {
        b.output(&format!("m{}_{}", n - 1, j)).expect("bottom row");
    }
    for i in 0..n {
        b.output(&format!("m{}_{}", i, n - 1)).expect("east column");
    }
    b.finish().expect("meshes are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let c = inverter_chain(7);
        assert_eq!(c.depth(), 7);
        assert_eq!(c.inputs().len(), 1);
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn tree_shape() {
        let t = reduction_tree(32);
        assert_eq!(t.depth(), 5);
        assert_eq!(t.logic_gate_count(), 31);
        assert_eq!(t.inputs().len(), 32);
    }

    #[test]
    fn mesh_shape_and_fanout() {
        let m = mesh(5);
        assert_eq!(m.logic_gate_count(), 25);
        assert_eq!(m.depth(), 9);
        // Interior cells drive two neighbors.
        let mid = m.find("m2_2").unwrap();
        assert_eq!(m.fanout(mid).len(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_tree_rejected() {
        let _ = reduction_tree(12);
    }

    #[test]
    fn all_three_evaluate() {
        // Smoke: evaluation works and is deterministic.
        let c = inverter_chain(3);
        let v = c.evaluate(&[true]);
        let y = c.find("n2").unwrap();
        assert!(!v[y.index()]); // odd inversions

        let t = reduction_tree(4);
        let inputs = vec![true; 4];
        let _ = t.evaluate(&inputs);

        let m = mesh(3);
        let inputs = vec![false; 6];
        let _ = m.evaluate(&inputs);
    }
}
