//! The paper's benchmark suite: genuine s27 plus size-matched synthetic
//! stand-ins for the other ISCAS-89 circuits.

use std::path::Path;

use minpower_netlist::{bench, Netlist, NetlistError};

use crate::generate::{synthesize, BenchmarkSpec};

/// The genuine ISCAS-89 s27 netlist (4 PI, 1 PO, 3 DFF, 10 gates).
const S27_BENCH: &str = "\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// The genuine ISCAS-85 c17 netlist (5 PI, 2 PO, 6 NAND2 gates) — the
/// smallest combinational benchmark, handy for exact-analysis tests.
const C17_BENCH: &str = "\
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// The genuine ISCAS-85 c17 benchmark.
///
/// # Example
///
/// ```
/// let n = minpower_circuits::c17();
/// assert_eq!(n.logic_gate_count(), 6);
/// assert_eq!(n.inputs().len(), 5);
/// ```
pub fn c17() -> Netlist {
    bench::parse("c17", C17_BENCH).expect("embedded c17 is valid")
}

/// The genuine s27 combinational core (flip-flops cut).
///
/// # Example
///
/// ```
/// let n = minpower_circuits::s27();
/// assert_eq!(n.logic_gate_count(), 10);
/// assert_eq!(n.flip_flop_count(), 3);
/// ```
pub fn s27() -> Netlist {
    bench::parse("s27", S27_BENCH).expect("embedded s27 is valid")
}

/// Specs for the synthetic stand-ins, sized to the published ISCAS-89
/// combinational statistics (gates; PI + cut flip-flops as inputs;
/// PO + flip-flop data pins as outputs; representative logic depth).
pub fn specs() -> Vec<BenchmarkSpec> {
    // Depths are kept in the 8–12 range: the paper's 300 MHz constraint
    // (3.33 ns) must be *meetable* at the fixed-Vt corner for Table 1 to
    // exist, which bounds the stage count; the published combinational
    // depths of the deeper circuits assume a faster process than the
    // calibrated dac97() technology.
    vec![
        BenchmarkSpec::new("s208", 104, 18, 9, 9),
        BenchmarkSpec::new("s298", 119, 17, 20, 9),
        BenchmarkSpec::new("s344", 160, 24, 26, 11),
        BenchmarkSpec::new("s382", 158, 24, 27, 9),
        BenchmarkSpec::new("s400", 162, 24, 27, 9),
        BenchmarkSpec::new("s444", 181, 24, 27, 10),
        BenchmarkSpec::new("s526", 193, 24, 27, 9),
        BenchmarkSpec::new("s713", 393, 54, 42, 12),
    ]
}

/// Looks up the spec for a named circuit, if it is part of the suite.
pub fn spec_by_name(name: &str) -> Option<BenchmarkSpec> {
    specs().into_iter().find(|s| s.name == name)
}

/// Materializes a suite circuit by name: the genuine `s27`, or the
/// synthetic stand-in for any other suite member. Returns `None` for
/// names outside the suite.
///
/// # Example
///
/// ```
/// let n = minpower_circuits::circuit("s298").expect("in suite");
/// assert_eq!(n.name(), "s298");
/// assert!(minpower_circuits::circuit("c6288").is_none());
/// ```
pub fn circuit(name: &str) -> Option<Netlist> {
    if name == "s27" {
        Some(s27())
    } else {
        spec_by_name(name).map(|spec| synthesize(&spec).expect("suite specs are valid"))
    }
}

/// The full benchmark suite of the paper's tables: genuine s27 followed
/// by the synthetic stand-ins, in ascending size order.
pub fn paper_suite() -> Vec<Netlist> {
    let mut suite = vec![s27()];
    suite.extend(
        specs()
            .iter()
            .map(|s| synthesize(s).expect("suite specs are valid")),
    );
    suite
}

/// Loads a real `.bench` file from disk (e.g. an original ISCAS-89
/// netlist), naming the circuit after the file stem.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] (with the offending line) for
/// malformed files, or the underlying structural error; I/O failures are
/// reported as a parse error at line 0 carrying the OS message.
pub fn load_bench_file(path: &Path) -> Result<Netlist, NetlistError> {
    let text = std::fs::read_to_string(path).map_err(|e| NetlistError::Parse {
        line: 0,
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("bench");
    bench::parse(name, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_matches_published_statistics() {
        let n = s27();
        // 4 PI + 3 cut flip-flops = 7 combinational inputs.
        assert_eq!(n.inputs().len(), 7);
        // 1 PO + 3 flip-flop data pins = 4 combinational outputs.
        assert_eq!(n.outputs().len(), 4);
        assert_eq!(n.logic_gate_count(), 10);
        assert_eq!(n.flip_flop_count(), 3);
        assert!(n.depth() >= 3);
    }

    #[test]
    fn suite_has_nine_distinct_circuits() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 9);
        assert_eq!(suite[0].name(), "s27");
        let mut names: Vec<&str> = suite.iter().map(|n| n.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9, "duplicate circuit names");
        // s713 is the largest, roughly 4× s208 — the suite spans sizes.
        let s713 = suite.iter().find(|n| n.name() == "s713").unwrap();
        let s208 = suite.iter().find(|n| n.name() == "s208").unwrap();
        assert!(s713.logic_gate_count() > 3 * s208.logic_gate_count());
    }

    #[test]
    fn stand_ins_match_their_specs() {
        for spec in specs() {
            let n = synthesize(&spec).unwrap();
            assert_eq!(n.logic_gate_count(), spec.gates, "{}", spec.name);
            assert_eq!(n.inputs().len(), spec.inputs, "{}", spec.name);
            assert_eq!(n.depth(), spec.depth, "{}", spec.name);
        }
    }

    #[test]
    fn spec_lookup() {
        assert!(spec_by_name("s298").is_some());
        assert!(spec_by_name("c6288").is_none());
    }

    #[test]
    fn load_bench_file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("minpower_s27_test.bench");
        std::fs::write(&path, S27_BENCH).unwrap();
        let n = load_bench_file(&path).unwrap();
        assert_eq!(n.logic_gate_count(), 10);
        assert_eq!(n.name(), "minpower_s27_test");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_bench_file(Path::new("/nonexistent/file.bench")).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 0, .. }));
    }
}
