//! Structural netlist transformations.
//!
//! Real benchmark netlists arrive in shapes the optimizer's models handle
//! poorly or not at all: gates with very wide fanin (the series-stack
//! derating of Eq. A3 assumes modest stacks), enormous fanout nets, and
//! logic that drives nothing. This module provides the standard
//! preprocessing passes —
//!
//! * [`sweep_dead_logic`] — remove gates that reach no primary output;
//! * [`decompose_wide_gates`] — rewrite gates above a fanin limit into
//!   balanced trees of narrower gates with identical function;
//! * [`buffer_high_fanout`] — split nets above a fanout limit through
//!   buffer trees;
//!
//! — plus [`equivalent_by_simulation`], a randomized functional
//! equivalence check used to verify that every pass preserves the
//! network's input/output behavior.

use std::collections::HashMap;

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::gate::{GateId, GateKind};
use crate::graph::Netlist;

/// Removes every gate that cannot reach a primary output.
///
/// Primary inputs are kept even when unused (they are part of the
/// interface). Returns the swept netlist and the number of gates removed.
///
/// # Errors
///
/// Propagates construction errors (none are expected for a valid input).
pub fn sweep_dead_logic(netlist: &Netlist) -> Result<(Netlist, usize), NetlistError> {
    let n = netlist.gate_count();
    let mut live = vec![false; n];
    for &o in netlist.outputs() {
        live[o.index()] = true;
    }
    for &id in netlist.topological_order().iter().rev() {
        if live[id.index()] {
            for &f in netlist.gate(id).fanin() {
                live[f.index()] = true;
            }
        }
    }
    let mut b = NetlistBuilder::new(netlist.name());
    let mut removed = 0;
    for &id in netlist.topological_order() {
        let gate = netlist.gate(id);
        if gate.kind() == GateKind::Input {
            b.input(gate.name())?;
        } else if live[id.index()] {
            let fanin: Vec<&str> = gate
                .fanin()
                .iter()
                .map(|&f| netlist.gate(f).name())
                .collect();
            b.gate(gate.name(), gate.kind(), &fanin)?;
        } else {
            removed += 1;
        }
    }
    for &o in netlist.outputs() {
        b.output(netlist.gate(o).name())?;
    }
    b.record_flip_flops(netlist.flip_flop_count());
    Ok((b.finish()?, removed))
}

/// Rewrites every gate with more than `max_fanin` inputs into a balanced
/// tree of gates with at most `max_fanin` inputs, preserving the logic
/// function (AND/OR trees directly; NAND/NOR as the corresponding tree
/// with an inverting root; XOR/XNOR as parity trees).
///
/// Returns the transformed netlist and the number of gates decomposed.
///
/// # Panics
///
/// Panics if `max_fanin < 2`.
///
/// # Errors
///
/// Propagates construction errors.
pub fn decompose_wide_gates(
    netlist: &Netlist,
    max_fanin: usize,
) -> Result<(Netlist, usize), NetlistError> {
    assert!(max_fanin >= 2, "gates need at least two inputs");
    let mut b = NetlistBuilder::new(netlist.name());
    let mut fresh = 0usize;
    let mut decomposed = 0usize;
    for &id in netlist.topological_order() {
        let gate = netlist.gate(id);
        match gate.kind() {
            GateKind::Input => {
                b.input(gate.name())?;
            }
            _ if gate.fanin_count() <= max_fanin => {
                let fanin: Vec<&str> = gate
                    .fanin()
                    .iter()
                    .map(|&f| netlist.gate(f).name())
                    .collect();
                b.gate(gate.name(), gate.kind(), &fanin)?;
            }
            kind => {
                decomposed += 1;
                // Associative core of the function and whether the root
                // inverts.
                let (core, invert_root) = match kind {
                    GateKind::And => (GateKind::And, false),
                    GateKind::Nand => (GateKind::And, true),
                    GateKind::Or => (GateKind::Or, false),
                    GateKind::Nor => (GateKind::Or, true),
                    GateKind::Xor => (GateKind::Xor, false),
                    GateKind::Xnor => (GateKind::Xor, true),
                    GateKind::Not | GateKind::Buf | GateKind::Input => {
                        unreachable!("unary gates never exceed the fanin limit")
                    }
                };
                // Reduce the fanin list level by level.
                let mut layer: Vec<String> = gate
                    .fanin()
                    .iter()
                    .map(|&f| netlist.gate(f).name().to_string())
                    .collect();
                while layer.len() > max_fanin {
                    let mut next = Vec::new();
                    for chunk in layer.chunks(max_fanin) {
                        if chunk.len() == 1 {
                            next.push(chunk[0].clone());
                            continue;
                        }
                        let name = format!("{}__d{}", gate.name(), fresh);
                        fresh += 1;
                        let refs: Vec<&str> = chunk.iter().map(String::as_str).collect();
                        b.gate(&name, core, &refs)?;
                        next.push(name);
                    }
                    layer = next;
                }
                let root_kind = if invert_root {
                    match core {
                        GateKind::And => GateKind::Nand,
                        GateKind::Or => GateKind::Nor,
                        GateKind::Xor => GateKind::Xnor,
                        _ => unreachable!("core is associative"),
                    }
                } else {
                    core
                };
                let refs: Vec<&str> = layer.iter().map(String::as_str).collect();
                b.gate(gate.name(), root_kind, &refs)?;
            }
        }
    }
    for &o in netlist.outputs() {
        b.output(netlist.gate(o).name())?;
    }
    b.record_flip_flops(netlist.flip_flop_count());
    Ok((b.finish()?, decomposed))
}

/// Splits every net with more than `max_fanout` sinks through a tree of
/// buffers so no net drives more than `max_fanout` loads.
///
/// Returns the transformed netlist and the number of buffers inserted.
///
/// # Panics
///
/// Panics if `max_fanout < 2`.
///
/// # Errors
///
/// Propagates construction errors.
pub fn buffer_high_fanout(
    netlist: &Netlist,
    max_fanout: usize,
) -> Result<(Netlist, usize), NetlistError> {
    assert!(max_fanout >= 2, "need room for at least two sinks");
    // For each driver, assign each of its sink *pins* a net name: either
    // the original net or an inserted buffer.
    let mut b = NetlistBuilder::new(netlist.name());
    let mut inserted = 0usize;
    // pin_net[(driver, sink)] = net name the sink should read.
    let mut pin_net: HashMap<(usize, usize), String> = HashMap::new();

    for &id in netlist.topological_order() {
        let gate = netlist.gate(id);
        // Create this gate first (reading possibly re-routed fanins).
        match gate.kind() {
            GateKind::Input => {
                b.input(gate.name())?;
            }
            kind => {
                let fanin: Vec<String> = gate
                    .fanin()
                    .iter()
                    .map(|&f| {
                        pin_net
                            .get(&(f.index(), id.index()))
                            .cloned()
                            .unwrap_or_else(|| netlist.gate(f).name().to_string())
                    })
                    .collect();
                let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
                b.gate(gate.name(), kind, &refs)?;
            }
        }
        // Then plan its fanout tree if oversubscribed.
        let sinks: Vec<usize> = netlist.fanout(id).iter().map(|s| s.index()).collect();
        if sinks.len() <= max_fanout {
            continue;
        }
        // Plan a balanced buffer tree: leaves serve groups of at most
        // `max_fanout` sinks; each higher level groups the one below by
        // the same factor until the top level fits under the driver.
        let mut counts = vec![sinks.len().div_ceil(max_fanout)];
        while *counts.last().expect("non-empty") > max_fanout {
            let next = counts.last().expect("non-empty").div_ceil(max_fanout);
            counts.push(next);
        }
        // Emit top-down so every buffer's parent already exists.
        let depth = counts.len();
        let mut parent_names: Vec<String> = vec![gate.name().to_string()];
        for lvl in (0..depth).rev() {
            let mut names = Vec::with_capacity(counts[lvl]);
            for k in 0..counts[lvl] {
                let parent = if lvl == depth - 1 {
                    &parent_names[0]
                } else {
                    &parent_names[k / max_fanout]
                };
                let name = format!("{}__b{}_{}", gate.name(), lvl, k);
                b.gate(&name, GateKind::Buf, &[parent])?;
                inserted += 1;
                names.push(name);
            }
            parent_names = names;
        }
        // `parent_names` is now the leaf level, one buffer per sink group.
        for (g, chunk) in sinks.chunks(max_fanout).enumerate() {
            for &s in chunk {
                pin_net.insert((id.index(), s), parent_names[g].clone());
            }
        }
    }
    for &o in netlist.outputs() {
        b.output(netlist.gate(o).name())?;
    }
    b.record_flip_flops(netlist.flip_flop_count());
    Ok((b.finish()?, inserted))
}

/// Randomized functional equivalence check: drives both netlists with the
/// same `vectors` random input assignments (by input **name**) and
/// compares every primary output (by name).
///
/// Returns `false` on any mismatch, including mismatched interfaces.
/// Deterministic for a given `seed`.
pub fn equivalent_by_simulation(a: &Netlist, b: &Netlist, vectors: usize, seed: u64) -> bool {
    let names_a: Vec<&str> = a.inputs().iter().map(|&i| a.gate(i).name()).collect();
    let mut names_b: Vec<&str> = b.inputs().iter().map(|&i| b.gate(i).name()).collect();
    let mut sorted_a = names_a.clone();
    sorted_a.sort_unstable();
    names_b.sort_unstable();
    if sorted_a != names_b {
        return false;
    }
    let out_a: Vec<&str> = a.outputs().iter().map(|&o| a.gate(o).name()).collect();
    let out_b: Vec<&str> = b.outputs().iter().map(|&o| b.gate(o).name()).collect();
    let mut sa = out_a.clone();
    sa.sort_unstable();
    let mut sb = out_b.clone();
    sb.sort_unstable();
    if sa != sb {
        return false;
    }

    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let idx_b: HashMap<&str, usize> = b
        .inputs()
        .iter()
        .enumerate()
        .map(|(k, &i)| (b.gate(i).name(), k))
        .collect();
    for _ in 0..vectors {
        let assign_a: Vec<bool> = (0..names_a.len()).map(|_| next() & 1 == 1).collect();
        let mut assign_b = vec![false; assign_a.len()];
        for (k, name) in names_a.iter().enumerate() {
            assign_b[idx_b[name]] = assign_a[k];
        }
        let va = a.evaluate(&assign_a);
        let vb = b.evaluate(&assign_b);
        for name in &out_a {
            let ga = a.find(name).expect("output exists in a");
            let gb = b.find(name).expect("output exists in b");
            if va[ga.index()] != vb[gb.index()] {
                return false;
            }
        }
    }
    true
}

/// Convenience: does any gate exceed the given fanin?
pub fn max_fanin(netlist: &Netlist) -> usize {
    netlist
        .gates()
        .iter()
        .map(|g| g.fanin_count())
        .max()
        .unwrap_or(0)
}

/// Convenience: the largest electrical fanout in the network.
pub fn max_fanout(netlist: &Netlist) -> usize {
    (0..netlist.gate_count())
        .map(|i| netlist.fanout(GateId::new(i)).len())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn wide() -> Netlist {
        let mut b = NetlistBuilder::new("wide");
        let names: Vec<String> = (0..6).map(|i| format!("i{i}")).collect();
        for n in &names {
            b.input(n).unwrap();
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.gate("and6", GateKind::And, &refs).unwrap();
        b.gate("nor5", GateKind::Nor, &refs[..5]).unwrap();
        b.gate("xor6", GateKind::Xor, &refs).unwrap();
        b.gate("y", GateKind::Nand, &["and6", "nor5"]).unwrap();
        b.output("y").unwrap();
        b.output("xor6").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn decompose_limits_fanin_and_preserves_function() {
        let n = wide();
        let (d, count) = decompose_wide_gates(&n, 2).unwrap();
        assert!(count >= 3);
        assert!(max_fanin(&d) <= 2);
        assert!(equivalent_by_simulation(&n, &d, 300, 7));
    }

    #[test]
    fn decompose_is_identity_when_within_limit() {
        let n = wide();
        let (d, count) = decompose_wide_gates(&n, 8).unwrap();
        assert_eq!(count, 0);
        assert_eq!(d.gate_count(), n.gate_count());
    }

    #[test]
    fn sweep_removes_dead_cone() {
        let mut b = NetlistBuilder::new("dead");
        b.input("a").unwrap();
        b.gate("live", GateKind::Not, &["a"]).unwrap();
        b.gate("dead1", GateKind::Not, &["a"]).unwrap();
        b.gate("dead2", GateKind::Not, &["dead1"]).unwrap();
        b.gate("y", GateKind::Not, &["live"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        let (swept, removed) = sweep_dead_logic(&n).unwrap();
        assert_eq!(removed, 2);
        assert!(swept.find("dead1").is_none());
        assert!(equivalent_by_simulation(&n, &swept, 100, 3));
    }

    #[test]
    fn buffer_splits_large_fanout() {
        let mut b = NetlistBuilder::new("fan");
        b.input("a").unwrap();
        b.gate("drv", GateKind::Not, &["a"]).unwrap();
        for i in 0..9 {
            let s = format!("s{i}");
            b.gate(&s, GateKind::Not, &["drv"]).unwrap();
            b.output(&s).unwrap();
        }
        let n = b.finish().unwrap();
        assert_eq!(max_fanout(&n), 9);
        let (buffered, inserted) = buffer_high_fanout(&n, 4).unwrap();
        assert!(inserted >= 3);
        assert!(
            max_fanout(&buffered) <= 4,
            "max fanout {}",
            max_fanout(&buffered)
        );
        assert!(equivalent_by_simulation(&n, &buffered, 200, 11));
    }

    #[test]
    fn equivalence_detects_differences() {
        let n = wide();
        let mut b = NetlistBuilder::new("other");
        for i in 0..6 {
            b.input(&format!("i{i}")).unwrap();
        }
        // Same interface, different function at output y.
        b.gate("and6", GateKind::And, &["i0", "i1"]).unwrap();
        b.gate("nor5", GateKind::Nor, &["i2", "i3"]).unwrap();
        b.gate("xor6", GateKind::Xor, &["i4", "i5"]).unwrap();
        b.gate("y", GateKind::Nand, &["and6", "nor5"]).unwrap();
        b.output("y").unwrap();
        b.output("xor6").unwrap();
        let other = b.finish().unwrap();
        assert!(!equivalent_by_simulation(&n, &other, 300, 5));
    }

    #[test]
    fn equivalence_rejects_mismatched_interfaces() {
        let n = wide();
        let mut b = NetlistBuilder::new("small");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.output("y").unwrap();
        let other = b.finish().unwrap();
        assert!(!equivalent_by_simulation(&n, &other, 10, 1));
    }
}
