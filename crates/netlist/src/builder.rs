//! Incremental netlist construction.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::gate::{Gate, GateId, GateKind};
use crate::graph::Netlist;

/// Incremental builder for a [`Netlist`].
///
/// Gates are added by name; fanins may reference any previously added net.
/// Forward references are rejected immediately (use [`crate::bench::parse`]
/// for formats that permit them — it performs a two-pass build).
/// [`NetlistBuilder::finish`] validates the structure (fanin arities,
/// acyclicity, presence of outputs) and produces the immutable netlist.
///
/// # Example
///
/// ```
/// use minpower_netlist::{GateKind, NetlistBuilder};
/// # fn main() -> Result<(), minpower_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("inv_chain");
/// b.input("a")?;
/// b.gate("x", GateKind::Not, &["a"])?;
/// b.gate("y", GateKind::Not, &["x"])?;
/// b.output("y")?;
/// let n = b.finish()?;
/// assert_eq!(n.gate_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    by_name: HashMap<String, GateId>,
    outputs: Vec<GateId>,
    flip_flop_count: usize,
}

impl NetlistBuilder {
    /// Creates an empty builder for a netlist called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            gates: Vec::new(),
            by_name: HashMap::new(),
            outputs: Vec::new(),
            flip_flop_count: 0,
        }
    }

    /// Adds a primary input net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name already exists.
    pub fn input(&mut self, name: &str) -> Result<GateId, NetlistError> {
        self.push(name, GateKind::Input, Vec::new())
    }

    /// Adds a logic gate driven by the named fanin nets.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] for a redefined output net,
    /// [`NetlistError::UndefinedNet`] for a fanin that does not exist yet,
    /// and [`NetlistError::BadFaninCount`] if the arity is illegal for the
    /// kind (unary kinds need exactly one fanin, all other logic kinds at
    /// least one).
    pub fn gate(
        &mut self,
        name: &str,
        kind: GateKind,
        fanin: &[&str],
    ) -> Result<GateId, NetlistError> {
        let mut ids = Vec::with_capacity(fanin.len());
        for net in fanin {
            let id = self
                .by_name
                .get(*net)
                .copied()
                .ok_or_else(|| NetlistError::UndefinedNet {
                    gate: name.to_string(),
                    net: (*net).to_string(),
                })?;
            ids.push(id);
        }
        self.gate_by_id(name, kind, ids)
    }

    /// Adds a logic gate with fanins given as already-resolved [`GateId`]s.
    ///
    /// # Errors
    ///
    /// Same as [`NetlistBuilder::gate`], except fanin existence is
    /// guaranteed by construction of the ids.
    pub fn gate_by_id(
        &mut self,
        name: &str,
        kind: GateKind,
        fanin: Vec<GateId>,
    ) -> Result<GateId, NetlistError> {
        check_arity(name, kind, fanin.len())?;
        self.push(name, kind, fanin)
    }

    /// Declares an existing net as a primary output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownOutput`] if no net with that name
    /// exists.
    pub fn output(&mut self, name: &str) -> Result<(), NetlistError> {
        let id = self
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UnknownOutput(name.to_string()))?;
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
        Ok(())
    }

    /// Records that `count` D flip-flops were cut out of the sequential
    /// source (used by the `.bench` parser so statistics can report them).
    pub fn record_flip_flops(&mut self, count: usize) {
        self.flip_flop_count += count;
    }

    /// Looks up a net id by name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.by_name.get(name).copied()
    }

    /// Number of gates added so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether no gates have been added.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoOutputs`] if no primary output was declared
    /// and [`NetlistError::Cycle`] if the gates do not form a DAG.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        Netlist::from_parts(self.name, self.gates, self.outputs, self.flip_flop_count)
    }

    fn push(
        &mut self,
        name: &str,
        kind: GateKind,
        fanin: Vec<GateId>,
    ) -> Result<GateId, NetlistError> {
        if self.by_name.contains_key(name) {
            return Err(NetlistError::DuplicateName(name.to_string()));
        }
        let id = GateId::new(self.gates.len());
        self.gates.push(Gate {
            name: name.to_string(),
            kind,
            fanin,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }
}

fn check_arity(name: &str, kind: GateKind, got: usize) -> Result<(), NetlistError> {
    let bad = match kind {
        GateKind::Input => got != 0,
        GateKind::Not | GateKind::Buf => got != 1,
        _ => got == 0,
    };
    if bad {
        Err(NetlistError::BadFaninCount {
            gate: name.to_string(),
            kind: kind.to_string(),
            got,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_names() {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        assert_eq!(
            b.input("a"),
            Err(NetlistError::DuplicateName("a".to_string()))
        );
    }

    #[test]
    fn rejects_undefined_fanin() {
        let mut b = NetlistBuilder::new("t");
        let err = b.gate("g", GateKind::Not, &["missing"]).unwrap_err();
        assert!(matches!(err, NetlistError::UndefinedNet { .. }));
    }

    #[test]
    fn rejects_bad_arity() {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("b").unwrap();
        let err = b.gate("g", GateKind::Not, &["a", "b"]).unwrap_err();
        assert!(matches!(err, NetlistError::BadFaninCount { got: 2, .. }));
        let err = b.gate("h", GateKind::Nand, &[]).unwrap_err();
        assert!(matches!(err, NetlistError::BadFaninCount { got: 0, .. }));
    }

    #[test]
    fn rejects_missing_outputs() {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        assert_eq!(b.finish().unwrap_err(), NetlistError::NoOutputs);
    }

    #[test]
    fn output_of_unknown_net_fails() {
        let mut b = NetlistBuilder::new("t");
        assert_eq!(
            b.output("nope"),
            Err(NetlistError::UnknownOutput("nope".to_string()))
        );
    }

    #[test]
    fn duplicate_output_declaration_is_idempotent() {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.output("y").unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        assert_eq!(n.outputs().len(), 1);
    }

    #[test]
    fn builds_simple_netlist() {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("y", GateKind::Nand, &["a", "b"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        assert_eq!(n.gate_count(), 3);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.logic_gate_count(), 1);
    }
}
