//! Structure-of-arrays view of a netlist: levelized order and CSR
//! adjacency in flat, contiguous buffers.
//!
//! [`Netlist`] stores per-gate `Vec`s (fanin, fanout) behind a `Vec` of
//! [`Gate`](crate::Gate)s — convenient for construction and queries, but a
//! pointer chase per gate in the evaluation hot loops. [`LevelizedCsr`]
//! flattens the same structure once into four index arrays:
//!
//! * `order` — every gate index, grouped by logic level (ascending), and
//!   in ascending gate index within a level;
//! * `level_offsets` — `order[level_offsets[l]..level_offsets[l + 1]]` is
//!   level `l`;
//! * fanin and fanout adjacency in CSR form (offsets + one flat index
//!   array each), preserving the netlist's per-gate edge order exactly —
//!   the order-preservation is what lets sweeps over this view reproduce
//!   the reference traversals bit for bit.
//!
//! A sweep over `order` visits every gate after all of its fanins (a
//! gate's fanins sit at strictly lower levels), so it is a valid
//! topological traversal; a reverse sweep is a valid reverse-topological
//! traversal. Unlike [`Netlist::topological_order`], the grouping exposes
//! per-level slices whose gates are mutually independent — the unit of
//! batching for the SoA evaluation kernels in `minpower-timing` and
//! `minpower-models`.

use crate::gate::{GateId, GateKind};
use crate::graph::Netlist;

/// Flat levelized index arrays over a [`Netlist`]. See the [module
/// docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelizedCsr {
    order: Vec<u32>,
    level_offsets: Vec<u32>,
    fanin_offsets: Vec<u32>,
    fanin: Vec<u32>,
    fanout_offsets: Vec<u32>,
    fanout: Vec<u32>,
    outputs: Vec<u32>,
    inputs: u32,
}

impl LevelizedCsr {
    /// Flattens `netlist` into levelized CSR buffers. `O(V + E)`.
    pub fn new(netlist: &Netlist) -> Self {
        let n = netlist.gate_count();
        let depth = netlist.depth();

        // Counting sort by level keeps gates in ascending index order
        // within each level.
        let mut level_counts = vec![0u32; depth + 1];
        for i in 0..n {
            level_counts[netlist.level(GateId::new(i))] += 1;
        }
        let mut level_offsets = Vec::with_capacity(depth + 2);
        let mut running = 0u32;
        level_offsets.push(0);
        for c in &level_counts {
            running += c;
            level_offsets.push(running);
        }
        let mut cursor: Vec<u32> = level_offsets[..=depth].to_vec();
        let mut order = vec![0u32; n];
        for i in 0..n {
            let l = netlist.level(GateId::new(i));
            order[cursor[l] as usize] = i as u32;
            cursor[l] += 1;
        }

        let mut fanin_offsets = Vec::with_capacity(n + 1);
        let mut fanin = Vec::new();
        let mut fanout_offsets = Vec::with_capacity(n + 1);
        let mut fanout = Vec::new();
        fanin_offsets.push(0);
        fanout_offsets.push(0);
        for i in 0..n {
            let id = GateId::new(i);
            fanin.extend(netlist.gate(id).fanin().iter().map(|f| f.index() as u32));
            fanin_offsets.push(fanin.len() as u32);
            fanout.extend(netlist.fanout(id).iter().map(|s| s.index() as u32));
            fanout_offsets.push(fanout.len() as u32);
        }

        LevelizedCsr {
            order,
            level_offsets,
            fanin_offsets,
            fanin,
            fanout_offsets,
            fanout,
            outputs: netlist.outputs().iter().map(|o| o.index() as u32).collect(),
            inputs: netlist
                .gates()
                .iter()
                .filter(|g| g.kind() == GateKind::Input)
                .count() as u32,
        }
    }

    /// Total gate count (primary inputs included).
    pub fn gate_count(&self) -> usize {
        self.order.len()
    }

    /// Number of levels (logic depth + 1; level 0 holds the primary
    /// inputs).
    pub fn level_count(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs as usize
    }

    /// Every gate index, grouped by ascending level.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The gates of level `l`, ascending by gate index.
    pub fn level(&self, l: usize) -> &[u32] {
        let lo = self.level_offsets[l] as usize;
        let hi = self.level_offsets[l + 1] as usize;
        &self.order[lo..hi]
    }

    /// Iterator over per-level gate slices, level 0 first.
    pub fn levels(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.level_count()).map(move |l| self.level(l))
    }

    /// Fanin gate indices of gate `i`, in the netlist's fanin order.
    #[inline]
    pub fn fanin_of(&self, i: usize) -> &[u32] {
        let lo = self.fanin_offsets[i] as usize;
        let hi = self.fanin_offsets[i + 1] as usize;
        &self.fanin[lo..hi]
    }

    /// Fanout gate indices of gate `i`, in the netlist's fanout order.
    #[inline]
    pub fn fanout_of(&self, i: usize) -> &[u32] {
        let lo = self.fanout_offsets[i] as usize;
        let hi = self.fanout_offsets[i + 1] as usize;
        &self.fanout[lo..hi]
    }

    /// Primary-output gate indices, in the netlist's output order
    /// (duplicates preserved, exactly as [`Netlist::outputs`]).
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// The widest level's gate count — the scratch-buffer bound for
    /// level-batched kernels.
    pub fn max_level_width(&self) -> usize {
        (0..self.level_count())
            .map(|l| self.level(l).len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::gate::GateKind;

    fn diamond() -> Netlist {
        let mut b = NetlistBuilder::new("d");
        b.input("a").unwrap();
        b.gate("u", GateKind::Not, &["a"]).unwrap();
        b.gate("v", GateKind::Buf, &["a"]).unwrap();
        b.gate("y", GateKind::Nand, &["u", "v"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn order_is_topological_and_levelized() {
        let n = diamond();
        let csr = LevelizedCsr::new(&n);
        assert_eq!(csr.gate_count(), 4);
        assert_eq!(csr.level_count(), 3);
        assert_eq!(csr.input_count(), 1);
        // Position of each gate in `order`.
        let mut pos = vec![0usize; csr.gate_count()];
        for (p, &i) in csr.order().iter().enumerate() {
            pos[i as usize] = p;
        }
        for i in 0..csr.gate_count() {
            for &f in csr.fanin_of(i) {
                assert!(pos[f as usize] < pos[i], "fanin after gate");
            }
        }
        // Levels match the netlist's.
        for (l, slice) in csr.levels().enumerate() {
            for &i in slice {
                assert_eq!(n.level(GateId::new(i as usize)), l);
            }
        }
    }

    #[test]
    fn adjacency_matches_netlist_order() {
        let n = diamond();
        let csr = LevelizedCsr::new(&n);
        for i in 0..n.gate_count() {
            let id = GateId::new(i);
            let fanin: Vec<u32> = n
                .gate(id)
                .fanin()
                .iter()
                .map(|f| f.index() as u32)
                .collect();
            assert_eq!(csr.fanin_of(i), &fanin[..]);
            let fanout: Vec<u32> = n.fanout(id).iter().map(|s| s.index() as u32).collect();
            assert_eq!(csr.fanout_of(i), &fanout[..]);
        }
        assert_eq!(csr.outputs().len(), n.outputs().len());
    }

    #[test]
    fn level_slices_partition_the_gates() {
        let n = diamond();
        let csr = LevelizedCsr::new(&n);
        let total: usize = csr.levels().map(<[u32]>::len).sum();
        assert_eq!(total, csr.gate_count());
        assert_eq!(csr.max_level_width(), 2); // u and v share level 1
        let mut seen: Vec<u32> = csr.order().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..csr.gate_count() as u32).collect::<Vec<_>>());
    }
}
