//! Error type shared by netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Error produced while building, validating, or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net name was defined twice.
    DuplicateName(String),
    /// A fanin refers to a net that was never defined.
    UndefinedNet {
        /// The gate whose fanin list contains the dangling reference.
        gate: String,
        /// The missing net name.
        net: String,
    },
    /// A gate received a fanin count its kind cannot accept.
    BadFaninCount {
        /// The offending gate.
        gate: String,
        /// Its logic function.
        kind: String,
        /// The fanin count supplied.
        got: usize,
    },
    /// The network contains a combinational cycle.
    Cycle {
        /// A gate on the detected cycle.
        gate: String,
    },
    /// An output was declared for a net that does not exist.
    UnknownOutput(String),
    /// The netlist has no primary outputs after construction.
    NoOutputs,
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(name) => {
                write!(f, "net `{name}` is defined more than once")
            }
            NetlistError::UndefinedNet { gate, net } => {
                write!(f, "gate `{gate}` references undefined net `{net}`")
            }
            NetlistError::BadFaninCount { gate, kind, got } => {
                write!(f, "gate `{gate}` of kind {kind} cannot take {got} fanins")
            }
            NetlistError::Cycle { gate } => {
                write!(f, "combinational cycle through gate `{gate}`")
            }
            NetlistError::UnknownOutput(name) => {
                write!(f, "output declared for unknown net `{name}`")
            }
            NetlistError::NoOutputs => write!(f, "netlist has no primary outputs"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<NetlistError> = vec![
            NetlistError::DuplicateName("a".into()),
            NetlistError::UndefinedNet {
                gate: "g".into(),
                net: "n".into(),
            },
            NetlistError::BadFaninCount {
                gate: "g".into(),
                kind: "NOT".into(),
                got: 2,
            },
            NetlistError::Cycle { gate: "g".into() },
            NetlistError::UnknownOutput("o".into()),
            NetlistError::NoOutputs,
            NetlistError::Parse {
                line: 3,
                message: "bad".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
