//! Gate-level combinational netlist representation for CMOS random logic
//! networks.
//!
//! This crate is the structural substrate of the `minpower` workspace: it
//! models a random logic network of static CMOS gates as a directed acyclic
//! graph, exactly the object the DAC'97 device-circuit optimizer consumes.
//! It provides:
//!
//! * [`Netlist`] — an immutable, validated DAG of [`Gate`]s with fanin and
//!   fanout adjacency, primary inputs/outputs, and a topological order;
//! * [`NetlistBuilder`] — incremental construction with by-name wiring;
//! * [`bench`](mod@bench) — a parser and writer for the ISCAS-89 `.bench` format
//!   (D flip-flops are cut into pseudo primary inputs/outputs so the
//!   combinational core can be analyzed, as is standard for these
//!   benchmarks);
//! * structural statistics ([`NetlistStats`]) used by the wiring estimator
//!   and by the experiment harness.
//!
//! # Example
//!
//! ```
//! use minpower_netlist::{GateKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), minpower_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("mux");
//! b.input("a")?;
//! b.input("b")?;
//! b.input("sel")?;
//! b.gate("nsel", GateKind::Not, &["sel"])?;
//! b.gate("t0", GateKind::Nand, &["a", "sel"])?;
//! b.gate("t1", GateKind::Nand, &["b", "nsel"])?;
//! b.gate("y", GateKind::Nand, &["t0", "t1"])?;
//! b.output("y")?;
//! let netlist = b.finish()?;
//! assert_eq!(netlist.logic_gate_count(), 4);
//! assert_eq!(netlist.stats().depth, 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod builder;
mod error;
mod gate;
mod graph;
pub mod soa;
mod stats;
pub mod transform;
pub mod verilog;

pub use builder::NetlistBuilder;
pub use error::NetlistError;
pub use gate::{Gate, GateId, GateKind};
pub use graph::Netlist;
pub use soa::LevelizedCsr;
pub use stats::NetlistStats;
