//! Gate-level structural Verilog parsing and writing.
//!
//! The ISCAS benchmarks (and most gate-level netlists in the wild)
//! circulate in a small structural-Verilog subset alongside `.bench`:
//!
//! ```text
//! module c17 (N1, N2, N3, N6, N7, N22, N23);
//!   input  N1, N2, N3, N6, N7;
//!   output N22, N23;
//!   wire   N10, N11, N16, N19;
//!   nand NAND2_1 (N10, N1, N3);
//!   nand NAND2_2 (N11, N3, N6);
//!   ...
//! endmodule
//! ```
//!
//! This module parses that subset — one module per file, primitive gate
//! instantiations (`and`, `or`, `nand`, `nor`, `not`, `buf`, `xor`,
//! `xnor`) with the output as the first terminal, optional instance
//! names, `//` and `/* */` comments — and writes it back. D flip-flops
//! are not part of the structural-primitive subset; sequential sources
//! should come in through [`crate::bench`].

use std::collections::HashSet;

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::graph::Netlist;

/// Parses a structural Verilog module into a [`Netlist`].
///
/// The netlist takes its name from the module. Port direction comes from
/// the `input`/`output` declarations; `wire` declarations are accepted
/// and checked but not required.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax errors (with a line
/// number), plus the usual structural errors from netlist assembly.
///
/// # Example
///
/// ```
/// let src = "
/// module tiny (a, b, y);
///   input a, b;
///   output y;
///   nand g1 (y, a, b);
/// endmodule";
/// let n = minpower_netlist::verilog::parse(src).unwrap();
/// assert_eq!(n.name(), "tiny");
/// assert_eq!(n.logic_gate_count(), 1);
/// ```
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    let cleaned = strip_comments(text);
    let mut tokens = Tokenizer::new(&cleaned);

    tokens.expect_keyword("module")?;
    let module_name = tokens.expect_identifier("module name")?;
    // Port list (names only; directions come later).
    tokens.expect_punct("(")?;
    let mut ports = Vec::new();
    loop {
        match tokens.next_token()? {
            Token::Identifier(name) => ports.push(name),
            Token::Punct(p) if p == ")" => break,
            Token::Punct(p) if p == "," => continue,
            other => {
                return Err(tokens.error(format!("unexpected `{other}` in port list")));
            }
        }
    }
    tokens.expect_punct(";")?;

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut wires: HashSet<String> = HashSet::new();
    struct Instance {
        kind: GateKind,
        terminals: Vec<String>,
        line: usize,
    }
    let mut instances: Vec<Instance> = Vec::new();

    loop {
        let line = tokens.line();
        match tokens.next_token()? {
            Token::Identifier(word) => match word.as_str() {
                "endmodule" => break,
                "input" => inputs.extend(tokens.identifier_list()?),
                "output" => outputs.extend(tokens.identifier_list()?),
                "wire" => wires.extend(tokens.identifier_list()?),
                kind_word => {
                    let kind = match kind_word {
                        "and" => GateKind::And,
                        "or" => GateKind::Or,
                        "nand" => GateKind::Nand,
                        "nor" => GateKind::Nor,
                        "not" => GateKind::Not,
                        "buf" => GateKind::Buf,
                        "xor" => GateKind::Xor,
                        "xnor" => GateKind::Xnor,
                        other => {
                            return Err(
                                tokens.error(format!("unknown primitive or keyword `{other}`"))
                            );
                        }
                    };
                    // Optional instance name before the terminal list.
                    let mut tok = tokens.next_token()?;
                    if let Token::Identifier(_) = tok {
                        tok = tokens.next_token()?;
                    }
                    if !matches!(&tok, Token::Punct(p) if p == "(") {
                        return Err(tokens.error("expected `(` starting terminal list"));
                    }
                    let mut terminals = Vec::new();
                    loop {
                        match tokens.next_token()? {
                            Token::Identifier(t) => terminals.push(t),
                            Token::Punct(p) if p == "," => continue,
                            Token::Punct(p) if p == ")" => break,
                            other => {
                                return Err(
                                    tokens.error(format!("unexpected `{other}` in terminals"))
                                );
                            }
                        }
                    }
                    tokens.expect_punct(";")?;
                    if terminals.len() < 2 {
                        return Err(NetlistError::Parse {
                            line,
                            message: "a primitive needs an output and at least one input"
                                .to_string(),
                        });
                    }
                    instances.push(Instance {
                        kind,
                        terminals,
                        line,
                    });
                }
            },
            Token::Eof => {
                return Err(tokens.error("missing `endmodule`"));
            }
            other => {
                return Err(tokens.error(format!("unexpected `{other}` at item position")));
            }
        }
    }

    // Assemble (two-pass for forward references, like the bench parser).
    let mut b = NetlistBuilder::new(&module_name);
    for name in &inputs {
        if !ports.contains(name) {
            return Err(NetlistError::Parse {
                line: 0,
                message: format!("input `{name}` is not in the module port list"),
            });
        }
        b.input(name)?;
    }
    let mut remaining: Vec<&Instance> = instances.iter().collect();
    loop {
        let before = remaining.len();
        let mut next = Vec::new();
        for inst in remaining {
            let ready = inst.terminals[1..].iter().all(|t| b.find(t).is_some());
            if ready {
                let fanin: Vec<&str> = inst.terminals[1..].iter().map(String::as_str).collect();
                b.gate(&inst.terminals[0], inst.kind, &fanin)?;
            } else {
                next.push(inst);
            }
        }
        if next.is_empty() {
            break;
        }
        if next.len() == before {
            let inst = next[0];
            let missing = inst.terminals[1..]
                .iter()
                .find(|t| b.find(t).is_none())
                .cloned()
                .unwrap_or_default();
            let drives_it = next.iter().any(|i| i.terminals[0] == missing);
            if drives_it {
                return Err(NetlistError::Cycle { gate: missing });
            }
            return Err(NetlistError::Parse {
                line: inst.line,
                message: format!("net `{missing}` is never driven"),
            });
        }
        remaining = next;
    }
    for name in &outputs {
        b.output(name)?;
    }
    b.finish()
}

/// Writes a netlist as a structural Verilog module.
///
/// Flip-flop pseudo inputs/outputs (from `.bench` sources) are emitted as
/// ordinary ports, so the module is the combinational core.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), minpower_netlist::NetlistError> {
/// let n = minpower_netlist::bench::parse("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// let v = minpower_netlist::verilog::write(&n);
/// let back = minpower_netlist::verilog::parse(&v)?;
/// assert_eq!(back.gate_count(), n.gate_count());
/// # Ok(())
/// # }
/// ```
pub fn write(netlist: &Netlist) -> String {
    let sanitized = |name: &str| -> String {
        // Verilog identifiers cannot start with a digit; escape with n_.
        if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            format!("n_{name}")
        } else {
            name.to_string()
        }
    };
    let mut out = String::new();
    let inputs: Vec<String> = netlist
        .inputs()
        .iter()
        .map(|&i| sanitized(netlist.gate(i).name()))
        .collect();
    let outputs: Vec<String> = netlist
        .outputs()
        .iter()
        .map(|&o| sanitized(netlist.gate(o).name()))
        .collect();
    let mut ports = inputs.clone();
    for o in &outputs {
        if !ports.contains(o) {
            ports.push(o.clone());
        }
    }
    out.push_str(&format!(
        "module {} ({});\n",
        sanitized(netlist.name()),
        ports.join(", ")
    ));
    out.push_str(&format!("  input  {};\n", inputs.join(", ")));
    out.push_str(&format!("  output {};\n", outputs.join(", ")));
    let wires: Vec<String> = netlist
        .topological_order()
        .iter()
        .filter(|&&id| netlist.gate(id).kind() != GateKind::Input && !netlist.is_output(id))
        .map(|&id| sanitized(netlist.gate(id).name()))
        .collect();
    if !wires.is_empty() {
        out.push_str(&format!("  wire   {};\n", wires.join(", ")));
    }
    for (k, &id) in netlist
        .topological_order()
        .iter()
        .filter(|&&id| netlist.gate(id).kind() != GateKind::Input)
        .enumerate()
    {
        let g = netlist.gate(id);
        let prim = match g.kind() {
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Input => unreachable!("inputs filtered above"),
        };
        let mut terms = vec![sanitized(g.name())];
        terms.extend(g.fanin().iter().map(|&f| sanitized(netlist.gate(f).name())));
        out.push_str(&format!("  {prim} g{k} ({});\n", terms.join(", ")));
    }
    out.push_str("endmodule\n");
    out
}

fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    let mut in_line = false;
    let mut in_block = false;
    while let Some(c) = chars.next() {
        if in_line {
            if c == '\n' {
                in_line = false;
                out.push('\n');
            }
            continue;
        }
        if in_block {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                in_block = false;
                out.push(' ');
            } else if c == '\n' {
                out.push('\n'); // keep line numbers stable
            }
            continue;
        }
        if c == '/' {
            match chars.peek() {
                Some('/') => {
                    chars.next();
                    in_line = true;
                    continue;
                }
                Some('*') => {
                    chars.next();
                    in_block = true;
                    continue;
                }
                _ => {}
            }
        }
        out.push(c);
    }
    out
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Identifier(String),
    Punct(String),
    Eof,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Identifier(s) => f.write_str(s),
            Token::Punct(p) => f.write_str(p),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

struct Tokenizer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(text: &'a str) -> Self {
        Tokenizer {
            chars: text.chars().peekable(),
            line: 1,
        }
    }

    fn line(&self) -> usize {
        self.line
    }

    fn error(&self, message: impl Into<String>) -> NetlistError {
        NetlistError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn next_token(&mut self) -> Result<Token, NetlistError> {
        while let Some(&c) = self.chars.peek() {
            if c == '\n' {
                self.line += 1;
                self.chars.next();
            } else if c.is_whitespace() {
                self.chars.next();
            } else {
                break;
            }
        }
        let Some(&c) = self.chars.peek() else {
            return Ok(Token::Eof);
        };
        if c.is_alphanumeric() || c == '_' || c == '\\' || c == '[' {
            let mut ident = String::new();
            while let Some(&c) = self.chars.peek() {
                if c.is_alphanumeric() || c == '_' || c == '[' || c == ']' || c == '\\' {
                    ident.push(c);
                    self.chars.next();
                } else {
                    break;
                }
            }
            Ok(Token::Identifier(ident))
        } else {
            self.chars.next();
            Ok(Token::Punct(c.to_string()))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), NetlistError> {
        match self.next_token()? {
            Token::Identifier(word) if word == kw => Ok(()),
            other => Err(self.error(format!("expected `{kw}`, found `{other}`"))),
        }
    }

    fn expect_identifier(&mut self, what: &str) -> Result<String, NetlistError> {
        match self.next_token()? {
            Token::Identifier(word) => Ok(word),
            other => Err(self.error(format!("expected {what}, found `{other}`"))),
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), NetlistError> {
        match self.next_token()? {
            Token::Punct(got) if got == p => Ok(()),
            other => Err(self.error(format!("expected `{p}`, found `{other}`"))),
        }
    }

    /// Parses `name, name, ... ;` after a direction/wire keyword.
    fn identifier_list(&mut self) -> Result<Vec<String>, NetlistError> {
        let mut names = Vec::new();
        loop {
            match self.next_token()? {
                Token::Identifier(name) => names.push(name),
                Token::Punct(p) if p == "," => continue,
                Token::Punct(p) if p == ";" => break,
                other => {
                    return Err(self.error(format!("unexpected `{other}` in declaration")));
                }
            }
        }
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::equivalent_by_simulation;

    const C17: &str = "
// ISCAS-85 c17
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input  N1, N2, N3, N6, N7;
  output N22, N23;
  wire   N10, N11, N16, N19;
  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
";

    #[test]
    fn parses_c17() {
        let n = parse(C17).unwrap();
        assert_eq!(n.name(), "c17");
        assert_eq!(n.inputs().len(), 5);
        assert_eq!(n.outputs().len(), 2);
        assert_eq!(n.logic_gate_count(), 6);
        assert_eq!(n.depth(), 3);
    }

    #[test]
    fn instance_names_are_optional() {
        let src = "module t (a, y);\n input a;\n output y;\n not (y, a);\nendmodule";
        let n = parse(src).unwrap();
        assert_eq!(n.logic_gate_count(), 1);
    }

    #[test]
    fn block_comments_preserve_line_numbers() {
        let src = "module t (a, y);\n input a;\n output y;\n /* multi\n line */\n frob (y, a);\nendmodule";
        let err = parse(src).unwrap_err();
        match err {
            NetlistError::Parse { line, .. } => assert_eq!(line, 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forward_references_resolve() {
        let src = "module t (a, y);\n input a;\n output y;\n not (y, x);\n not (x, a);\nendmodule";
        let n = parse(src).unwrap();
        assert_eq!(n.depth(), 2);
    }

    #[test]
    fn undriven_net_reported() {
        let src = "module t (a, y);\n input a;\n output y;\n nand (y, a, ghost);\nendmodule";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }), "{err:?}");
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn combinational_cycle_reported() {
        let src =
            "module t (a, y);\n input a;\n output y;\n nand (y, a, z);\n not (z, y);\nendmodule";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, NetlistError::Cycle { .. }), "{err:?}");
    }

    #[test]
    fn missing_endmodule_reported() {
        let src = "module t (a, y);\n input a;\n output y;\n not (y, a);\n";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("endmodule"));
    }

    #[test]
    fn write_parse_round_trip_is_equivalent() {
        let n = parse(C17).unwrap();
        let text = write(&n);
        let back = parse(&text).unwrap();
        assert_eq!(back.logic_gate_count(), n.logic_gate_count());
        // Names beginning with digits get the n_ prefix, so compare by
        // behavior on the sanitized original.
        let sanitized = parse(&write(&n)).unwrap();
        assert!(equivalent_by_simulation(&back, &sanitized, 200, 9));
    }

    #[test]
    fn bench_to_verilog_bridge() {
        let bench_src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NAND(a, b)\ny = NOR(u, b)\n";
        let from_bench = crate::bench::parse("bridge", bench_src).unwrap();
        let verilog = write(&from_bench);
        let back = parse(&verilog).unwrap();
        assert!(equivalent_by_simulation(&from_bench, &back, 200, 13));
    }
}
