//! The immutable, validated netlist DAG.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::gate::{Gate, GateId, GateKind};
use crate::stats::NetlistStats;

/// A validated combinational logic network.
///
/// Invariants established at construction and relied on by every downstream
/// crate:
///
/// * the gate set forms a DAG (no combinational cycles);
/// * every fanin reference resolves to a gate in the list;
/// * [`Netlist::topological_order`] lists every gate after all of its
///   fanins;
/// * fanout adjacency is the exact transpose of fanin adjacency.
///
/// Construct via [`NetlistBuilder`](crate::NetlistBuilder) or
/// [`bench::parse`](crate::bench::parse).
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    by_name: HashMap<String, GateId>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    fanout: Vec<Vec<GateId>>,
    topo: Vec<GateId>,
    level: Vec<usize>,
    flip_flop_count: usize,
}

impl Netlist {
    pub(crate) fn from_parts(
        name: String,
        gates: Vec<Gate>,
        outputs: Vec<GateId>,
        flip_flop_count: usize,
    ) -> Result<Self, NetlistError> {
        let n = gates.len();
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut indegree: Vec<usize> = vec![0; n];
        for (i, g) in gates.iter().enumerate() {
            indegree[i] = g.fanin.len();
            for &f in &g.fanin {
                fanout[f.index()].push(GateId::new(i));
            }
        }

        // Kahn's algorithm: topological order + cycle detection + levels.
        let mut topo = Vec::with_capacity(n);
        let mut level = vec![0usize; n];
        let mut ready: Vec<GateId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(GateId::new)
            .collect();
        let mut remaining = indegree.clone();
        while let Some(id) = ready.pop() {
            topo.push(id);
            for &succ in &fanout[id.index()] {
                let s = succ.index();
                level[s] = level[s].max(level[id.index()] + 1);
                remaining[s] -= 1;
                if remaining[s] == 0 {
                    ready.push(succ);
                }
            }
        }
        if topo.len() != n {
            let culprit = (0..n)
                .find(|&i| remaining[i] > 0)
                .map(|i| gates[i].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::Cycle { gate: culprit });
        }

        let inputs: Vec<GateId> = gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::Input)
            .map(|(i, _)| GateId::new(i))
            .collect();
        let by_name = gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.name.clone(), GateId::new(i)))
            .collect();

        Ok(Netlist {
            name,
            gates,
            by_name,
            inputs,
            outputs,
            fanout,
            topo,
            level,
            flip_flop_count,
        })
    }

    /// The netlist's name (typically the benchmark circuit name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of gates, including primary-input markers.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of logic gates (excludes primary-input markers). This is the
    /// `N` of the paper's problem statement.
    pub fn logic_gate_count(&self) -> usize {
        self.gates.len() - self.inputs.len()
    }

    /// Number of D flip-flops that were cut when deriving this
    /// combinational core from a sequential source (zero for natively
    /// combinational netlists).
    pub fn flip_flop_count(&self) -> usize {
        self.flip_flop_count
    }

    /// The gate record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// All gates, indexable by [`GateId::index`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary-input gate ids.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary-output gate ids.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Whether `id` is a declared primary output.
    pub fn is_output(&self, id: GateId) -> bool {
        self.outputs.contains(&id)
    }

    /// Gates driven by `id` (the transpose adjacency).
    pub fn fanout(&self, id: GateId) -> &[GateId] {
        &self.fanout[id.index()]
    }

    /// Electrical fanout count used by the paper's criticality measure:
    /// the number of gate loads, with primary outputs counting as one load
    /// (they drive a pad or register).
    pub fn fanout_count(&self, id: GateId) -> usize {
        let loads = self.fanout[id.index()].len();
        if loads == 0 || self.is_output(id) {
            (loads + 1).max(1)
        } else {
            loads
        }
    }

    /// Looks up a gate id by net name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.by_name.get(name).copied()
    }

    /// Gate ids in an order where every gate appears after all its fanins.
    pub fn topological_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Logic level (longest distance from a primary input) of each gate.
    pub fn level(&self, id: GateId) -> usize {
        self.level[id.index()]
    }

    /// Logic depth of the network: the maximum level over all gates.
    pub fn depth(&self) -> usize {
        self.level.iter().copied().max().unwrap_or(0)
    }

    /// Evaluates the network on an input assignment, returning one value
    /// per gate (indexed by [`GateId::index`]).
    ///
    /// `assignment` maps each primary input (in [`Netlist::inputs`] order)
    /// to a logic value.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != self.inputs().len()`.
    pub fn evaluate(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(
            assignment.len(),
            self.inputs.len(),
            "assignment length must equal the number of primary inputs"
        );
        let mut value = vec![false; self.gates.len()];
        for (idx, &input) in self.inputs.iter().enumerate() {
            value[input.index()] = assignment[idx];
        }
        let mut buf = Vec::new();
        for &id in &self.topo {
            let g = &self.gates[id.index()];
            if g.kind == GateKind::Input {
                continue;
            }
            buf.clear();
            buf.extend(g.fanin.iter().map(|f| value[f.index()]));
            value[id.index()] = g.kind.eval(&buf);
        }
        value
    }

    /// Computes structural statistics for this netlist.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::compute(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn mux() -> Netlist {
        let mut b = NetlistBuilder::new("mux");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.input("s").unwrap();
        b.gate("ns", GateKind::Not, &["s"]).unwrap();
        b.gate("t0", GateKind::Nand, &["a", "s"]).unwrap();
        b.gate("t1", GateKind::Nand, &["b", "ns"]).unwrap();
        b.gate("y", GateKind::Nand, &["t0", "t1"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn topological_order_respects_fanin() {
        let n = mux();
        let mut pos = vec![0usize; n.gate_count()];
        for (p, &id) in n.topological_order().iter().enumerate() {
            pos[id.index()] = p;
        }
        for g in 0..n.gate_count() {
            for &f in n.gate(GateId::new(g)).fanin() {
                assert!(pos[f.index()] < pos[g]);
            }
        }
    }

    #[test]
    fn fanout_is_transpose_of_fanin() {
        let n = mux();
        for g in 0..n.gate_count() {
            let id = GateId::new(g);
            for &f in n.gate(id).fanin() {
                assert!(n.fanout(f).contains(&id));
            }
            for &succ in n.fanout(id) {
                assert!(n.gate(succ).fanin().contains(&id));
            }
        }
    }

    #[test]
    fn levels_and_depth() {
        let n = mux();
        let y = n.find("y").unwrap();
        assert_eq!(n.level(y), 3);
        assert_eq!(n.depth(), 3);
        for &input in n.inputs() {
            assert_eq!(n.level(input), 0);
        }
    }

    #[test]
    fn detects_cycles() {
        // Build a cycle by hand through from_parts.
        let gates = vec![
            Gate {
                name: "a".into(),
                kind: GateKind::Not,
                fanin: vec![GateId::new(1)],
            },
            Gate {
                name: "b".into(),
                kind: GateKind::Not,
                fanin: vec![GateId::new(0)],
            },
        ];
        let err = Netlist::from_parts("cyc".into(), gates, vec![GateId::new(0)], 0).unwrap_err();
        assert!(matches!(err, NetlistError::Cycle { .. }));
    }

    #[test]
    fn evaluate_mux_truth_table() {
        let n = mux();
        let y = n.find("y").unwrap().index();
        // inputs in declaration order: a, b, s. y = s ? a : b.
        for (a, b, s) in [
            (false, false, false),
            (true, false, false),
            (false, true, false),
            (true, true, true),
            (false, true, true),
        ] {
            let v = n.evaluate(&[a, b, s]);
            let expect = if s { a } else { b };
            assert_eq!(v[y], expect, "a={a} b={b} s={s}");
        }
    }

    #[test]
    fn fanout_count_counts_po_load() {
        let n = mux();
        let y = n.find("y").unwrap();
        assert_eq!(n.fanout_count(y), 1); // pure PO load
        let s = n.find("s").unwrap();
        assert_eq!(n.fanout_count(s), 2); // drives t0 and ns
    }
}
