//! Gate primitives: identifiers, logic functions, and the gate record.

use std::fmt;

/// Index of a gate within its [`Netlist`](crate::Netlist).
///
/// `GateId`s are dense (0..gate_count) and stable for the lifetime of the
/// netlist; they index the per-gate vectors used throughout the workspace
/// (widths, delays, activities, ...).
///
/// # Example
///
/// ```
/// use minpower_netlist::GateId;
/// let id = GateId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "g3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(u32);

impl GateId {
    /// Creates an identifier from a dense index.
    pub fn new(index: usize) -> Self {
        GateId(index as u32)
    }

    /// Dense index of this gate, usable into per-gate vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Logic function realized by a static CMOS gate.
///
/// The set matches what the ISCAS-89 benchmarks and the DAC'97 energy/delay
/// models use: symmetric multi-input AND/OR/NAND/NOR plus inverter, buffer,
/// and (two-input) XOR/XNOR. `Input` marks a primary input (or a flip-flop
/// output cut into a pseudo input); it has no fanin and no intrinsic delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (or pseudo input from a cut flip-flop); no fanin.
    Input,
    /// Logical AND of all fanins.
    And,
    /// Logical OR of all fanins.
    Or,
    /// Logical NAND of all fanins.
    Nand,
    /// Logical NOR of all fanins.
    Nor,
    /// Inverter; exactly one fanin.
    Not,
    /// Non-inverting buffer; exactly one fanin.
    Buf,
    /// Exclusive OR (realized as a compound cell).
    Xor,
    /// Exclusive NOR (realized as a compound cell).
    Xnor,
}

impl GateKind {
    /// Whether the gate logically inverts (its CMOS realization is a single
    /// inverting stage). Non-inverting kinds are modeled as the inverting
    /// core followed by an inverter by the delay/energy models.
    pub fn is_inverting(self) -> bool {
        matches!(self, GateKind::Nand | GateKind::Nor | GateKind::Not)
    }

    /// Whether this kind accepts exactly one fanin.
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// Whether this is a primary-input marker.
    pub fn is_input(self) -> bool {
        self == GateKind::Input
    }

    /// Number of series-connected MOSFETs in the worst-case conduction path
    /// of the pull network for a gate with `fanin` inputs.
    ///
    /// NAND stacks its NMOS devices in series; NOR stacks PMOS. AND/OR are
    /// the series core plus an output inverter (the stack depth is the
    /// core's). XOR/XNOR use a two-high transmission structure. This is the
    /// `f_ii` series-derating factor in the paper's Eq. (A3).
    pub fn series_stack(self, fanin: usize) -> usize {
        match self {
            GateKind::Input => 0,
            GateKind::Not | GateKind::Buf => 1,
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => fanin.max(1),
            GateKind::Xor | GateKind::Xnor => 2,
        }
    }

    /// Evaluates the logic function over a slice of fanin values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty for a non-`Input` kind; `Input` kinds
    /// always return `false` (their value comes from stimulus, not
    /// evaluation).
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Input => false,
            GateKind::And => inputs.iter().all(|&v| v),
            GateKind::Or => inputs.iter().any(|&v| v),
            GateKind::Nand => !inputs.iter().all(|&v| v),
            GateKind::Nor => !inputs.iter().any(|&v| v),
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
            GateKind::Xor => inputs.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &v| acc ^ v),
        }
    }

    /// The canonical `.bench` keyword for this kind.
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

/// One gate of a [`Netlist`](crate::Netlist): its name, logic function, and
/// fanin list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    pub(crate) name: String,
    pub(crate) kind: GateKind,
    pub(crate) fanin: Vec<GateId>,
}

impl Gate {
    /// The gate's net name (output net).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate's logic function.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Identifiers of the gates driving this gate's inputs.
    pub fn fanin(&self) -> &[GateId] {
        &self.fanin
    }

    /// Number of inputs (`f_ii` in the paper). Zero for primary inputs.
    pub fn fanin_count(&self) -> usize {
        self.fanin.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_id_round_trips_index() {
        for i in [0usize, 1, 17, 100_000] {
            assert_eq!(GateId::new(i).index(), i);
        }
    }

    #[test]
    fn inverting_classification() {
        assert!(GateKind::Nand.is_inverting());
        assert!(GateKind::Nor.is_inverting());
        assert!(GateKind::Not.is_inverting());
        assert!(!GateKind::And.is_inverting());
        assert!(!GateKind::Buf.is_inverting());
        assert!(!GateKind::Xor.is_inverting());
    }

    #[test]
    fn series_stack_matches_topology() {
        assert_eq!(GateKind::Nand.series_stack(3), 3);
        assert_eq!(GateKind::Nor.series_stack(2), 2);
        assert_eq!(GateKind::Not.series_stack(1), 1);
        assert_eq!(GateKind::Xor.series_stack(2), 2);
        assert_eq!(GateKind::Input.series_stack(0), 0);
    }

    #[test]
    fn eval_truth_tables() {
        use GateKind::*;
        assert!(And.eval(&[true, true]));
        assert!(!And.eval(&[true, false]));
        assert!(Or.eval(&[false, true]));
        assert!(!Nor.eval(&[false, true]));
        assert!(Nand.eval(&[true, false]));
        assert!(!Nand.eval(&[true, true]));
        assert!(Not.eval(&[false]));
        assert!(Buf.eval(&[true]));
        assert!(Xor.eval(&[true, false]));
        assert!(!Xor.eval(&[true, true]));
        assert!(Xnor.eval(&[true, true]));
        assert!(Xor.eval(&[true, true, true]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(GateKind::Nand.to_string(), "NAND");
        assert_eq!(GateKind::Buf.to_string(), "BUFF");
        assert_eq!(GateId::new(2).to_string(), "g2");
    }
}
