//! Structural statistics over a netlist.

use std::fmt;

use crate::gate::GateKind;
use crate::graph::Netlist;

/// Summary statistics of a netlist's structure.
///
/// These feed the stochastic wiring model (which needs the gate count) and
/// the experiment tables (which report gate count and logic depth per
/// circuit, as Table 1 of the paper does).
///
/// # Example
///
/// ```
/// use minpower_netlist::{GateKind, NetlistBuilder};
/// # fn main() -> Result<(), minpower_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// b.input("a")?;
/// b.gate("y", GateKind::Not, &["a"])?;
/// b.output("y")?;
/// let stats = b.finish()?.stats();
/// assert_eq!(stats.logic_gates, 1);
/// assert_eq!(stats.depth, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub primary_inputs: usize,
    /// Number of primary outputs.
    pub primary_outputs: usize,
    /// Number of logic gates (`N` in the paper).
    pub logic_gates: usize,
    /// Number of flip-flops cut from the sequential source.
    pub flip_flops: usize,
    /// Logic depth (levels of logic on the longest input→output path).
    pub depth: usize,
    /// Mean fanin over logic gates.
    pub avg_fanin: f64,
    /// Mean electrical fanout over logic gates and inputs.
    pub avg_fanout: f64,
    /// Largest fanout in the network.
    pub max_fanout: usize,
    /// Gate-kind histogram as `(kind, count)` pairs, descending by count.
    pub kind_histogram: Vec<(GateKind, usize)>,
}

impl NetlistStats {
    pub(crate) fn compute(netlist: &Netlist) -> Self {
        let mut fanin_sum = 0usize;
        let mut fanout_sum = 0usize;
        let mut max_fanout = 0usize;
        let mut hist = std::collections::HashMap::new();
        for (i, g) in netlist.gates().iter().enumerate() {
            let id = crate::GateId::new(i);
            let fo = netlist.fanout_count(id);
            fanout_sum += fo;
            max_fanout = max_fanout.max(fo);
            if g.kind() != GateKind::Input {
                fanin_sum += g.fanin_count();
                *hist.entry(g.kind()).or_insert(0usize) += 1;
            }
        }
        let n_logic = netlist.logic_gate_count();
        let mut kind_histogram: Vec<(GateKind, usize)> = hist.into_iter().collect();
        kind_histogram.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)))
        });
        NetlistStats {
            primary_inputs: netlist.inputs().len(),
            primary_outputs: netlist.outputs().len(),
            logic_gates: n_logic,
            flip_flops: netlist.flip_flop_count(),
            depth: netlist.depth(),
            avg_fanin: if n_logic == 0 {
                0.0
            } else {
                fanin_sum as f64 / n_logic as f64
            },
            avg_fanout: if netlist.gate_count() == 0 {
                0.0
            } else {
                fanout_sum as f64 / netlist.gate_count() as f64
            },
            max_fanout,
            kind_histogram,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PI, {} PO, {} gates, {} FF, depth {}, avg fanin {:.2}, avg fanout {:.2}",
            self.primary_inputs,
            self.primary_outputs,
            self.logic_gates,
            self.flip_flops,
            self.depth,
            self.avg_fanin,
            self.avg_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn stats_of_small_network() {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("n1", GateKind::Nand, &["a", "b"]).unwrap();
        b.gate("n2", GateKind::Nor, &["a", "n1"]).unwrap();
        b.output("n2").unwrap();
        let s = b.finish().unwrap().stats();
        assert_eq!(s.primary_inputs, 2);
        assert_eq!(s.primary_outputs, 1);
        assert_eq!(s.logic_gates, 2);
        assert_eq!(s.depth, 2);
        assert!((s.avg_fanin - 2.0).abs() < 1e-12);
        assert_eq!(s.kind_histogram.len(), 2);
        let total: usize = s.kind_histogram.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 2);
        assert!(!s.to_string().is_empty());
    }
}
