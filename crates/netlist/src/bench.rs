//! ISCAS-89 `.bench` format parsing and writing.
//!
//! The `.bench` format is the lingua franca of the ISCAS-85/89 benchmark
//! suites the paper evaluates on:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G14 = NOT(G0)
//! G9 = NAND(G16, G15)
//! ```
//!
//! Sequential elements (`DFF`) are cut: the flip-flop output becomes a
//! pseudo primary input, and its data pin a pseudo primary output, yielding
//! the combinational core analyzed under a single-cycle constraint — the
//! standard treatment when running combinational optimization on ISCAS-89.

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::graph::Netlist;

/// Parses `.bench` text into a [`Netlist`] named `name`.
///
/// Forward references (a gate using a net defined later in the file) are
/// allowed, matching the format in the wild.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines, plus any structural
/// error ([`NetlistError::Cycle`], [`NetlistError::UndefinedNet`], ...)
/// detected when assembling the network.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), minpower_netlist::NetlistError> {
/// let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
/// let n = minpower_netlist::bench::parse("tiny", src)?;
/// assert_eq!(n.logic_gate_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(name: &str, text: &str) -> Result<Netlist, NetlistError> {
    enum Line {
        Input(String),
        Output(String),
        Gate {
            out: String,
            kind: GateKind,
            fanin: Vec<String>,
        },
        Dff {
            q: String,
            d: String,
        },
    }

    let mut lines = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_directive(line, "INPUT") {
            lines.push(Line::Input(parse_single_arg(rest, lineno)?));
        } else if let Some(rest) = strip_directive(line, "OUTPUT") {
            lines.push(Line::Output(parse_single_arg(rest, lineno)?));
        } else if let Some(eq) = line.find('=') {
            let out = line[..eq].trim().to_string();
            if out.is_empty() {
                return Err(parse_err(lineno, "missing output net before `=`"));
            }
            let rhs = line[eq + 1..].trim();
            let (kw, args) = parse_call(rhs, lineno)?;
            let kind = match kw.to_ascii_uppercase().as_str() {
                "AND" => Some(GateKind::And),
                "OR" => Some(GateKind::Or),
                "NAND" => Some(GateKind::Nand),
                "NOR" => Some(GateKind::Nor),
                "NOT" | "INV" => Some(GateKind::Not),
                "BUF" | "BUFF" => Some(GateKind::Buf),
                "XOR" => Some(GateKind::Xor),
                "XNOR" => Some(GateKind::Xnor),
                "DFF" => None,
                other => {
                    return Err(parse_err(lineno, format!("unknown gate kind `{other}`")));
                }
            };
            match kind {
                Some(kind) => lines.push(Line::Gate {
                    out,
                    kind,
                    fanin: args,
                }),
                None => {
                    if args.len() != 1 {
                        return Err(parse_err(lineno, "DFF takes exactly one data input"));
                    }
                    lines.push(Line::Dff {
                        q: out,
                        d: args.into_iter().next().expect("checked len"),
                    });
                }
            }
        } else {
            return Err(parse_err(lineno, format!("unrecognized line `{line}`")));
        }
    }

    // Assemble: inputs and DFF outputs first, then logic gates in
    // dependency order (the format allows forward references, so iterate
    // until a fixed point).
    let mut builder = NetlistBuilder::new(name);
    let mut outputs: Vec<String> = Vec::new();
    let mut dff_data: Vec<String> = Vec::new();
    let mut pending: Vec<(String, GateKind, Vec<String>)> = Vec::new();
    let mut dff_count = 0usize;
    for line in lines {
        match line {
            Line::Input(net) => {
                builder.input(&net)?;
            }
            Line::Output(net) => outputs.push(net),
            Line::Dff { q, d } => {
                builder.input(&q)?;
                dff_data.push(d);
                dff_count += 1;
            }
            Line::Gate { out, kind, fanin } => pending.push((out, kind, fanin)),
        }
    }
    builder.record_flip_flops(dff_count);

    let mut remaining = pending;
    loop {
        let before = remaining.len();
        let mut next = Vec::new();
        for (out, kind, fanin) in remaining {
            if fanin.iter().all(|f| builder.find(f).is_some()) {
                let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
                builder.gate(&out, kind, &refs)?;
            } else {
                next.push((out, kind, fanin));
            }
        }
        if next.is_empty() {
            break;
        }
        if next.len() == before {
            // No progress: either an undefined net or a cycle. Report the
            // first unresolved fanin as undefined for a precise message.
            let (out, _, fanin) = &next[0];
            let missing = fanin
                .iter()
                .find(|f| builder.find(f).is_none())
                .cloned()
                .unwrap_or_default();
            let is_cycle = next.iter().any(|(o, _, _)| *o == missing)
                || next.iter().any(|(o, _, f)| f.contains(o));
            if is_cycle && next.iter().any(|(o, _, _)| *o == missing) {
                return Err(NetlistError::Cycle { gate: missing });
            }
            return Err(NetlistError::UndefinedNet {
                gate: out.clone(),
                net: missing,
            });
        }
        remaining = next;
    }

    for net in outputs {
        builder.output(&net)?;
    }
    for d in dff_data {
        if builder.find(&d).is_none() {
            return Err(NetlistError::UndefinedNet {
                gate: "DFF".to_string(),
                net: d,
            });
        }
        builder.output(&d)?;
    }
    builder.finish()
}

/// Serializes a netlist back to `.bench` text.
///
/// Flip-flops cut during parsing are not reconstructed (their pseudo
/// inputs/outputs are written as `INPUT`/`OUTPUT`), so `write` followed by
/// [`parse`] reproduces the same combinational core.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), minpower_netlist::NetlistError> {
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let n = minpower_netlist::bench::parse("t", src)?;
/// let round = minpower_netlist::bench::parse("t", &minpower_netlist::bench::write(&n))?;
/// assert_eq!(round.gate_count(), n.gate_count());
/// # Ok(())
/// # }
/// ```
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", netlist.name()));
    for &id in netlist.inputs() {
        out.push_str(&format!("INPUT({})\n", netlist.gate(id).name()));
    }
    for &id in netlist.outputs() {
        out.push_str(&format!("OUTPUT({})\n", netlist.gate(id).name()));
    }
    for &id in netlist.topological_order() {
        let g = netlist.gate(id);
        if g.kind() == GateKind::Input {
            continue;
        }
        let fanin: Vec<&str> = g.fanin().iter().map(|&f| netlist.gate(f).name()).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            g.name(),
            g.kind().bench_keyword(),
            fanin.join(", ")
        ));
    }
    out
}

fn strip_directive<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    let upper = line.to_ascii_uppercase();
    if upper.starts_with(kw) {
        Some(line[kw.len()..].trim())
    } else {
        None
    }
}

fn parse_single_arg(rest: &str, lineno: usize) -> Result<String, NetlistError> {
    let rest = rest.trim();
    if !rest.starts_with('(') || !rest.ends_with(')') {
        return Err(parse_err(lineno, "expected `(net)`"));
    }
    let inner = rest[1..rest.len() - 1].trim();
    if inner.is_empty() || inner.contains(',') {
        return Err(parse_err(lineno, "expected exactly one net name"));
    }
    Ok(inner.to_string())
}

fn parse_call(rhs: &str, lineno: usize) -> Result<(String, Vec<String>), NetlistError> {
    let open = rhs
        .find('(')
        .ok_or_else(|| parse_err(lineno, "expected `KIND(...)` on right-hand side"))?;
    if !rhs.ends_with(')') {
        return Err(parse_err(lineno, "missing closing parenthesis"));
    }
    let kw = rhs[..open].trim().to_string();
    let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if kw.is_empty() {
        return Err(parse_err(lineno, "missing gate kind"));
    }
    if args.is_empty() {
        return Err(parse_err(lineno, "gate call has no arguments"));
    }
    Ok((kw, args))
}

fn parse_err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_LIKE: &str = "\
# tiny sequential example
INPUT(G0)
INPUT(G1)
OUTPUT(G17)
G5 = DFF(G10)
G14 = NOT(G0)
G10 = NOR(G14, G1)
G17 = NAND(G5, G10)
";

    #[test]
    fn parses_inputs_outputs_gates() {
        let n = parse("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.logic_gate_count(), 1);
    }

    #[test]
    fn dff_is_cut_into_pseudo_pi_po() {
        let n = parse("t", S27_LIKE).unwrap();
        // G5 (DFF output) becomes an input; G10 (its data) becomes an output.
        assert_eq!(n.flip_flop_count(), 1);
        assert_eq!(n.inputs().len(), 3); // G0, G1, G5
        assert!(n.outputs().iter().any(|&o| n.gate(o).name() == "G10"));
        assert!(n.outputs().iter().any(|&o| n.gate(o).name() == "G17"));
    }

    #[test]
    fn forward_references_resolve() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = NOT(a)\n";
        let n = parse("t", src).unwrap();
        assert_eq!(n.logic_gate_count(), 2);
        assert_eq!(n.depth(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# header\n\nINPUT(a) # trailing\nOUTPUT(y)\ny = BUFF(a)\n";
        let n = parse("t", src).unwrap();
        assert_eq!(n.logic_gate_count(), 1);
    }

    #[test]
    fn rejects_unknown_kind() {
        let err = parse("t", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }

    #[test]
    fn rejects_malformed_input_line() {
        let err = parse("t", "INPUT a\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_undefined_net() {
        let err = parse("t", "INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n").unwrap_err();
        assert!(matches!(err, NetlistError::UndefinedNet { .. }));
    }

    #[test]
    fn rejects_combinational_cycle() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NAND(a, z)\nz = NOT(y)\n";
        let err = parse("t", src).unwrap_err();
        assert!(
            matches!(err, NetlistError::Cycle { .. })
                || matches!(err, NetlistError::UndefinedNet { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn write_parse_round_trip_preserves_structure() {
        let n = parse("t", S27_LIKE).unwrap();
        let text = write(&n);
        let m = parse("t", &text).unwrap();
        assert_eq!(m.gate_count(), n.gate_count());
        assert_eq!(m.inputs().len(), n.inputs().len());
        assert_eq!(m.outputs().len(), n.outputs().len());
        assert_eq!(m.depth(), n.depth());
    }

    #[test]
    fn dff_with_two_inputs_rejected() {
        let err = parse("t", "INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }
}
