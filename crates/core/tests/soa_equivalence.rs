//! Bit-identity of the SoA evaluation kernel against the scalar path.
//!
//! The `--soa` flag (and [`EvalContext::with_soa`]) selects *how* width
//! sweeps and STA passes are computed, never *what* they compute: the
//! batched, levelized kernel must produce bitwise-identical widths,
//! energies, and delays to the original gate-by-gate scalar loop. These
//! tests pin that contract across the paper's ISCAS-style suite and
//! seeded Rent's-rule synthetic netlists, end to end through Procedure 2.
//!
//! Note `cargo test` builds with `debug_assertions` on, so the SoA runs
//! here *also* execute the in-sweep scalar cross-check inside
//! `Sizer::size_uncached`; the assertions below then compare the final
//! committed results across the two contexts.

use std::sync::Arc;

use minpower_circuits::{paper_suite, synthesize, BenchmarkSpec};
use minpower_core::search::size_at_with;
use minpower_core::{EvalContext, Optimizer, Problem, SearchOptions};
use minpower_device::Technology;
use minpower_models::CircuitModel;
use minpower_netlist::Netlist;

const FC: f64 = 3.0e8;

fn problem_for(netlist: &Netlist) -> Problem {
    let model = CircuitModel::with_uniform_activity(netlist, Technology::dac97(), 0.5, 0.3);
    Problem::new(model, FC)
}

/// Runs the standalone width-sizing stage at one `(V_dd, V_ts)` point on
/// both contexts and asserts every output field is bitwise equal.
fn assert_size_at_bit_identical(netlist: &Netlist, vdd: f64, vt: f64) {
    let problem = problem_for(netlist);
    let options = SearchOptions::default();
    let soa = size_at_with(
        Arc::new(EvalContext::new(1, 0).with_soa(true)),
        &problem,
        vdd,
        vt,
        &options,
    )
    .expect("soa sizing");
    let scalar = size_at_with(
        Arc::new(EvalContext::new(1, 0).with_soa(false)),
        &problem,
        vdd,
        vt,
        &options,
    )
    .expect("scalar sizing");

    assert_eq!(soa.feasible, scalar.feasible, "{}", netlist.name());
    assert_eq!(
        soa.critical_delay.to_bits(),
        scalar.critical_delay.to_bits(),
        "critical delay diverged on {}",
        netlist.name()
    );
    assert_eq!(
        soa.energy.static_.to_bits(),
        scalar.energy.static_.to_bits(),
        "static energy diverged on {}",
        netlist.name()
    );
    assert_eq!(
        soa.energy.dynamic.to_bits(),
        scalar.energy.dynamic.to_bits(),
        "dynamic energy diverged on {}",
        netlist.name()
    );
    assert_eq!(soa.design.vdd.to_bits(), scalar.design.vdd.to_bits());
    for (i, (a, b)) in soa
        .design
        .width
        .iter()
        .zip(scalar.design.width.iter())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "width diverged at gate {i} on {}",
            netlist.name()
        );
    }
    for (a, b) in soa.design.vt.iter().zip(scalar.design.vt.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn soa_sizing_matches_scalar_on_paper_suite() {
    for netlist in paper_suite() {
        assert_size_at_bit_identical(&netlist, 2.5, 0.4);
    }
}

#[test]
fn soa_sizing_matches_scalar_on_rent_netlists() {
    for (gates, vdd, vt) in [(200usize, 3.0, 0.5), (800, 2.2, 0.35), (2000, 1.6, 0.25)] {
        let spec = BenchmarkSpec::rent(&format!("rent{gates}"), gates);
        let netlist = synthesize(&spec).expect("rent spec is valid");
        assert_size_at_bit_identical(&netlist, vdd, vt);
    }
}

#[test]
fn full_optimizer_matches_scalar_end_to_end() {
    let spec = BenchmarkSpec::rent("rent-e2e", 300);
    let netlist = synthesize(&spec).expect("rent spec is valid");
    let problem = problem_for(&netlist);

    let run = |soa: bool| {
        Optimizer::new(&problem)
            .with_engine(Arc::new(EvalContext::new(1, 0).with_soa(soa)))
            .run()
            .expect("optimizer run")
    };
    let batched = run(true);
    let scalar = run(false);

    assert_eq!(batched.feasible, scalar.feasible);
    assert_eq!(batched.evaluations, scalar.evaluations);
    assert_eq!(
        batched.critical_delay.to_bits(),
        scalar.critical_delay.to_bits()
    );
    assert_eq!(
        batched.energy.total().to_bits(),
        scalar.energy.total().to_bits()
    );
    assert_eq!(batched.design.vdd.to_bits(), scalar.design.vdd.to_bits());
    for (a, b) in batched.design.width.iter().zip(scalar.design.width.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Randomized edit/width sequences: after arbitrary per-gate width and
/// threshold edits, the kernel's dense passes must stay bitwise equal to
/// the scalar model's, and Procedure 2's batched sizing must agree at
/// random operating points. Self-contained generators (see
/// `crates/timing/tests/incremental_properties.rs`); the feature gates
/// the heavier randomized wall time out of the default `cargo test`.
///
/// Run with `cargo test -p minpower-core --features proptest`.
#[cfg(feature = "proptest")]
mod randomized {
    use super::*;
    use minpower_models::{Design, SoaKernel};

    /// SplitMix64 — deterministic, dependency-free.
    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        fn range(&mut self, lo: f64, hi: f64) -> f64 {
            lo + self.next_f64() * (hi - lo)
        }
    }

    fn assert_dense_passes_match(
        model: &CircuitModel,
        kernel: &SoaKernel,
        design: &Design,
        case: u64,
    ) {
        let (mut d_a, mut a_a) = (Vec::new(), Vec::new());
        let (mut d_b, mut a_b) = (Vec::new(), Vec::new());
        let crit_scalar = model.timing_into(design, &mut d_a, &mut a_a);
        let crit_soa = kernel.timing_into(design, &mut d_b, &mut a_b);
        assert_eq!(
            crit_scalar.to_bits(),
            crit_soa.to_bits(),
            "critical delay diverged (case {case})"
        );
        for (i, (x, y)) in d_a.iter().zip(d_b.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "delay[{i}] diverged (case {case})"
            );
        }
        for (i, (x, y)) in a_a.iter().zip(a_b.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "arrival[{i}] diverged (case {case})"
            );
        }
        let e_scalar = model.total_energy(design, FC);
        let e_soa = kernel.total_energy(design, FC);
        assert_eq!(e_scalar.static_.to_bits(), e_soa.static_.to_bits());
        assert_eq!(e_scalar.dynamic.to_bits(), e_soa.dynamic.to_bits());
    }

    /// Random Rent netlists under random width/threshold edit storms:
    /// the kernel's dense STA + energy passes track the scalar model
    /// bitwise after every committed batch of edits.
    #[test]
    fn dense_passes_match_under_random_edit_sequences() {
        let mut rng = Rng(0x50A_D15E);
        for case in 0..24u64 {
            let gates = 50 + rng.below(350);
            let spec = BenchmarkSpec::rent(&format!("rent-prop{case}-{gates}"), gates);
            let netlist = synthesize(&spec).expect("rent spec is valid");
            let model =
                CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, 0.3);
            let kernel = SoaKernel::new(&model);
            let (w_lo, w_hi) = model.technology().w_range;

            let vdd = rng.range(1.0, 3.3);
            let mut design = Design::uniform(&netlist, vdd, rng.range(0.2, 0.6), 4.0);
            let n = design.width.len();
            for _batch in 0..4 {
                for _ in 0..rng.below(64) {
                    let g = rng.below(n);
                    design.width[g] = rng.range(w_lo, w_hi);
                    if rng.below(4) == 0 {
                        design.vt[g] = rng.range(0.2, 0.6);
                    }
                }
                assert_dense_passes_match(&model, &kernel, &design, case);
            }
        }
    }

    /// Random operating points through the full sizing stage: batched
    /// and serial width bisections commit identical bits everywhere in
    /// the `(V_dd, V_ts)` plane, feasible or not.
    #[test]
    fn sizing_matches_at_random_operating_points() {
        let spec = BenchmarkSpec::rent("rent-prop-size", 150);
        let netlist = synthesize(&spec).expect("rent spec is valid");
        let mut rng = Rng(0xB15EC7);
        for _ in 0..12 {
            let vdd = rng.range(1.2, 3.3);
            let vt = rng.range(0.2, 0.55);
            assert_size_at_bit_identical(&netlist, vdd, vt);
        }
    }
}
