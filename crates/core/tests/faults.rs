//! Fault-injection drills (compiled only with `--features faults`):
//! deterministic injected failures — NaN model outputs, simulated clock
//! jumps, worker panics — must be contained, surfaced as typed errors or
//! discarded observations, and counted in telemetry.

#![cfg(feature = "faults")]

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use minpower_core::runctl::TripReason;
use minpower_core::{yield_mc, EvalContext, OptimizeError, Optimizer, Problem, RunControl};
use minpower_device::Technology;
use minpower_engine::faults::{self, Trigger};
use minpower_models::CircuitModel;
use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

/// The fault registry is process-global, so the drills must not overlap:
/// an armed site fires in whichever test happens to hit it.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn netlist() -> Netlist {
    let mut b = NetlistBuilder::new("t");
    b.input("a").unwrap();
    b.input("c").unwrap();
    b.gate("u", GateKind::Nand, &["a", "c"]).unwrap();
    b.gate("v", GateKind::Nor, &["u", "c"]).unwrap();
    b.gate("w", GateKind::Nand, &["u", "v"]).unwrap();
    b.gate("y", GateKind::Not, &["w"]).unwrap();
    b.output("y").unwrap();
    b.finish().unwrap()
}

fn problem() -> Problem {
    let model = CircuitModel::with_uniform_activity(&netlist(), Technology::dac97(), 0.5, 0.3);
    Problem::new(model, 200.0e6)
}

#[test]
fn nan_probes_never_become_the_returned_optimum() {
    let _guard = serial();
    faults::disarm_all();
    // Every third probe observation reports NaN energy — as if the device
    // model silently broke mid-run.
    faults::arm("probe.nan", Trigger::EveryNth(3));
    let p = problem();
    let ctx = Arc::new(EvalContext::new(1, 1 << 16));
    let result = Optimizer::new(&p).with_engine(ctx.clone()).run();
    faults::disarm_all();

    let r = result.expect("optimizer survives poisoned observations");
    assert!(r.feasible);
    assert!(
        r.energy.total().is_finite(),
        "a NaN observation leaked into the optimum: {:?}",
        r.energy
    );
    assert!(faults::fired_count("probe.nan") == 0); // disarmed resets counts
    assert!(
        ctx.stats().snapshot().faults_injected > 0,
        "telemetry must count the injected faults"
    );
}

#[test]
fn simulated_clock_jump_trips_the_deadline() {
    let _guard = serial();
    faults::disarm_all();
    // Every deadline check believes time has jumped past the limit.
    faults::arm("runctl.clock_jump", Trigger::EveryNth(1));
    let p = problem();
    let control = RunControl::new().with_deadline(Duration::from_secs(100_000));
    let result = Optimizer::new(&p)
        .with_engine(Arc::new(EvalContext::new(1, 0)))
        .with_run_control(control)
        .run();
    faults::disarm_all();

    match result.unwrap_err() {
        OptimizeError::Interrupted { reason, .. } => {
            assert_eq!(reason, TripReason::DeadlineExceeded);
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

#[test]
fn injected_worker_panic_surfaces_as_typed_error_with_siblings_drained() {
    let _guard = serial();
    faults::disarm_all();
    let p = problem();
    let ctx = EvalContext::new(2, 0);
    let design = {
        // Build a feasible design to sample around, before arming.
        let r = Optimizer::new(&p)
            .with_engine(Arc::new(EvalContext::new(1, 0)))
            .run()
            .unwrap();
        r.design
    };
    faults::arm("pool.worker.panic", Trigger::OnIndices(vec![3]));
    let result = yield_mc::timing_yield_ctl(&ctx, &p, &design, 0.05, 50, 7, &RunControl::new());
    faults::disarm_all();

    match result.unwrap_err() {
        OptimizeError::WorkerPanicked { index, message } => {
            assert_eq!(index, 3, "the panicking trial is identified exactly");
            assert!(
                message.contains("injected"),
                "panic payload survives: {message}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert!(
        ctx.stats().snapshot().panics_recovered > 0,
        "telemetry must count the recovery"
    );
    // The pool is not poisoned: the same context runs clean afterwards.
    let clean = yield_mc::timing_yield_ctl(&ctx, &p, &design, 0.05, 50, 7, &RunControl::new())
        .expect("pool recovers after a contained panic");
    assert_eq!(clean.samples, 50);
}
