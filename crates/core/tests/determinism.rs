//! Engine-neutrality guarantees: routing evaluations through the
//! `minpower-engine` cache or a different thread count must never change
//! an optimization outcome — only its wall time.
//!
//! The cache can honor this because a hit requires an exact bit-pattern
//! fingerprint match on top of the quantized key, and the Monte-Carlo
//! trials can because each draws from its own `(seed, trial)` PRNG
//! stream and reduces in trial order.

use std::sync::Arc;

use minpower_core::context::DEFAULT_CACHE_CAPACITY;
use minpower_core::{yield_mc, EvalContext, Optimizer, Problem, SearchOptions, SizingMethod};
use minpower_device::Technology;
use minpower_models::CircuitModel;
use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

/// A two-output network deep and reconvergent enough that Procedure 2
/// probes a few hundred operating points.
fn netlist() -> Netlist {
    let mut b = NetlistBuilder::new("det");
    for name in ["a", "b", "c", "d"] {
        b.input(name).unwrap();
    }
    b.gate("n1", GateKind::Nand, &["a", "b"]).unwrap();
    b.gate("n2", GateKind::Nor, &["b", "c"]).unwrap();
    b.gate("n3", GateKind::Nand, &["c", "d"]).unwrap();
    b.gate("m1", GateKind::Nor, &["n1", "n2"]).unwrap();
    b.gate("m2", GateKind::Nand, &["n2", "n3"]).unwrap();
    b.gate("m3", GateKind::Nand, &["m1", "m2"]).unwrap();
    b.gate("m4", GateKind::Nor, &["m1", "n3"]).unwrap();
    b.gate("y1", GateKind::Not, &["m3"]).unwrap();
    b.gate("y2", GateKind::Nand, &["m3", "m4"]).unwrap();
    b.output("y1").unwrap();
    b.output("y2").unwrap();
    b.finish().unwrap()
}

fn problem() -> Problem {
    let n = netlist();
    let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
    Problem::new(model, 250.0e6)
}

#[test]
fn cache_on_and_off_produce_identical_results() {
    let p = problem();
    let cached_ctx = Arc::new(EvalContext::new(1, DEFAULT_CACHE_CAPACITY));
    let cached = Optimizer::new(&p)
        .with_engine(cached_ctx.clone())
        .run()
        .unwrap();
    let uncached = Optimizer::new(&p)
        .with_engine(Arc::new(EvalContext::new(1, 0)))
        .run()
        .unwrap();
    assert_eq!(cached, uncached);
    // The lookup count (what `evaluations` reports) must also agree: the
    // cache absorbs recomputation, not probes.
    assert_eq!(cached.evaluations, uncached.evaluations);
    let stats = cached_ctx.cache_stats().expect("cache enabled");
    assert_eq!(stats.hits + stats.misses, cached.evaluations as u64);
}

#[test]
fn rerunning_on_a_warm_cache_is_identical() {
    let p = problem();
    let ctx = Arc::new(EvalContext::new(1, DEFAULT_CACHE_CAPACITY));
    let cold = Optimizer::new(&p).with_engine(ctx.clone()).run().unwrap();
    let warm = Optimizer::new(&p).with_engine(ctx.clone()).run().unwrap();
    assert_eq!(cold, warm);
    // The second run must have been served from the cache.
    let stats = ctx.cache_stats().expect("cache enabled");
    assert!(
        stats.hits >= warm.evaluations as u64,
        "only {} hits for {} probes",
        stats.hits,
        warm.evaluations
    );
}

#[test]
fn thread_count_does_not_change_optimization_results() {
    let p = problem();
    let serial = Optimizer::new(&p)
        .with_engine(Arc::new(EvalContext::new(1, DEFAULT_CACHE_CAPACITY)))
        .run()
        .unwrap();
    for threads in [2, 4] {
        let parallel = Optimizer::new(&p)
            .with_engine(Arc::new(EvalContext::new(threads, DEFAULT_CACHE_CAPACITY)))
            .run()
            .unwrap();
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn engine_choices_commute_with_search_options() {
    // The guarantee holds for non-default searches too (multi-Vt,
    // tolerance margins change the probe inputs, not the contract).
    let p = problem();
    let opts = SearchOptions {
        steps: 10,
        vt_groups: 2,
        ..SearchOptions::default()
    };
    let cached = Optimizer::new(&p)
        .with_options(opts.clone())
        .with_engine(Arc::new(EvalContext::new(4, DEFAULT_CACHE_CAPACITY)))
        .run()
        .unwrap();
    let plain = Optimizer::new(&p)
        .with_options(opts)
        .with_engine(Arc::new(EvalContext::new(1, 0)))
        .run()
        .unwrap();
    assert_eq!(cached, plain);
}

#[test]
fn incremental_and_full_paths_produce_identical_results() {
    // The incremental evaluation layer (journaled delay repair,
    // dirty-worklist arrival propagation, delta-maintained energy terms)
    // must be bit-identical to dense recomputation: same energy, same
    // widths, same critical delay — for both sizing engines, any thread
    // count, cache on or off.
    let p = problem();
    for sizing in [SizingMethod::Budgeted, SizingMethod::Greedy] {
        let opts = SearchOptions {
            sizing,
            ..SearchOptions::default()
        };
        let reference = Optimizer::new(&p)
            .with_options(opts.clone())
            .with_engine(Arc::new(EvalContext::new(1, 0).with_incremental(false)))
            .run()
            .unwrap();
        for threads in [1, 4] {
            for capacity in [0, DEFAULT_CACHE_CAPACITY] {
                let ctx = Arc::new(EvalContext::new(threads, capacity).with_incremental(true));
                let incremental = Optimizer::new(&p)
                    .with_options(opts.clone())
                    .with_engine(ctx.clone())
                    .run()
                    .unwrap();
                assert_eq!(
                    reference, incremental,
                    "sizing {sizing:?}, threads {threads}, cache {capacity}"
                );
                // The fast path must actually have run incrementally.
                assert!(
                    ctx.snapshot().incremental_commits > 0,
                    "sizing {sizing:?}: no incremental commits recorded"
                );
            }
        }
    }
}

#[test]
fn size_at_incremental_matches_full_at_fixed_operating_points() {
    let p = problem();
    for sizing in [SizingMethod::Budgeted, SizingMethod::Greedy] {
        let opts = SearchOptions {
            sizing,
            ..SearchOptions::default()
        };
        for (vdd, vt) in [(2.5, 0.45), (1.8, 0.35), (3.3, 0.6)] {
            let full = minpower_core::search::size_at_with(
                Arc::new(EvalContext::new(1, 0).with_incremental(false)),
                &p,
                vdd,
                vt,
                &opts,
            )
            .unwrap();
            let inc = minpower_core::search::size_at_with(
                Arc::new(EvalContext::new(1, 0).with_incremental(true)),
                &p,
                vdd,
                vt,
                &opts,
            )
            .unwrap();
            assert_eq!(full, inc, "sizing {sizing:?} at ({vdd}, {vt})");
        }
    }
}

#[test]
fn yield_mc_agrees_across_threads_and_cache_settings() {
    let p = problem();
    let r = Optimizer::new(&p)
        .with_engine(Arc::new(EvalContext::new(1, 0)))
        .run()
        .unwrap();
    let reference =
        yield_mc::timing_yield_with(&EvalContext::new(1, 0), &p, &r.design, 0.08, 96, 11);
    for ctx in [
        EvalContext::new(4, 0),
        EvalContext::new(3, DEFAULT_CACHE_CAPACITY),
        EvalContext::new(8, 16),
    ] {
        let other = yield_mc::timing_yield_with(&ctx, &p, &r.design, 0.08, 96, 11);
        assert_eq!(reference, other);
    }
}
