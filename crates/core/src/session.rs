//! Interactive what-if sessions: warm incremental state plus a typed,
//! durable edit log.
//!
//! A cold optimization job answers one question per netlist load; a
//! *session* keeps the expensive artifacts — the [`CircuitModel`], a
//! self-consistent delay vector, a warm [`IncrementalSta`], and an
//! [`EnergyLedger`] — alive between questions, so "what if this gate
//! were 2× wider" or "what if `f_c` moved to 400 MHz" costs one
//! dirty-cone repair instead of a full dense evaluation. The design
//! follows the same discipline as the sizing inner loops (PR 2): every
//! incremental path is bitwise-identical to the dense recomputation it
//! replaces, and debug builds assert that after every op.
//!
//! The pieces:
//!
//! - [`SessionOp`] — the typed edit vocabulary (resize, retime via
//!   `set_vt`, operating-point nudges, structural add/remove/rewire/
//!   retype, dirty-cone re-optimization), with a JSON codec whose persisted
//!   form uses the checkpoint hex-float encoding so replay is
//!   bit-exact.
//! - [`SessionState`] — the warm state and the per-op incremental
//!   strategies: width/vt edits run the journaled delay repair +
//!   `IncrementalSta` commit + ledger refresh; operating-point edits
//!   rebuild only the invalidated artifact (ledger for `f_c` and
//!   activity, everything for `V_dd`); structural edits rebuild
//!   densely (the wire model is a function of gate count, so the
//!   whole delay surface legitimately moves).
//! - The **op-log**: `append_op` writes one CRC-framed record per
//!   applied op with an fsync, `read_oplog` replays the longest valid
//!   prefix (a torn tail — crash or the `session.oplog.torn` fault —
//!   truncates cleanly instead of poisoning the session). Replaying
//!   the log over the creation parameters reproduces the live state
//!   bit-for-bit, which is what makes kill-and-restart recovery and
//!   the dense cross-check meaningful.
//!
//! Checkpointing policy (how often to fold the log into a snapshot)
//! and eviction live in the service layer; this module owns only the
//! state machine and its durability primitives.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use minpower_device::Technology;
use minpower_models::{CircuitModel, Design, EnergyBreakdown, EnergyLedger};
use minpower_netlist::{GateId, GateKind, Netlist, NetlistBuilder};
use minpower_timing::IncrementalSta;

use crate::json::{self, Value};

/// Input switching probability used for every session model, matching
/// the cold job path (`JobSpec::build`) so a session and the equivalent
/// job see the same activities.
const ACTIVITY_PROBABILITY: f64 = 0.5;

/// Default bisection depth for [`SessionOp::Reoptimize`].
pub const DEFAULT_REOPT_STEPS: u32 = 12;

/// Most bisection steps a single re-optimize op may request.
pub const MAX_REOPT_STEPS: u32 = 64;

/// A session-layer failure: invalid op, unknown gate, out-of-range
/// value, or a malformed persisted document. Always a client/caller
/// error — internal invariant violations panic instead.
#[derive(Debug, Clone)]
pub struct SessionError {
    /// Human-readable description.
    pub message: String,
}

impl SessionError {
    fn new(message: impl Into<String>) -> Self {
        SessionError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SessionError {}

impl From<json::JsonError> for SessionError {
    fn from(e: json::JsonError) -> Self {
        SessionError::new(e.to_string())
    }
}

/// Operating point and uniform starting design for a new session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionParams {
    /// Clock frequency target, Hz.
    pub fc: f64,
    /// Uniform input activity density.
    pub activity: f64,
    /// Usable clock fraction (skew margin), `(0, 1]`.
    pub skew: f64,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Uniform starting threshold voltage, volts.
    pub vt: f64,
    /// Uniform starting gate width (also the default for added gates).
    pub width: f64,
}

impl Default for SessionParams {
    fn default() -> Self {
        SessionParams {
            fc: 300.0e6,
            activity: 0.3,
            skew: 1.0,
            vdd: 2.5,
            vt: 0.45,
            width: 2.0,
        }
    }
}

impl SessionParams {
    /// Validates every field against physical and technology ranges.
    ///
    /// # Errors
    ///
    /// [`SessionError`] naming the first offending field.
    pub fn validate(&self, tech: &Technology) -> Result<(), SessionError> {
        if !self.fc.is_finite() || self.fc <= 0.0 {
            return Err(SessionError::new("`fc` must be finite and positive"));
        }
        if !(0.0..=1.0).contains(&self.activity) {
            return Err(SessionError::new("`activity` must be within [0, 1]"));
        }
        if !(self.skew > 0.0 && self.skew <= 1.0) {
            return Err(SessionError::new("`skew` must be within (0, 1]"));
        }
        check_range("vdd", self.vdd, tech.vdd_range)?;
        check_range("vt", self.vt, tech.vt_range)?;
        check_range("width", self.width, tech.w_range)?;
        Ok(())
    }
}

fn check_range(what: &str, x: f64, (lo, hi): (f64, f64)) -> Result<(), SessionError> {
    if !x.is_finite() || x < lo || x > hi {
        return Err(SessionError::new(format!(
            "`{what}` must be within [{lo}, {hi}]"
        )));
    }
    Ok(())
}

/// One typed session edit. The JSON wire form is
/// `{"op": "<kind>", ...}`; numeric fields accept either plain numbers
/// (the client form) or `0x...` bit-exact hex floats (the persisted
/// op-log form, which [`SessionOp::to_json`] always emits so replay
/// cannot drift through a decimal round-trip).
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOp {
    /// Set `gate`'s width (resize).
    Resize {
        /// Target gate name.
        gate: String,
        /// New width, within the technology's `w_range`.
        width: f64,
    },
    /// Set `gate`'s threshold voltage (retime its drive/leakage trade).
    SetVt {
        /// Target gate name.
        gate: String,
        /// New threshold voltage, within `vt_range`.
        vt: f64,
    },
    /// Move the supply voltage (global operating-point edit).
    SetVdd {
        /// New supply voltage, within `vdd_range`.
        vdd: f64,
    },
    /// Move the clock frequency target.
    SetFc {
        /// New target, Hz.
        fc: f64,
    },
    /// Change the uniform input activity density.
    SetActivity {
        /// New density, `[0, 1]`.
        activity: f64,
    },
    /// Add a logic gate driven by existing nets.
    AddGate {
        /// Fresh net name.
        name: String,
        /// Logic function (any non-`INPUT` kind).
        kind: GateKind,
        /// Names of the driving nets.
        fanin: Vec<String>,
    },
    /// Remove a gate that drives nothing (not an input, output, or
    /// another gate's fanin).
    RemoveGate {
        /// Target gate name.
        gate: String,
    },
    /// Replace `gate`'s fanin list. The netlist re-levelizes (a stable
    /// topological re-sort), so rewiring to a gate that currently sits
    /// later in index order is legal as long as no cycle forms.
    RewireFanin {
        /// Target gate name (a logic gate).
        gate: String,
        /// Names of the new driving nets, in order.
        fanin: Vec<String>,
    },
    /// Swap `gate`'s logic function in place (any non-`INPUT` kind whose
    /// arity admits the gate's current fanin count).
    SwapGateKind {
        /// Target gate name (a logic gate).
        gate: String,
        /// The new logic function.
        kind: GateKind,
    },
    /// Re-optimize the dirty cone: minimal feasible width per dirty
    /// gate, in deterministic (level, index) order.
    Reoptimize {
        /// Bisection depth per gate, `1..=`[`MAX_REOPT_STEPS`].
        steps: u32,
    },
}

impl SessionOp {
    /// Parses the JSON wire form. Unknown fields are rejected so client
    /// typos fail loudly instead of silently no-oping.
    ///
    /// # Errors
    ///
    /// [`SessionError`] describing the malformation.
    pub fn from_json(doc: &Value) -> Result<SessionOp, SessionError> {
        let obj = doc.as_obj("session op")?;
        let kind = obj.req("op")?.as_str("op")?;
        let known: &[&str] = match kind {
            "resize" => &["op", "gate", "width"],
            "set_vt" => &["op", "gate", "vt"],
            "set_vdd" => &["op", "vdd"],
            "set_fc" => &["op", "fc"],
            "set_activity" => &["op", "activity"],
            "add_gate" => &["op", "name", "kind", "fanin"],
            "remove_gate" => &["op", "gate"],
            "rewire_fanin" => &["op", "gate", "fanin"],
            "swap_gate_kind" => &["op", "gate", "kind"],
            "reoptimize" => &["op", "steps"],
            other => {
                return Err(SessionError::new(format!("unknown op kind {other:?}")));
            }
        };
        if let Value::Obj(fields) = doc {
            for (key, _) in fields {
                if !known.contains(&key.as_str()) {
                    return Err(SessionError::new(format!(
                        "unknown field {key:?} for op {kind:?}"
                    )));
                }
            }
        }
        let op = match kind {
            "resize" => SessionOp::Resize {
                gate: obj.req("gate")?.as_str("gate")?.to_string(),
                width: float_field(obj.req("width")?, "width")?,
            },
            "set_vt" => SessionOp::SetVt {
                gate: obj.req("gate")?.as_str("gate")?.to_string(),
                vt: float_field(obj.req("vt")?, "vt")?,
            },
            "set_vdd" => SessionOp::SetVdd {
                vdd: float_field(obj.req("vdd")?, "vdd")?,
            },
            "set_fc" => SessionOp::SetFc {
                fc: float_field(obj.req("fc")?, "fc")?,
            },
            "set_activity" => SessionOp::SetActivity {
                activity: float_field(obj.req("activity")?, "activity")?,
            },
            "add_gate" => {
                let name = obj.req("name")?.as_str("name")?.to_string();
                let kind = kind_from_keyword(obj.req("kind")?.as_str("kind")?)?;
                let fanin = obj
                    .req("fanin")?
                    .as_arr("fanin")?
                    .iter()
                    .map(|v| v.as_str("fanin entry").map(str::to_string))
                    .collect::<Result<Vec<_>, _>>()?;
                SessionOp::AddGate { name, kind, fanin }
            }
            "remove_gate" => SessionOp::RemoveGate {
                gate: obj.req("gate")?.as_str("gate")?.to_string(),
            },
            "rewire_fanin" => {
                let fanin = obj
                    .req("fanin")?
                    .as_arr("fanin")?
                    .iter()
                    .map(|v| v.as_str("fanin entry").map(str::to_string))
                    .collect::<Result<Vec<_>, _>>()?;
                SessionOp::RewireFanin {
                    gate: obj.req("gate")?.as_str("gate")?.to_string(),
                    fanin,
                }
            }
            "swap_gate_kind" => SessionOp::SwapGateKind {
                gate: obj.req("gate")?.as_str("gate")?.to_string(),
                kind: kind_from_keyword(obj.req("kind")?.as_str("kind")?)?,
            },
            "reoptimize" => {
                let steps = match obj.opt("steps") {
                    Some(v) => v.as_u64("steps")? as u32,
                    None => DEFAULT_REOPT_STEPS,
                };
                if steps == 0 || steps > MAX_REOPT_STEPS {
                    return Err(SessionError::new(format!(
                        "`steps` must be within [1, {MAX_REOPT_STEPS}]"
                    )));
                }
                SessionOp::Reoptimize { steps }
            }
            _ => unreachable!("kind validated above"),
        };
        Ok(op)
    }

    /// Canonical (persisted) JSON form: hex-float numerics, stable
    /// field order. `from_json(to_json(op)) == op` bit-for-bit.
    pub fn to_json(&self) -> Value {
        let f = json::bits_f64;
        match self {
            SessionOp::Resize { gate, width } => Value::Obj(vec![
                ("op".into(), Value::Str("resize".into())),
                ("gate".into(), Value::Str(gate.clone())),
                ("width".into(), f(*width)),
            ]),
            SessionOp::SetVt { gate, vt } => Value::Obj(vec![
                ("op".into(), Value::Str("set_vt".into())),
                ("gate".into(), Value::Str(gate.clone())),
                ("vt".into(), f(*vt)),
            ]),
            SessionOp::SetVdd { vdd } => Value::Obj(vec![
                ("op".into(), Value::Str("set_vdd".into())),
                ("vdd".into(), f(*vdd)),
            ]),
            SessionOp::SetFc { fc } => Value::Obj(vec![
                ("op".into(), Value::Str("set_fc".into())),
                ("fc".into(), f(*fc)),
            ]),
            SessionOp::SetActivity { activity } => Value::Obj(vec![
                ("op".into(), Value::Str("set_activity".into())),
                ("activity".into(), f(*activity)),
            ]),
            SessionOp::AddGate { name, kind, fanin } => Value::Obj(vec![
                ("op".into(), Value::Str("add_gate".into())),
                ("name".into(), Value::Str(name.clone())),
                ("kind".into(), Value::Str(kind.bench_keyword().into())),
                (
                    "fanin".into(),
                    Value::Arr(fanin.iter().map(|n| Value::Str(n.clone())).collect()),
                ),
            ]),
            SessionOp::RemoveGate { gate } => Value::Obj(vec![
                ("op".into(), Value::Str("remove_gate".into())),
                ("gate".into(), Value::Str(gate.clone())),
            ]),
            SessionOp::RewireFanin { gate, fanin } => Value::Obj(vec![
                ("op".into(), Value::Str("rewire_fanin".into())),
                ("gate".into(), Value::Str(gate.clone())),
                (
                    "fanin".into(),
                    Value::Arr(fanin.iter().map(|n| Value::Str(n.clone())).collect()),
                ),
            ]),
            SessionOp::SwapGateKind { gate, kind } => Value::Obj(vec![
                ("op".into(), Value::Str("swap_gate_kind".into())),
                ("gate".into(), Value::Str(gate.clone())),
                ("kind".into(), Value::Str(kind.bench_keyword().into())),
            ]),
            SessionOp::Reoptimize { steps } => Value::Obj(vec![
                ("op".into(), Value::Str("reoptimize".into())),
                ("steps".into(), Value::Int(u64::from(*steps))),
            ]),
        }
    }

    /// Short kind tag for logs and metrics.
    pub fn kind_tag(&self) -> &'static str {
        match self {
            SessionOp::Resize { .. } => "resize",
            SessionOp::SetVt { .. } => "set_vt",
            SessionOp::SetVdd { .. } => "set_vdd",
            SessionOp::SetFc { .. } => "set_fc",
            SessionOp::SetActivity { .. } => "set_activity",
            SessionOp::AddGate { .. } => "add_gate",
            SessionOp::RemoveGate { .. } => "remove_gate",
            SessionOp::RewireFanin { .. } => "rewire_fanin",
            SessionOp::SwapGateKind { .. } => "swap_gate_kind",
            SessionOp::Reoptimize { .. } => "reoptimize",
        }
    }
}

/// Accepts both the client form (plain number) and the persisted form
/// (hex-bits string) for a float field.
fn float_field(v: &Value, what: &str) -> Result<f64, SessionError> {
    match v {
        Value::Str(_) => Ok(v.as_bits_f64(what)?),
        _ => Ok(v.as_number(what)?),
    }
}

/// Parses a `.bench`-style gate keyword (case-insensitive). `INPUT` is
/// rejected: structural edits only add logic.
fn kind_from_keyword(s: &str) -> Result<GateKind, SessionError> {
    let kind = match s.to_ascii_uppercase().as_str() {
        "AND" => GateKind::And,
        "OR" => GateKind::Or,
        "NAND" => GateKind::Nand,
        "NOR" => GateKind::Nor,
        "NOT" | "INV" => GateKind::Not,
        "BUF" | "BUFF" => GateKind::Buf,
        "XOR" => GateKind::Xor,
        "XNOR" => GateKind::Xnor,
        other => {
            return Err(SessionError::new(format!("unknown gate kind {other:?}")));
        }
    };
    Ok(kind)
}

/// What one applied op did to the session, for the HTTP response.
#[derive(Debug, Clone, Copy)]
pub struct OpOutcome {
    /// Session revision after the op (ops applied since creation).
    pub revision: u64,
    /// Gates whose delay entry moved during the incremental repair
    /// (dense rebuilds report the full gate count).
    pub gates_touched: usize,
    /// Gates whose width a [`SessionOp::Reoptimize`] changed.
    pub resized: usize,
    /// Whether the circuit currently meets the cycle-time constraint.
    pub feasible: bool,
    /// Critical path delay, seconds.
    pub critical_delay: f64,
    /// Effective cycle time (`skew / fc`), seconds.
    pub cycle_time: f64,
    /// Exact (index-order) energy total per cycle.
    pub energy: EnergyBreakdown,
    /// Gates currently marked dirty for the next re-optimize.
    pub dirty: usize,
}

/// Warm per-session state: the model, a self-consistent delay vector,
/// an incremental STA, an energy ledger, and the dirty set feeding the
/// re-optimization planner. All mutation goes through [`SessionState::apply`];
/// replaying the same ops over the same [`SessionParams`] reproduces
/// the state bit-for-bit.
pub struct SessionState {
    tech: Technology,
    model: CircuitModel,
    design: Design,
    fc: f64,
    activity: f64,
    skew: f64,
    default_vt: f64,
    default_width: f64,
    delays: Vec<f64>,
    sta: IncrementalSta,
    ledger: EnergyLedger,
    dirty: BTreeSet<String>,
    revision: u64,
}

impl SessionState {
    /// Builds the warm state: dense delays, forward-only STA, energy
    /// ledger.
    ///
    /// # Errors
    ///
    /// [`SessionError`] when `params` is out of range.
    pub fn new(netlist: Netlist, params: &SessionParams) -> Result<SessionState, SessionError> {
        let tech = Technology::dac97();
        params.validate(&tech)?;
        let design = Design::uniform(&netlist, params.vdd, params.vt, params.width);
        let model = CircuitModel::with_uniform_activity(
            &netlist,
            tech.clone(),
            ACTIVITY_PROBABILITY,
            params.activity,
        );
        let mut delays = Vec::new();
        model.delays_into(&design, &mut delays);
        let sta = IncrementalSta::forward_only(model.netlist(), &delays, params.skew / params.fc);
        let ledger = model.energy_ledger(&design, params.fc);
        Ok(SessionState {
            tech,
            model,
            design,
            fc: params.fc,
            activity: params.activity,
            skew: params.skew,
            default_vt: params.vt,
            default_width: params.width,
            delays,
            sta,
            ledger,
            dirty: BTreeSet::new(),
            revision: 0,
        })
    }

    /// Rebuilds a state from the creation parameters by replaying an
    /// op-log prefix. Deterministic ops over deterministic params mean
    /// the result is bit-identical to the live state that wrote the log.
    ///
    /// # Errors
    ///
    /// [`SessionError`] if construction or any op fails (a log written
    /// by `apply` never fails to replay; a hand-edited one can).
    pub fn replay(
        netlist: Netlist,
        params: &SessionParams,
        ops: &[SessionOp],
    ) -> Result<SessionState, SessionError> {
        let mut state = SessionState::new(netlist, params)?;
        for op in ops {
            state.apply(op)?;
        }
        Ok(state)
    }

    /// Applies one op, incrementally where the op's footprint allows.
    /// On error the state is unchanged (ops validate before mutating).
    ///
    /// # Errors
    ///
    /// [`SessionError`] naming the offending field or gate.
    pub fn apply(&mut self, op: &SessionOp) -> Result<OpOutcome, SessionError> {
        let (gates_touched, resized) = match op {
            SessionOp::Resize { gate, width } => {
                let id = self.logic_gate(gate, "resize")?;
                check_range("width", *width, self.tech.w_range)?;
                let touched = self.commit_width(id, *width);
                self.dirty.insert(gate.clone());
                (touched, 0)
            }
            SessionOp::SetVt { gate, vt } => {
                let id = self.logic_gate(gate, "set_vt")?;
                check_range("vt", *vt, self.tech.vt_range)?;
                self.design.vt[id.index()] = *vt;
                // Vt moves the gate's own drive and leakage; its fanins'
                // delays recompute to the same bits, so the width-change
                // repair cone is exactly the vt-change cone.
                let touched = self.repair_from(id);
                self.ledger.on_width_change(&self.model, &self.design, id);
                self.dirty.insert(gate.clone());
                (touched, 0)
            }
            SessionOp::SetVdd { vdd } => {
                check_range("vdd", *vdd, self.tech.vdd_range)?;
                self.design.vdd = *vdd;
                self.rebuild_dense();
                self.mark_all_dirty();
                (self.model.netlist().gate_count(), 0)
            }
            SessionOp::SetFc { fc } => {
                if !fc.is_finite() || *fc <= 0.0 {
                    return Err(SessionError::new("`fc` must be finite and positive"));
                }
                self.fc = *fc;
                // Delays are untouched; only the constraint and the
                // static-energy terms (∝ 1/fc) move.
                self.sta = IncrementalSta::forward_only(
                    self.model.netlist(),
                    &self.delays,
                    self.cycle_time(),
                );
                self.ledger = self.model.energy_ledger(&self.design, self.fc);
                self.mark_all_dirty();
                (0, 0)
            }
            SessionOp::SetActivity { activity } => {
                if !(0.0..=1.0).contains(activity) {
                    return Err(SessionError::new("`activity` must be within [0, 1]"));
                }
                self.activity = *activity;
                // Activity enters only the dynamic-energy terms, never
                // gate_delay, so the delay vector and STA stay valid.
                let netlist = self.model.netlist().clone();
                self.model = CircuitModel::with_uniform_activity(
                    &netlist,
                    self.tech.clone(),
                    ACTIVITY_PROBABILITY,
                    *activity,
                );
                self.ledger = self.model.energy_ledger(&self.design, self.fc);
                self.mark_all_dirty();
                (0, 0)
            }
            SessionOp::AddGate { name, kind, fanin } => {
                let touched = self.add_gate(name, *kind, fanin)?;
                (touched, 0)
            }
            SessionOp::RemoveGate { gate } => {
                let touched = self.remove_gate(gate)?;
                (touched, 0)
            }
            SessionOp::RewireFanin { gate, fanin } => {
                let touched = self.rewire_fanin(gate, fanin)?;
                (touched, 0)
            }
            SessionOp::SwapGateKind { gate, kind } => {
                let touched = self.swap_gate_kind(gate, *kind)?;
                (touched, 0)
            }
            SessionOp::Reoptimize { steps } => {
                if *steps == 0 || *steps > MAX_REOPT_STEPS {
                    return Err(SessionError::new(format!(
                        "`steps` must be within [1, {MAX_REOPT_STEPS}]"
                    )));
                }
                self.reoptimize(*steps)
            }
        };
        self.revision += 1;
        #[cfg(debug_assertions)]
        self.cross_check();
        Ok(OpOutcome {
            revision: self.revision,
            gates_touched,
            resized,
            feasible: self.sta.meets_constraint(),
            critical_delay: self.sta.critical_delay(),
            cycle_time: self.cycle_time(),
            energy: self.ledger.exact_total(),
            dirty: self.dirty.len(),
        })
    }

    /// Resolves a gate name to a non-input gate id.
    fn logic_gate(&self, name: &str, op: &str) -> Result<GateId, SessionError> {
        let id = self
            .model
            .netlist()
            .find(name)
            .ok_or_else(|| SessionError::new(format!("unknown gate {name:?}")))?;
        if self.model.netlist().gate(id).kind().is_input() {
            return Err(SessionError::new(format!(
                "cannot {op} primary input {name:?}"
            )));
        }
        Ok(id)
    }

    /// Journaled delay repair from `id` + staged STA commit. Returns
    /// how many delay entries moved.
    fn repair_from(&mut self, id: GateId) -> usize {
        let mut staged: Vec<u32> = Vec::new();
        self.model.update_delays_after_width_change_with(
            &self.design,
            &mut self.delays,
            id,
            |i, _| staged.push(i as u32),
        );
        for &i in &staged {
            self.sta
                .set_delay(GateId::new(i as usize), self.delays[i as usize]);
        }
        let _ = self.sta.commit();
        staged.len()
    }

    /// Applies a width permanently: repair + ledger refresh.
    fn commit_width(&mut self, id: GateId, w: f64) -> usize {
        self.design.width[id.index()] = w;
        let touched = self.repair_from(id);
        self.ledger.on_width_change(&self.model, &self.design, id);
        touched
    }

    /// Trial width probe: applies, checks feasibility, reverts
    /// bit-exactly (restore width, replay the journal in reverse, undo
    /// the STA commit) — the `IncrementalEval::try_width`/`revert`
    /// transaction inlined over owned state.
    fn probe_feasible(&mut self, id: GateId, w: f64) -> bool {
        let old_w = self.design.width[id.index()];
        self.design.width[id.index()] = w;
        let mut journal: Vec<(u32, f64)> = Vec::new();
        self.model.update_delays_after_width_change_with(
            &self.design,
            &mut self.delays,
            id,
            |i, old| journal.push((i as u32, old)),
        );
        for &(i, _) in &journal {
            self.sta
                .set_delay(GateId::new(i as usize), self.delays[i as usize]);
        }
        let _ = self.sta.commit();
        let feasible = self.sta.meets_constraint();
        self.design.width[id.index()] = old_w;
        for &(i, old) in journal.iter().rev() {
            self.delays[i as usize] = old;
        }
        self.sta.undo();
        feasible
    }

    /// Dirty-cone planner: for each dirty gate in (level, index) order,
    /// bisect for the minimal feasible width in the technology range
    /// (energy grows with width, so minimal feasible ≈ minimal energy,
    /// the paper's objective). Best-effort: a gate that cannot reach
    /// feasibility at any width keeps its current one.
    fn reoptimize(&mut self, steps: u32) -> (usize, usize) {
        let mut cone: Vec<GateId> = self
            .dirty
            .iter()
            .filter_map(|name| self.model.netlist().find(name))
            .filter(|&id| !self.model.netlist().gate(id).kind().is_input())
            .collect();
        let netlist = self.model.netlist();
        cone.sort_by_key(|&id| (netlist.level(id), id.index()));
        let (w_min, w_max) = self.tech.w_range;
        let mut touched = 0usize;
        let mut resized = 0usize;
        for id in cone {
            let current = self.design.width[id.index()];
            let chosen = if self.probe_feasible(id, w_min) {
                w_min
            } else if !self.probe_feasible(id, w_max) {
                current
            } else {
                let (mut lo, mut hi) = (w_min, w_max);
                for _ in 0..steps {
                    let mid = 0.5 * (lo + hi);
                    if self.probe_feasible(id, mid) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                hi
            };
            if chosen.to_bits() != current.to_bits() {
                touched += self.commit_width(id, chosen);
                resized += 1;
            }
        }
        self.dirty.clear();
        (touched, resized)
    }

    /// Structural add: rebuild the netlist with the new gate appended
    /// (index order of existing gates is preserved, so the design
    /// vectors extend in place), then rebuild densely — the wire model
    /// scales with gate count, so every delay legitimately moves.
    fn add_gate(
        &mut self,
        name: &str,
        kind: GateKind,
        fanin: &[String],
    ) -> Result<usize, SessionError> {
        if name.is_empty() {
            return Err(SessionError::new("`name` must be non-empty"));
        }
        if kind.is_input() {
            return Err(SessionError::new("cannot add a primary input"));
        }
        let old = self.model.netlist();
        if old.find(name).is_some() {
            return Err(SessionError::new(format!("gate {name:?} already exists")));
        }
        let mut b = NetlistBuilder::new(old.name());
        for g in old.gates() {
            if g.kind().is_input() {
                b.input(g.name()).map_err(to_session_error)?;
            } else {
                b.gate_by_id(g.name(), g.kind(), g.fanin().to_vec())
                    .map_err(to_session_error)?;
            }
        }
        for &o in old.outputs() {
            b.output(old.gate(o).name()).map_err(to_session_error)?;
        }
        b.record_flip_flops(old.flip_flop_count());
        let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
        b.gate(name, kind, &refs).map_err(to_session_error)?;
        let netlist = b.finish().map_err(to_session_error)?;
        self.design.vt.push(self.default_vt);
        self.design.width.push(self.default_width);
        self.model = CircuitModel::with_uniform_activity(
            &netlist,
            self.tech.clone(),
            ACTIVITY_PROBABILITY,
            self.activity,
        );
        self.rebuild_dense();
        self.dirty.insert(name.to_string());
        for f in fanin {
            if !self
                .model
                .netlist()
                .gate(self.model.netlist().find(f).expect("fanin exists"))
                .kind()
                .is_input()
            {
                self.dirty.insert(f.clone());
            }
        }
        Ok(self.model.netlist().gate_count())
    }

    /// Structural remove: only a leaf gate (no fanout, not an output,
    /// not an input) can go; everything downstream of its former
    /// drivers rebuilds densely.
    fn remove_gate(&mut self, name: &str) -> Result<usize, SessionError> {
        let old = self.model.netlist();
        let id = old
            .find(name)
            .ok_or_else(|| SessionError::new(format!("unknown gate {name:?}")))?;
        if old.gate(id).kind().is_input() {
            return Err(SessionError::new(format!(
                "cannot remove primary input {name:?}"
            )));
        }
        if old.is_output(id) {
            return Err(SessionError::new(format!(
                "cannot remove primary output {name:?}"
            )));
        }
        let fanout = old.fanout(id).len();
        if fanout > 0 {
            return Err(SessionError::new(format!(
                "gate {name:?} drives {fanout} gate(s); remove those first"
            )));
        }
        let fanin_names: Vec<String> = old
            .gate(id)
            .fanin()
            .iter()
            .map(|&f| old.gate(f).name().to_string())
            .collect();
        let mut b = NetlistBuilder::new(old.name());
        for g in old.gates() {
            if g.name() == name {
                continue;
            }
            if g.kind().is_input() {
                b.input(g.name()).map_err(to_session_error)?;
            } else {
                // Rebuild by fanin *names*: ids above the removed index
                // shift down by one.
                let fan: Vec<&str> = g.fanin().iter().map(|&f| old.gate(f).name()).collect();
                b.gate(g.name(), g.kind(), &fan).map_err(to_session_error)?;
            }
        }
        for &o in old.outputs() {
            b.output(old.gate(o).name()).map_err(to_session_error)?;
        }
        b.record_flip_flops(old.flip_flop_count());
        let netlist = b.finish().map_err(to_session_error)?;
        self.design.vt.remove(id.index());
        self.design.width.remove(id.index());
        self.model = CircuitModel::with_uniform_activity(
            &netlist,
            self.tech.clone(),
            ACTIVITY_PROBABILITY,
            self.activity,
        );
        self.rebuild_dense();
        self.dirty.remove(name);
        for f in fanin_names {
            let fid = self
                .model
                .netlist()
                .find(&f)
                .expect("fanin survives removal");
            if !self.model.netlist().gate(fid).kind().is_input() {
                self.dirty.insert(f);
            }
        }
        Ok(self.model.netlist().gate_count())
    }

    /// Structural rewire: replace a logic gate's fanin list. The graph
    /// re-levelizes through [`SessionState::rebuild_structural`], so the
    /// new drivers may sit anywhere in the current index order as long
    /// as the result stays acyclic. The gate and its old and new drivers
    /// are marked dirty for the next re-optimize.
    fn rewire_fanin(&mut self, name: &str, fanin: &[String]) -> Result<usize, SessionError> {
        if fanin.is_empty() {
            return Err(SessionError::new("`fanin` must be non-empty"));
        }
        let (gates, old_fanin) = {
            let old = self.model.netlist();
            let id = old
                .find(name)
                .ok_or_else(|| SessionError::new(format!("unknown gate {name:?}")))?;
            if old.gate(id).kind().is_input() {
                return Err(SessionError::new(format!(
                    "cannot rewire primary input {name:?}"
                )));
            }
            let old_fanin: Vec<String> = old
                .gate(id)
                .fanin()
                .iter()
                .map(|&f| old.gate(f).name().to_string())
                .collect();
            let mut gates = gate_descs(old);
            gates[id.index()].2 = fanin.to_vec();
            (gates, old_fanin)
        };
        // The arity of the (unchanged) kind must admit the new count;
        // the builder validates that during the rebuild.
        self.rebuild_structural(gates)?;
        self.dirty.insert(name.to_string());
        for f in old_fanin.iter().chain(fanin.iter()) {
            let n = self.model.netlist();
            if let Some(fid) = n.find(f) {
                if !n.gate(fid).kind().is_input() {
                    self.dirty.insert(f.clone());
                }
            }
        }
        Ok(self.model.netlist().gate_count())
    }

    /// Structural retype: swap a logic gate's function in place. Gate
    /// order and the design vectors are untouched (no edges move); the
    /// model rebuilds because a kind change propagates through the
    /// downstream switching activities. The gate, its drivers, and its
    /// direct fanout are marked dirty.
    fn swap_gate_kind(&mut self, name: &str, kind: GateKind) -> Result<usize, SessionError> {
        if kind.is_input() {
            return Err(SessionError::new("cannot swap a gate to INPUT"));
        }
        let (gates, neighbors) = {
            let old = self.model.netlist();
            let id = old
                .find(name)
                .ok_or_else(|| SessionError::new(format!("unknown gate {name:?}")))?;
            if old.gate(id).kind().is_input() {
                return Err(SessionError::new(format!(
                    "cannot swap primary input {name:?}"
                )));
            }
            let neighbors: Vec<String> = old
                .gate(id)
                .fanin()
                .iter()
                .chain(old.fanout(id).iter())
                .map(|&g| old.gate(g).name().to_string())
                .collect();
            let mut gates = gate_descs(old);
            gates[id.index()].1 = kind;
            (gates, neighbors)
        };
        self.rebuild_structural(gates)?;
        self.dirty.insert(name.to_string());
        for f in &neighbors {
            let n = self.model.netlist();
            if let Some(fid) = n.find(f) {
                if !n.gate(fid).kind().is_input() {
                    self.dirty.insert(f.clone());
                }
            }
        }
        Ok(self.model.netlist().gate_count())
    }

    /// Rebuilds the netlist from edited gate descriptors: a stable
    /// topological re-sort (Kahn's algorithm draining ready gates in
    /// original index order, so an edit that inverts no edges preserves
    /// the current order exactly), the design vectors permuted by gate
    /// name, then a full model + dense rebuild. Fails — leaving the
    /// state untouched — on an unknown fanin name, a combinational
    /// cycle, or an arity the builder rejects.
    fn rebuild_structural(
        &mut self,
        gates: Vec<(String, GateKind, Vec<String>)>,
    ) -> Result<(), SessionError> {
        let (netlist_name, outputs, ffs, old_vals) = {
            let old = self.model.netlist();
            let outputs: Vec<String> = old
                .outputs()
                .iter()
                .map(|&o| old.gate(o).name().to_string())
                .collect();
            let old_vals: HashMap<String, (f64, f64)> = old
                .gates()
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    (
                        g.name().to_string(),
                        (self.design.vt[i], self.design.width[i]),
                    )
                })
                .collect();
            (
                old.name().to_string(),
                outputs,
                old.flip_flop_count(),
                old_vals,
            )
        };
        let pos: HashMap<&str, usize> = gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.0.as_str(), i))
            .collect();
        let mut indeg = vec![0usize; gates.len()];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
        for (i, (_, _, fanin)) in gates.iter().enumerate() {
            for f in fanin {
                let &j = pos
                    .get(f.as_str())
                    .ok_or_else(|| SessionError::new(format!("unknown fanin {f:?}")))?;
                out_edges[j].push(i);
                indeg[i] += 1;
            }
        }
        let mut ready: BinaryHeap<Reverse<usize>> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| Reverse(i))
            .collect();
        let mut order: Vec<usize> = Vec::with_capacity(gates.len());
        while let Some(Reverse(i)) = ready.pop() {
            order.push(i);
            for &k in &out_edges[i] {
                indeg[k] -= 1;
                if indeg[k] == 0 {
                    ready.push(Reverse(k));
                }
            }
        }
        if order.len() != gates.len() {
            return Err(SessionError::new("edit creates a combinational cycle"));
        }
        let mut b = NetlistBuilder::new(&netlist_name);
        for &i in &order {
            let (name, kind, fanin) = &gates[i];
            if kind.is_input() {
                b.input(name).map_err(to_session_error)?;
            } else {
                let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
                b.gate(name, *kind, &refs).map_err(to_session_error)?;
            }
        }
        for o in &outputs {
            b.output(o).map_err(to_session_error)?;
        }
        b.record_flip_flops(ffs);
        let netlist = b.finish().map_err(to_session_error)?;
        let mut vt = Vec::with_capacity(netlist.gate_count());
        let mut width = Vec::with_capacity(netlist.gate_count());
        for g in netlist.gates() {
            let &(v, w) = old_vals.get(g.name()).expect("gate survives the rebuild");
            vt.push(v);
            width.push(w);
        }
        self.design.vt = vt;
        self.design.width = width;
        self.model = CircuitModel::with_uniform_activity(
            &netlist,
            self.tech.clone(),
            ACTIVITY_PROBABILITY,
            self.activity,
        );
        self.rebuild_dense();
        Ok(())
    }

    /// Dense rebuild of delays, STA, and ledger from the current model
    /// and design.
    fn rebuild_dense(&mut self) {
        self.model.delays_into(&self.design, &mut self.delays);
        self.sta =
            IncrementalSta::forward_only(self.model.netlist(), &self.delays, self.cycle_time());
        self.ledger = self.model.energy_ledger(&self.design, self.fc);
    }

    fn mark_all_dirty(&mut self) {
        for g in self.model.netlist().gates() {
            if !g.kind().is_input() {
                self.dirty.insert(g.name().to_string());
            }
        }
    }

    /// The dense cross-check: the warm delay vector, arrival times,
    /// and ledger total must be bitwise-identical to a from-scratch
    /// evaluation — the same discipline as the SoA scalar cross-check.
    /// Debug builds run this after every op.
    pub fn cross_check(&self) {
        let mut dense = Vec::new();
        self.model.delays_into(&self.design, &mut dense);
        assert_eq!(dense.len(), self.delays.len(), "delay vector length drift");
        for (i, (&d, &w)) in dense.iter().zip(self.delays.iter()).enumerate() {
            assert_eq!(
                d.to_bits(),
                w.to_bits(),
                "session delay drift at gate {i}: dense {d:e} vs warm {w:e}"
            );
        }
        let dense_sta =
            IncrementalSta::forward_only(self.model.netlist(), &dense, self.cycle_time());
        for (i, (&a, &b)) in dense_sta
            .arrivals()
            .iter()
            .zip(self.sta.arrivals().iter())
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "session arrival drift at gate {i}"
            );
        }
        assert_eq!(
            dense_sta.critical_delay().to_bits(),
            self.sta.critical_delay().to_bits(),
            "session critical-delay drift"
        );
        let dense_total = self.model.total_energy(&self.design, self.fc);
        let exact = self.ledger.exact_total();
        assert_eq!(
            dense_total.static_.to_bits(),
            exact.static_.to_bits(),
            "session static-energy drift"
        );
        assert_eq!(
            dense_total.dynamic.to_bits(),
            exact.dynamic.to_bits(),
            "session dynamic-energy drift"
        );
        self.sta.assert_consistent();
    }

    /// Effective cycle time, `skew / fc` (matches
    /// `Problem::effective_cycle_time`).
    pub fn cycle_time(&self) -> f64 {
        self.skew / self.fc
    }

    /// Ops applied since creation.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The bound netlist (post any structural edits).
    pub fn netlist(&self) -> &Netlist {
        self.model.netlist()
    }

    /// The current design point.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Current self-consistent per-gate delays.
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }

    /// Current per-gate arrival times.
    pub fn arrivals(&self) -> &[f64] {
        self.sta.arrivals()
    }

    /// Current critical path delay, seconds.
    pub fn critical_delay(&self) -> f64 {
        self.sta.critical_delay()
    }

    /// Whether the circuit meets the cycle-time constraint.
    pub fn feasible(&self) -> bool {
        self.sta.meets_constraint()
    }

    /// Exact (index-order) energy per cycle; bitwise-identical to
    /// `CircuitModel::total_energy` over the same design.
    pub fn energy(&self) -> EnergyBreakdown {
        self.ledger.exact_total()
    }

    /// Clock frequency target, Hz.
    pub fn fc(&self) -> f64 {
        self.fc
    }

    /// Uniform input activity density.
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Usable clock fraction.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Names currently marked dirty for the next re-optimize.
    pub fn dirty(&self) -> &BTreeSet<String> {
        &self.dirty
    }

    /// Coarse estimate of this warm state's in-memory footprint, bytes.
    /// Counts the per-gate vectors (delays, arrivals, design, model
    /// coefficients), the fanout adjacency, and the name strings — the
    /// terms that scale with circuit size. Used by the service's
    /// memory-pressure governor; accuracy to a small constant factor is
    /// all the shedding thresholds need.
    pub fn approx_bytes(&self) -> u64 {
        let n = self.model.netlist();
        let gates = n.gate_count() as u64;
        let edges: u64 = n.gates().iter().map(|g| g.fanin().len() as u64).sum();
        let names: u64 = n.gates().iter().map(|g| g.name().len() as u64 + 48).sum();
        let dirty: u64 = self.dirty.iter().map(|s| s.len() as u64 + 64).sum();
        gates * 176 + edges * 24 + names + dirty
    }

    /// Full-state snapshot in the checkpoint encoding: rebuilding via
    /// [`SessionState::from_snapshot`] yields a bitwise-identical
    /// state. This is what the service's periodic checkpoint persists.
    pub fn snapshot(&self) -> Value {
        let n = self.model.netlist();
        let gates: Vec<Value> = n
            .gates()
            .iter()
            .map(|g| {
                Value::Arr(vec![
                    Value::Str(g.name().to_string()),
                    Value::Str(g.kind().bench_keyword().to_string()),
                    Value::Arr(
                        g.fanin()
                            .iter()
                            .map(|&f| Value::Str(n.gate(f).name().to_string()))
                            .collect(),
                    ),
                ])
            })
            .collect();
        let outputs: Vec<Value> = n
            .outputs()
            .iter()
            .map(|&o| Value::Str(n.gate(o).name().to_string()))
            .collect();
        Value::Obj(vec![
            (
                "schema".into(),
                Value::Str("minpower-session-snapshot".into()),
            ),
            ("version".into(), Value::Int(1)),
            ("revision".into(), Value::Int(self.revision)),
            ("fc".into(), json::bits_f64(self.fc)),
            ("activity".into(), json::bits_f64(self.activity)),
            ("skew".into(), json::bits_f64(self.skew)),
            ("vdd".into(), json::bits_f64(self.design.vdd)),
            ("default_vt".into(), json::bits_f64(self.default_vt)),
            ("default_width".into(), json::bits_f64(self.default_width)),
            ("netlist_name".into(), Value::Str(n.name().to_string())),
            ("gates".into(), Value::Arr(gates)),
            ("outputs".into(), Value::Arr(outputs)),
            ("flip_flops".into(), Value::Int(n.flip_flop_count() as u64)),
            ("vt".into(), json::bits_f64_array(&self.design.vt)),
            ("width".into(), json::bits_f64_array(&self.design.width)),
            (
                "dirty".into(),
                Value::Arr(self.dirty.iter().map(|s| Value::Str(s.clone())).collect()),
            ),
        ])
    }

    /// Rebuilds a state from a [`SessionState::snapshot`] document.
    /// Delays, STA, and ledger are recomputed densely — bit-identical
    /// to the live values by the incremental contract.
    ///
    /// # Errors
    ///
    /// [`SessionError`] on a malformed or inconsistent document.
    pub fn from_snapshot(doc: &Value) -> Result<SessionState, SessionError> {
        let obj = doc.as_obj("session snapshot")?;
        let schema = obj.req("schema")?.as_str("schema")?;
        if schema != "minpower-session-snapshot" {
            return Err(SessionError::new(format!("unexpected schema {schema:?}")));
        }
        let version = obj.req("version")?.as_u64("version")?;
        if version != 1 {
            return Err(SessionError::new(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let mut b = NetlistBuilder::new(obj.req("netlist_name")?.as_str("netlist_name")?);
        for g in obj.req("gates")?.as_arr("gates")? {
            let parts = g.as_arr("gate entry")?;
            if parts.len() != 3 {
                return Err(SessionError::new("gate entry must be [name, kind, fanin]"));
            }
            let name = parts[0].as_str("gate name")?;
            let kw = parts[1].as_str("gate kind")?;
            let fanin: Vec<&str> = parts[2]
                .as_arr("gate fanin")?
                .iter()
                .map(|v| v.as_str("fanin name"))
                .collect::<Result<Vec<_>, _>>()?;
            if kw.eq_ignore_ascii_case("INPUT") {
                b.input(name).map_err(to_session_error)?;
            } else {
                b.gate(name, kind_from_keyword(kw)?, &fanin)
                    .map_err(to_session_error)?;
            }
        }
        for o in obj.req("outputs")?.as_arr("outputs")? {
            b.output(o.as_str("output name")?)
                .map_err(to_session_error)?;
        }
        b.record_flip_flops(obj.req("flip_flops")?.as_u64("flip_flops")? as usize);
        let netlist = b.finish().map_err(to_session_error)?;
        let params = SessionParams {
            fc: obj.req("fc")?.as_bits_f64("fc")?,
            activity: obj.req("activity")?.as_bits_f64("activity")?,
            skew: obj.req("skew")?.as_bits_f64("skew")?,
            vdd: obj.req("vdd")?.as_bits_f64("vdd")?,
            vt: obj.req("default_vt")?.as_bits_f64("default_vt")?,
            width: obj.req("default_width")?.as_bits_f64("default_width")?,
        };
        let vt = obj.req("vt")?.as_bits_f64_vec("vt")?;
        let width = obj.req("width")?.as_bits_f64_vec("width")?;
        if vt.len() != netlist.gate_count() || width.len() != netlist.gate_count() {
            return Err(SessionError::new(
                "snapshot design vectors disagree with the gate count",
            ));
        }
        let mut state = SessionState::new(netlist, &params)?;
        state.design.vt = vt;
        state.design.width = width;
        state.rebuild_dense();
        state.revision = obj.req("revision")?.as_u64("revision")?;
        for d in obj.req("dirty")?.as_arr("dirty")? {
            state.dirty.insert(d.as_str("dirty name")?.to_string());
        }
        Ok(state)
    }
}

fn to_session_error(e: impl fmt::Display) -> SessionError {
    SessionError::new(e.to_string())
}

/// Owned `(name, kind, fanin names)` descriptors in index order — the
/// editable form of a netlist for structural rebuilds.
fn gate_descs(n: &Netlist) -> Vec<(String, GateKind, Vec<String>)> {
    n.gates()
        .iter()
        .map(|g| {
            (
                g.name().to_string(),
                g.kind(),
                g.fanin()
                    .iter()
                    .map(|&f| n.gate(f).name().to_string())
                    .collect(),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Op-log: one CRC-framed record per applied op, append + fsync.
// ---------------------------------------------------------------------------

/// Magic token opening every op-log record.
pub const OPLOG_MAGIC: &str = "minpower-oplog";

/// Op-log record format version.
pub const OPLOG_VERSION: u32 = 1;

static OPLOG_TORN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Resets the fault-site call indices (test isolation; run fault tests
/// single-threaded).
#[cfg(feature = "faults")]
pub fn reset_fault_indices() {
    OPLOG_TORN_SEQ.store(0, Ordering::Relaxed);
}

/// Appends one op record — `"minpower-oplog <version> <len> <crc32>\n"`
/// then canonical op JSON then `"\n"` — and fsyncs, returning the bytes
/// written (the service's disk accounting sums them against the session
/// quota). The `session.oplog.torn` fault site truncates the record
/// mid-payload while still reporting success; the torn tail is caught
/// by the CRC on the next read.
///
/// # Errors
///
/// The underlying I/O error; the caller should drop its warm state so
/// the session reconverges to the durable log.
pub fn append_op(path: &Path, op: &SessionOp) -> std::io::Result<u64> {
    let payload = op.to_json().render();
    let bytes = payload.as_bytes();
    let crc = crate::store::crc32(bytes);
    let header = format!("{OPLOG_MAGIC} {OPLOG_VERSION} {} {crc:08x}\n", bytes.len());
    let mut record = header.into_bytes();
    let header_len = record.len();
    record.extend_from_slice(bytes);
    record.push(b'\n');
    let seq = OPLOG_TORN_SEQ.fetch_add(1, Ordering::Relaxed);
    if minpower_engine::faults::should_fire("session.oplog.torn", seq) {
        record.truncate(header_len + bytes.len() / 2);
    }
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(&record)?;
    file.sync_data()?;
    Ok(record.len() as u64)
}

/// Result of scanning an op-log.
#[derive(Debug)]
pub struct OplogReplay {
    /// Ops decoded from the longest valid record prefix.
    pub ops: Vec<SessionOp>,
    /// Whether a torn or corrupt tail was dropped.
    pub truncated: bool,
}

/// Reads the longest valid prefix of an op-log. A missing file is an
/// empty log; a torn or corrupt tail (crash mid-append, injected torn
/// write) is dropped and reported via [`OplogReplay::truncated`] —
/// every record before it replays normally.
pub fn read_oplog(path: &Path) -> OplogReplay {
    let Ok(bytes) = fs::read(path) else {
        return OplogReplay {
            ops: Vec::new(),
            truncated: false,
        };
    };
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            return OplogReplay {
                ops,
                truncated: true,
            };
        };
        let header = &bytes[pos..pos + nl];
        let parsed = std::str::from_utf8(header).ok().and_then(|line| {
            let mut it = line.split(' ');
            let magic = it.next()?;
            let version = it.next()?.parse::<u32>().ok()?;
            let len = it.next()?.parse::<usize>().ok()?;
            let crc = u32::from_str_radix(it.next()?, 16).ok()?;
            if magic != OPLOG_MAGIC || version != OPLOG_VERSION || it.next().is_some() {
                return None;
            }
            Some((len, crc))
        });
        let Some((len, crc)) = parsed else {
            return OplogReplay {
                ops,
                truncated: true,
            };
        };
        let start = pos + nl + 1;
        if start + len > bytes.len() {
            return OplogReplay {
                ops,
                truncated: true,
            };
        }
        let payload = &bytes[start..start + len];
        if crate::store::crc32(payload) != crc {
            return OplogReplay {
                ops,
                truncated: true,
            };
        }
        let op = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| json::parse(text).ok())
            .and_then(|doc| SessionOp::from_json(&doc).ok());
        let Some(op) = op else {
            return OplogReplay {
                ops,
                truncated: true,
            };
        };
        ops.push(op);
        pos = start + len;
        if bytes.get(pos) == Some(&b'\n') {
            pos += 1;
        }
    }
    OplogReplay {
        ops,
        truncated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestSeq;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: TestSeq = TestSeq::new(0);
        let dir = std::env::temp_dir().join(format!(
            "minpower-session-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    /// A small two-level netlist with named gates.
    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        for name in ["a", "b", "c", "d"] {
            b.input(name).unwrap();
        }
        b.gate("n1", GateKind::Nand, &["a", "b"]).unwrap();
        b.gate("n2", GateKind::Nor, &["c", "d"]).unwrap();
        b.gate("n3", GateKind::And, &["n1", "n2"]).unwrap();
        b.gate("n4", GateKind::Xor, &["n1", "c"]).unwrap();
        b.output("n3").unwrap();
        b.output("n4").unwrap();
        b.finish().unwrap()
    }

    fn params() -> SessionParams {
        SessionParams::default()
    }

    #[test]
    fn op_json_round_trips_bitwise() {
        let ops = vec![
            SessionOp::Resize {
                gate: "n1".into(),
                width: f64::from_bits(2.340625e0_f64.to_bits() + 1),
            },
            SessionOp::SetVt {
                gate: "n2".into(),
                vt: 0.512345678901234,
            },
            SessionOp::SetVdd { vdd: 2.25 },
            SessionOp::SetFc { fc: 312.5e6 },
            SessionOp::SetActivity { activity: 0.275 },
            SessionOp::AddGate {
                name: "x0".into(),
                kind: GateKind::Nand,
                fanin: vec!["n1".into(), "n2".into()],
            },
            SessionOp::RemoveGate { gate: "x0".into() },
            SessionOp::Reoptimize { steps: 9 },
        ];
        for op in ops {
            let doc = json::parse(&op.to_json().render()).unwrap();
            assert_eq!(SessionOp::from_json(&doc).unwrap(), op);
        }
    }

    #[test]
    fn client_form_plain_numbers_accepted() {
        let doc = json::parse(r#"{"op":"resize","gate":"n1","width":2.5}"#).unwrap();
        let op = SessionOp::from_json(&doc).unwrap();
        assert_eq!(
            op,
            SessionOp::Resize {
                gate: "n1".into(),
                width: 2.5
            }
        );
        let bad = json::parse(r#"{"op":"resize","gate":"n1","witdh":2.5}"#).unwrap();
        assert!(SessionOp::from_json(&bad).is_err(), "typo must be rejected");
    }

    #[test]
    fn resize_matches_dense_recomputation() {
        let mut s = SessionState::new(sample(), &params()).unwrap();
        let out = s
            .apply(&SessionOp::Resize {
                gate: "n1".into(),
                width: 3.5,
            })
            .unwrap();
        assert!(out.gates_touched >= 1);
        // cross_check runs in debug; assert explicitly for release too.
        s.cross_check();
        assert_eq!(s.dirty().len(), 1);
    }

    #[test]
    fn operating_point_edits_stay_consistent() {
        let mut s = SessionState::new(sample(), &params()).unwrap();
        s.apply(&SessionOp::SetVt {
            gate: "n2".into(),
            vt: 0.5,
        })
        .unwrap();
        s.apply(&SessionOp::SetVdd { vdd: 2.2 }).unwrap();
        s.apply(&SessionOp::SetFc { fc: 250.0e6 }).unwrap();
        s.apply(&SessionOp::SetActivity { activity: 0.4 }).unwrap();
        s.cross_check();
    }

    #[test]
    fn structural_edits_rebuild_consistently() {
        let mut s = SessionState::new(sample(), &params()).unwrap();
        s.apply(&SessionOp::AddGate {
            name: "x0".into(),
            kind: GateKind::Nand,
            fanin: vec!["n1".into(), "n2".into()],
        })
        .unwrap();
        s.cross_check();
        assert!(s.netlist().find("x0").is_some());
        // x0 drives nothing, so it can be removed again.
        s.apply(&SessionOp::RemoveGate { gate: "x0".into() })
            .unwrap();
        s.cross_check();
        assert!(s.netlist().find("x0").is_none());
        // n1 drives n3/n4: removal must be rejected.
        assert!(s
            .apply(&SessionOp::RemoveGate { gate: "n1".into() })
            .is_err());
        assert!(s
            .apply(&SessionOp::RemoveGate { gate: "a".into() })
            .is_err());
    }

    #[test]
    fn reoptimize_clears_dirty_and_keeps_feasibility() {
        let mut s = SessionState::new(sample(), &params()).unwrap();
        assert!(s.feasible(), "sample must start feasible");
        let before = s.energy().total();
        s.apply(&SessionOp::Resize {
            gate: "n3".into(),
            width: 8.0,
        })
        .unwrap();
        let out = s
            .apply(&SessionOp::Reoptimize {
                steps: DEFAULT_REOPT_STEPS,
            })
            .unwrap();
        assert_eq!(out.dirty, 0);
        assert!(out.feasible);
        assert!(
            s.energy().total() <= before,
            "minimal feasible width must not cost energy vs the start"
        );
        s.cross_check();
    }

    #[test]
    fn replay_is_bit_identical() {
        let ops = vec![
            SessionOp::Resize {
                gate: "n1".into(),
                width: 3.25,
            },
            SessionOp::SetFc { fc: 280.0e6 },
            SessionOp::AddGate {
                name: "x0".into(),
                kind: GateKind::Or,
                fanin: vec!["n1".into(), "n2".into()],
            },
            SessionOp::Reoptimize { steps: 8 },
            SessionOp::SetActivity { activity: 0.35 },
        ];
        let mut live = SessionState::new(sample(), &params()).unwrap();
        for op in &ops {
            live.apply(op).unwrap();
        }
        let replayed = SessionState::replay(sample(), &params(), &ops).unwrap();
        assert_eq!(live.snapshot().render(), replayed.snapshot().render());
        for (a, b) in live.delays().iter().zip(replayed.delays().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            live.energy().total().to_bits(),
            replayed.energy().total().to_bits()
        );
    }

    #[test]
    fn snapshot_round_trips_bitwise() {
        let mut s = SessionState::new(sample(), &params()).unwrap();
        s.apply(&SessionOp::Resize {
            gate: "n2".into(),
            width: 4.75,
        })
        .unwrap();
        s.apply(&SessionOp::SetVdd { vdd: 2.1 }).unwrap();
        let doc = json::parse(&s.snapshot().render()).unwrap();
        let restored = SessionState::from_snapshot(&doc).unwrap();
        assert_eq!(s.snapshot().render(), restored.snapshot().render());
        assert_eq!(
            s.critical_delay().to_bits(),
            restored.critical_delay().to_bits()
        );
        restored.cross_check();
    }

    #[test]
    fn oplog_round_trips_and_tolerates_torn_tail() {
        let dir = scratch_dir("oplog");
        let path = dir.join("session.oplog");
        let ops = vec![
            SessionOp::Resize {
                gate: "n1".into(),
                width: 2.5,
            },
            SessionOp::SetFc { fc: 310.0e6 },
            SessionOp::Reoptimize { steps: 6 },
        ];
        for op in &ops {
            append_op(&path, op).unwrap();
        }
        let replay = read_oplog(&path);
        assert!(!replay.truncated);
        assert_eq!(replay.ops, ops);
        // Tear the tail mid-record: the valid prefix must survive.
        let mut bytes = fs::read(&path).unwrap();
        let keep = bytes.len() - 7;
        bytes.truncate(keep);
        fs::write(&path, &bytes).unwrap();
        let torn = read_oplog(&path);
        assert!(torn.truncated);
        assert_eq!(torn.ops, ops[..2]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_ops_leave_state_unchanged() {
        let mut s = SessionState::new(sample(), &params()).unwrap();
        let snap = s.snapshot().render();
        for op in [
            SessionOp::Resize {
                gate: "missing".into(),
                width: 2.0,
            },
            SessionOp::Resize {
                gate: "a".into(),
                width: 2.0,
            },
            SessionOp::Resize {
                gate: "n1".into(),
                width: 1.0e9,
            },
            SessionOp::SetVdd { vdd: -1.0 },
            SessionOp::AddGate {
                name: "n1".into(),
                kind: GateKind::And,
                fanin: vec!["a".into()],
            },
        ] {
            assert!(s.apply(&op).is_err(), "{op:?} must be rejected");
        }
        assert_eq!(s.snapshot().render(), snap);
        assert_eq!(s.revision(), 0);
    }

    #[test]
    fn rewire_and_swap_json_round_trip_bitwise() {
        let ops = vec![
            SessionOp::RewireFanin {
                gate: "n4".into(),
                fanin: vec!["n2".into(), "d".into()],
            },
            SessionOp::SwapGateKind {
                gate: "n3".into(),
                kind: GateKind::Nor,
            },
        ];
        for op in ops {
            let doc = json::parse(&op.to_json().render()).unwrap();
            assert_eq!(SessionOp::from_json(&doc).unwrap(), op);
        }
    }

    #[test]
    fn rewire_and_swap_replay_bit_identically() {
        let ops = vec![
            SessionOp::RewireFanin {
                gate: "n4".into(),
                fanin: vec!["n2".into(), "d".into()],
            },
            SessionOp::SwapGateKind {
                gate: "n3".into(),
                kind: GateKind::Nor,
            },
            SessionOp::Reoptimize { steps: 6 },
        ];
        let mut live = SessionState::new(sample(), &params()).unwrap();
        for op in &ops {
            live.apply(op).unwrap();
            live.cross_check();
        }
        let n = live.netlist();
        let n4 = n.find("n4").unwrap();
        let fanin: Vec<&str> = n
            .gate(n4)
            .fanin()
            .iter()
            .map(|&f| n.gate(f).name())
            .collect();
        assert_eq!(fanin, ["n2", "d"]);
        assert_eq!(n.gate(n.find("n3").unwrap()).kind(), GateKind::Nor);
        let replayed = SessionState::replay(sample(), &params(), &ops).unwrap();
        assert_eq!(live.snapshot().render(), replayed.snapshot().render());
    }

    #[test]
    fn rewire_and_swap_reject_invalid_edits_untouched() {
        let mut s = SessionState::new(sample(), &params()).unwrap();
        let snap = s.snapshot().render();
        for op in [
            // n3 depends on n1, so feeding n3 back into n1 is a cycle.
            SessionOp::RewireFanin {
                gate: "n1".into(),
                fanin: vec!["n3".into(), "b".into()],
            },
            SessionOp::RewireFanin {
                gate: "a".into(),
                fanin: vec!["b".into()],
            },
            SessionOp::RewireFanin {
                gate: "n1".into(),
                fanin: vec!["ghost".into()],
            },
            SessionOp::RewireFanin {
                gate: "n1".into(),
                fanin: vec![],
            },
            // Not is unary; n3 has two fanins.
            SessionOp::SwapGateKind {
                gate: "n3".into(),
                kind: GateKind::Not,
            },
            SessionOp::SwapGateKind {
                gate: "a".into(),
                kind: GateKind::Nand,
            },
        ] {
            assert!(s.apply(&op).is_err(), "{op:?} must be rejected");
        }
        assert_eq!(
            s.snapshot().render(),
            snap,
            "rejected edits must not mutate"
        );
        assert_eq!(s.revision(), 0);
    }
}
