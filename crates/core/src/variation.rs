//! Worst-case threshold margining: the process-fluctuation study of
//! Fig. 2(a).
//!
//! Threshold voltage varies with process fluctuations. The paper modifies
//! the optimizer to use **worst-case** thresholds during delay and power
//! computation: delays are checked at `V_t(1 + tol)` (slow corner) and the
//! reported power uses `V_t(1 − tol)` (leaky corner), so the optimized
//! circuit is *guaranteed* to meet the cycle time under the stated
//! variation and the quoted savings are pessimistic. Rising tolerance
//! erodes the achievable savings — the trend Fig. 2(a) plots for s298.

use crate::error::OptimizeError;
use crate::problem::Problem;
use crate::result::OptimizationResult;
use crate::search::{Optimizer, SearchOptions};

/// Optimizes under a ±`tolerance` fractional threshold variation.
///
/// Equivalent to running [`Optimizer`] with
/// [`SearchOptions::vt_tolerance`] set; provided as a named entry point
/// because it is a headline experiment of the paper.
///
/// # Errors
///
/// Same failure modes as [`Optimizer::run`], plus
/// [`OptimizeError::BadOption`] if `tolerance` is outside `[0, 1)`.
///
/// # Example
///
/// ```
/// use minpower_core::{variation, Problem};
/// use minpower_device::Technology;
/// use minpower_models::CircuitModel;
/// use minpower_netlist::{GateKind, NetlistBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut b = NetlistBuilder::new("t");
/// # b.input("a")?;
/// # b.gate("x", GateKind::Nand, &["a", "a"])?;
/// # b.gate("y", GateKind::Nor, &["x", "a"])?;
/// # b.output("y")?;
/// # let n = b.finish()?;
/// let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
/// let problem = Problem::new(model, 200.0e6);
/// let exact = variation::optimize_with_tolerance(&problem, 0.0)?;
/// let margined = variation::optimize_with_tolerance(&problem, 0.15)?;
/// assert!(margined.energy.total() >= exact.energy.total());
/// # Ok(())
/// # }
/// ```
pub fn optimize_with_tolerance(
    problem: &Problem,
    tolerance: f64,
) -> Result<OptimizationResult, OptimizeError> {
    optimize_with_tolerance_opts(problem, tolerance, SearchOptions::default())
}

/// Like [`optimize_with_tolerance`] with explicit search options (the
/// given options' `vt_tolerance` is overridden).
pub fn optimize_with_tolerance_opts(
    problem: &Problem,
    tolerance: f64,
    mut options: SearchOptions,
) -> Result<OptimizationResult, OptimizeError> {
    if !(0.0..1.0).contains(&tolerance) {
        return Err(OptimizeError::BadOption {
            option: "vt_tolerance",
            message: "must lie in [0, 1)".into(),
        });
    }
    options.vt_tolerance = tolerance;
    Optimizer::new(problem).with_options(options).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

    fn netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Nand, &["a", "c"]).unwrap();
        b.gate("v", GateKind::Nor, &["u", "c"]).unwrap();
        b.gate("w", GateKind::Nand, &["u", "v"]).unwrap();
        b.gate("y", GateKind::Not, &["w"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    fn problem() -> Problem {
        let n = netlist();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        Problem::new(model, 200.0e6)
    }

    #[test]
    fn savings_erode_with_tolerance() {
        let p = problem();
        let e0 = optimize_with_tolerance(&p, 0.0).unwrap().energy.total();
        let e20 = optimize_with_tolerance(&p, 0.20).unwrap().energy.total();
        assert!(e20 >= e0, "0% {e0:.3e} vs 20% {e20:.3e}");
    }

    #[test]
    fn margined_design_meets_timing_at_slow_corner() {
        let p = problem();
        let tol = 0.2;
        let r = optimize_with_tolerance(&p, tol).unwrap();
        // Recheck delays with thresholds raised by the tolerance.
        let mut slow = r.design.clone();
        for v in &mut slow.vt {
            *v *= 1.0 + tol;
        }
        let eval = p.model().evaluate(&slow, p.fc());
        assert!(
            eval.critical_delay <= p.cycle_time() * (1.0 + 1e-6),
            "slow corner misses timing: {:.3e}",
            eval.critical_delay
        );
    }

    #[test]
    fn out_of_range_tolerance_rejected() {
        let p = problem();
        assert!(matches!(
            optimize_with_tolerance(&p, 1.0),
            Err(OptimizeError::BadOption { .. })
        ));
        assert!(matches!(
            optimize_with_tolerance(&p, -0.1),
            Err(OptimizeError::BadOption { .. })
        ));
    }
}
