//! Shared job-store abstraction for distributed serving.
//!
//! A coordinator and its worker processes coordinate through a store of
//! keyed records plus **leases** — exclusive, expiring ownership claims
//! over a key. The [`JobStore`] trait abstracts the backend; the first
//! implementation, [`FsJobStore`], lives on a shared directory and
//! writes every record through the durable [`crate::store`] layer
//! (CRC32 envelope, fsync, atomic rename, `.1` fallback generation), so
//! shard state survives the crash of any single process.
//!
//! ## Lease protocol
//!
//! A lease on `key` is a sidecar file `key.lease` holding the owner name
//! and an absolute expiry time. Acquisition must be atomic even between
//! unrelated processes, so [`FsJobStore`] claims by *hard-linking* a
//! fully written temp file into place: the link syscall fails if the
//! lease already exists, which makes the kernel the arbiter — when N
//! claimants race, exactly one wins, deterministically. An expired lease
//! is taken over by first renaming it aside (again atomic: only one
//! renamer succeeds) and then re-claiming. Owners renew by atomically
//! replacing their own lease file and release by deleting it; both
//! verify ownership first, so a claimant that lost its lease to expiry
//! cannot clobber the new owner.
//!
//! Lease files deliberately use the `.lease` extension: the recovery
//! audit ([`crate::store::audit`]) only inspects record extensions, so
//! a half-written lease from a crashed process can never be quarantined
//! as a corrupt record — it is simply taken over once it expires.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::store::{self, StoreError};

/// Outcome of a lease claim attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Claim {
    /// The caller now owns the lease until its expiry.
    Acquired,
    /// Another owner holds an unexpired lease.
    Held {
        /// The current lease holder.
        owner: String,
        /// Seconds until the holder's lease expires (0 when imminent).
        expires_in_secs: f64,
    },
}

/// A decoded lease record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The owner that claimed the lease.
    pub owner: String,
    /// Absolute expiry, milliseconds since the Unix epoch.
    pub expires_unix_ms: u64,
}

/// Backend-agnostic store of keyed records plus exclusive leases —
/// the contract a coordinator and its workers share.
///
/// Keys are restricted to `[A-Za-z0-9._-]` (no separators), so a key can
/// never escape the backend's namespace; see [`valid_key`].
pub trait JobStore: Send + Sync {
    /// Durably writes `payload` under `key`, replacing any previous
    /// record (the previous generation stays readable as a fallback).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the write cannot be made durable.
    fn put(&self, key: &str, payload: &[u8]) -> Result<(), StoreError>;

    /// Reads the record under `key`, falling back to the previous
    /// generation when the primary is corrupt. `Ok(None)` when the key
    /// has never been written.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when a record exists but no generation verifies.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError>;

    /// Removes the record under `key` (all generations). Idempotent.
    fn delete(&self, key: &str);

    /// Keys of every stored record starting with `prefix`, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Attempts to claim the lease on `key` for `owner`, valid for
    /// `ttl_secs`. Exactly one of N concurrent claimants acquires it; an
    /// expired lease is broken and re-claimed transparently.
    fn try_claim(&self, key: &str, owner: &str, ttl_secs: f64) -> Claim;

    /// Extends `owner`'s lease on `key` by `ttl_secs` from now (the
    /// heartbeat). Returns `false` — without extending anything — when
    /// `owner` no longer holds the lease.
    fn renew(&self, key: &str, owner: &str, ttl_secs: f64) -> bool;

    /// Releases `owner`'s lease on `key`. Returns `false` when `owner`
    /// did not hold it (already expired and taken over, or never held).
    fn release(&self, key: &str, owner: &str) -> bool;

    /// The current lease on `key`, expired or not, if one exists.
    fn lease(&self, key: &str) -> Option<Lease>;
}

/// Whether `key` is a valid store key: non-empty, at most 200 bytes, and
/// only `[A-Za-z0-9._-]` characters (and not entirely dots).
pub fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key.len() <= 200
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && key.chars().any(|c| c != '.')
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis().min(u128::from(u64::MAX)) as u64)
}

/// [`JobStore`] on a shared directory, records written through the
/// durable [`crate::store`] layer.
///
/// Every process pointing an `FsJobStore` at the same directory sees the
/// same records and competes for the same leases — the loopback
/// equivalent of a small cluster sharing a network filesystem.
pub struct FsJobStore {
    root: PathBuf,
    /// Per-instance nonce source for unique temp/stale file names, so
    /// concurrent claimants within one process never collide on them.
    nonce: AtomicU64,
}

impl FsJobStore {
    /// A store rooted at `root` (created if missing).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(root: &Path) -> Result<FsJobStore, StoreError> {
        std::fs::create_dir_all(root).map_err(|e| StoreError::Io {
            path: root.to_path_buf(),
            message: e.to_string(),
        })?;
        Ok(FsJobStore {
            root: root.to_path_buf(),
            nonce: AtomicU64::new(1),
        })
    }

    /// The directory this store lives on.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn record_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.json"))
    }

    fn lease_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.lease"))
    }

    /// A name unique across processes and claimants: pid + per-instance
    /// counter (wall time deliberately avoided — uniqueness must not
    /// depend on clock resolution).
    fn unique_suffix(&self) -> String {
        format!(
            "{}-{}",
            std::process::id(),
            self.nonce.fetch_add(1, Ordering::Relaxed)
        )
    }

    fn read_lease(path: &Path) -> Option<Lease> {
        let text = std::fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        let owner = lines.next()?.to_string();
        let expires_unix_ms = lines.next()?.parse().ok()?;
        Some(Lease {
            owner,
            expires_unix_ms,
        })
    }

    /// Atomically creates the lease file with full contents: write a
    /// private temp file, then `hard_link` it into place — the link is
    /// the atomic claim point and fails if the lease already exists.
    fn link_lease(&self, key: &str, owner: &str, ttl_secs: f64) -> std::io::Result<()> {
        let expires = now_unix_ms().saturating_add((ttl_secs.max(0.0) * 1e3) as u64);
        let tmp = self
            .root
            .join(format!("{key}.lease-tmp-{}", self.unique_suffix()));
        std::fs::write(&tmp, format!("{owner}\n{expires}\n"))?;
        let outcome = std::fs::hard_link(&tmp, self.lease_path(key));
        let _ = std::fs::remove_file(&tmp);
        outcome
    }

    /// Moves an expired lease aside so it can be re-claimed. The rename
    /// is atomic and the source vanishes for every loser, so exactly one
    /// breaker proceeds per stale lease.
    fn break_expired(&self, key: &str, observed: &Lease) -> bool {
        let path = self.lease_path(key);
        // Re-check under the current clock: never break a live lease.
        match Self::read_lease(&path) {
            Some(current) if current == *observed && current.expires_unix_ms <= now_unix_ms() => {
                let stale = self
                    .root
                    .join(format!("{key}.lease-stale-{}", self.unique_suffix()));
                if std::fs::rename(&path, &stale).is_ok() {
                    let _ = std::fs::remove_file(&stale);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }
}

impl JobStore for FsJobStore {
    fn put(&self, key: &str, payload: &[u8]) -> Result<(), StoreError> {
        assert!(valid_key(key), "invalid store key `{key}`");
        store::write_durable(&self.record_path(key), payload).map(|_| ())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        assert!(valid_key(key), "invalid store key `{key}`");
        let path = self.record_path(key);
        if !path.exists() && !store::previous_generation(&path).exists() {
            return Ok(None);
        }
        store::read_with_fallback(&path).map(|loaded| Some(loaded.payload))
    }

    fn delete(&self, key: &str) {
        assert!(valid_key(key), "invalid store key `{key}`");
        store::remove_generations(&self.record_path(key));
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut keys = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return keys;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(key) = name.strip_suffix(".json") {
                if key.starts_with(prefix) && valid_key(key) {
                    keys.push(key.to_string());
                }
            }
        }
        keys.sort();
        keys
    }

    fn try_claim(&self, key: &str, owner: &str, ttl_secs: f64) -> Claim {
        assert!(valid_key(key), "invalid store key `{key}`");
        // Two rounds: a fresh claim, and — after breaking an expired
        // lease — one more. A second `Held` means we lost a legitimate
        // race; the caller retries on its own schedule.
        for _ in 0..2 {
            match self.link_lease(key, owner, ttl_secs) {
                Ok(()) => return Claim::Acquired,
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match Self::read_lease(&self.lease_path(key)) {
                        Some(lease) if lease.expires_unix_ms > now_unix_ms() => {
                            return Claim::Held {
                                owner: lease.owner,
                                expires_in_secs: lease.expires_unix_ms.saturating_sub(now_unix_ms())
                                    as f64
                                    / 1e3,
                            };
                        }
                        Some(lease) => {
                            // Expired: break it (one winner) and retry.
                            let _ = self.break_expired(key, &lease);
                        }
                        // Vanished between link and read: retry.
                        None => {}
                    }
                }
                // Unexpected I/O failure: report as held-by-unknown so
                // the caller backs off instead of assuming ownership.
                Err(_) => {
                    return Claim::Held {
                        owner: String::new(),
                        expires_in_secs: 0.0,
                    }
                }
            }
        }
        match Self::read_lease(&self.lease_path(key)) {
            Some(lease) => Claim::Held {
                expires_in_secs: lease.expires_unix_ms.saturating_sub(now_unix_ms()) as f64 / 1e3,
                owner: lease.owner,
            },
            None => Claim::Held {
                owner: String::new(),
                expires_in_secs: 0.0,
            },
        }
    }

    fn renew(&self, key: &str, owner: &str, ttl_secs: f64) -> bool {
        assert!(valid_key(key), "invalid store key `{key}`");
        let path = self.lease_path(key);
        match Self::read_lease(&path) {
            Some(lease) if lease.owner == owner && lease.expires_unix_ms > now_unix_ms() => {
                let expires = now_unix_ms().saturating_add((ttl_secs.max(0.0) * 1e3) as u64);
                let tmp = self
                    .root
                    .join(format!("{key}.lease-tmp-{}", self.unique_suffix()));
                if std::fs::write(&tmp, format!("{owner}\n{expires}\n")).is_err() {
                    return false;
                }
                // Atomic replace of our own live lease.
                let renewed = std::fs::rename(&tmp, &path).is_ok();
                if !renewed {
                    let _ = std::fs::remove_file(&tmp);
                }
                renewed
            }
            _ => false,
        }
    }

    fn release(&self, key: &str, owner: &str) -> bool {
        assert!(valid_key(key), "invalid store key `{key}`");
        let path = self.lease_path(key);
        match Self::read_lease(&path) {
            // Only the live owner may delete; an expired lease is left
            // for `try_claim`'s break path so takeover stays single-file.
            Some(lease) if lease.owner == owner => std::fs::remove_file(&path).is_ok(),
            _ => false,
        }
    }

    fn lease(&self, key: &str) -> Option<Lease> {
        Self::read_lease(&self.lease_path(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn scratch(name: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "minpower-jobstore-{name}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_round_trip_and_list() {
        let store = FsJobStore::open(&scratch("rt")).unwrap();
        assert_eq!(store.get("job-1").unwrap(), None);
        store.put("job-1", b"{\"a\":1}").unwrap();
        store.put("job-1-shard-0", b"{\"b\":2}").unwrap();
        store.put("other", b"{}").unwrap();
        assert_eq!(store.get("job-1").unwrap().unwrap(), b"{\"a\":1}");
        assert_eq!(
            store.list("job-1"),
            vec!["job-1".to_string(), "job-1-shard-0".to_string()]
        );
        store.delete("job-1");
        assert_eq!(store.get("job-1").unwrap(), None);
        assert_eq!(store.list("job-1"), vec!["job-1-shard-0".to_string()]);
    }

    #[test]
    fn key_validation_rejects_separators() {
        assert!(valid_key("coord-job-3-shard-12"));
        assert!(valid_key("a.b_c-D9"));
        assert!(!valid_key(""));
        assert!(!valid_key(".."));
        assert!(!valid_key("a/b"));
        assert!(!valid_key("a\\b"));
        assert!(!valid_key(&"x".repeat(201)));
    }

    #[test]
    fn claim_is_exclusive_until_released() {
        let store = FsJobStore::open(&scratch("excl")).unwrap();
        assert_eq!(store.try_claim("s0", "alice", 30.0), Claim::Acquired);
        match store.try_claim("s0", "bob", 30.0) {
            Claim::Held { owner, .. } => assert_eq!(owner, "alice"),
            other => panic!("expected Held, got {other:?}"),
        }
        assert!(store.renew("s0", "alice", 30.0));
        assert!(!store.renew("s0", "bob", 30.0));
        assert!(!store.release("s0", "bob"));
        assert!(store.release("s0", "alice"));
        assert_eq!(store.try_claim("s0", "bob", 30.0), Claim::Acquired);
    }

    #[test]
    fn expired_lease_is_taken_over() {
        let store = FsJobStore::open(&scratch("expire")).unwrap();
        assert_eq!(store.try_claim("s1", "alice", 0.0), Claim::Acquired);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(store.try_claim("s1", "bob", 30.0), Claim::Acquired);
        assert_eq!(store.lease("s1").unwrap().owner, "bob");
        // The previous owner can no longer renew or release.
        assert!(!store.renew("s1", "alice", 30.0));
        assert!(!store.release("s1", "alice"));
    }

    /// The satellite requirement: two independent store handles (the
    /// moral equivalent of two processes — the claim arbitration runs
    /// entirely through filesystem syscalls, with no shared in-process
    /// state) racing many claimants at one shard key must deterministically
    /// produce exactly one owner.
    #[test]
    fn concurrent_claims_yield_exactly_one_owner() {
        let dir = scratch("race");
        let a = Arc::new(FsJobStore::open(&dir).unwrap());
        let b = Arc::new(FsJobStore::open(&dir).unwrap());
        for round in 0..8 {
            let key = format!("shard-{round}");
            let winners = Arc::new(AtomicUsize::new(0));
            let threads: Vec<_> = (0..8)
                .map(|i| {
                    let store: Arc<FsJobStore> = if i % 2 == 0 { a.clone() } else { b.clone() };
                    let winners = winners.clone();
                    let key = key.clone();
                    std::thread::spawn(move || {
                        if store.try_claim(&key, &format!("claimant-{i}"), 60.0) == Claim::Acquired
                        {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(
                winners.load(Ordering::Relaxed),
                1,
                "round {round}: exactly one claimant must win"
            );
            // And the winner on disk is a real claimant with a live lease.
            let lease = a.lease(&key).unwrap();
            assert!(lease.owner.starts_with("claimant-"));
            assert!(lease.expires_unix_ms > now_unix_ms());
        }
    }

    #[test]
    fn records_survive_through_the_durable_layer() {
        let dir = scratch("durable");
        {
            let store = FsJobStore::open(&dir).unwrap();
            store.put("k", b"{\"v\":1}").unwrap();
            store.put("k", b"{\"v\":2}").unwrap();
        }
        // A fresh handle (new process) sees the latest generation; after
        // the primary is destroyed, the `.1` fallback still serves it.
        let store = FsJobStore::open(&dir).unwrap();
        assert_eq!(store.get("k").unwrap().unwrap(), b"{\"v\":2}");
        // A framed record whose CRC does not match its payload — the
        // store must reject it and fall back (an unframed file would be
        // accepted as a legacy record, which is not corruption).
        std::fs::write(dir.join("k.json"), b"minpower-store 1 7 00000000\ngarbage").unwrap();
        assert_eq!(store.get("k").unwrap().unwrap(), b"{\"v\":1}");
    }
}
