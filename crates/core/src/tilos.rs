//! TILOS-style greedy sensitivity sizing — the classical alternative to
//! Procedure 1's budget-driven widths.
//!
//! The paper's width assignment flows *down* from delay budgets: every
//! gate is given a time allowance and sized to the minimum width meeting
//! it. The classical literature (Fishburn & Dunlop's TILOS; the convex
//! formulation of the paper's ref [10]) instead flows *up* from minimum
//! widths: start everything at `w = 1` and repeatedly upsize the
//! critical-path gate with the best delay-reduction-per-energy-cost
//! sensitivity until the cycle time is met.
//!
//! Both reach feasible designs; comparing their energies isolates how
//! much the paper's budgeting idea actually contributes (an ablation the
//! experiments report).

use minpower_models::Design;
use minpower_netlist::GateId;

use crate::error::OptimizeError;
use crate::problem::Problem;
use crate::result::OptimizationResult;

/// Options for the greedy sizer.
#[derive(Debug, Clone, PartialEq)]
pub struct TilosOptions {
    /// Multiplicative width step per accepted move (classic TILOS uses
    /// small steps; larger is faster, coarser).
    pub step: f64,
    /// Hard cap on accepted moves (safety bound).
    pub max_moves: usize,
}

impl Default for TilosOptions {
    fn default() -> Self {
        TilosOptions {
            step: 1.15,
            max_moves: 20_000,
        }
    }
}

/// Sizes widths at a fixed `(vdd, vt)` by greedy sensitivity ascent from
/// minimum widths until the cycle time is met.
///
/// # Errors
///
/// [`OptimizeError::EmptyNetwork`] for gate-free networks,
/// [`OptimizeError::BadOption`] for a non-positive step, and
/// [`OptimizeError::Infeasible`] when the cycle time cannot be met even
/// after exhausting upsizing moves.
pub fn size_greedy(
    problem: &Problem,
    vdd: f64,
    vt: f64,
    options: TilosOptions,
) -> Result<OptimizationResult, OptimizeError> {
    let n = problem.model().netlist().gate_count();
    size_greedy_with_vt(problem, vdd, &vec![vt; n], options)
}

/// [`size_greedy`] with per-gate thresholds (the form the joint
/// optimizer's greedy sizing mode uses).
///
/// # Errors
///
/// Same failure modes as [`size_greedy`].
///
/// # Panics
///
/// Panics if `vt.len()` differs from the gate count.
pub fn size_greedy_with_vt(
    problem: &Problem,
    vdd: f64,
    vt: &[f64],
    options: TilosOptions,
) -> Result<OptimizationResult, OptimizeError> {
    if options.step <= 1.0 {
        return Err(OptimizeError::BadOption {
            option: "step",
            message: "must be greater than 1".into(),
        });
    }
    let model = problem.model();
    let netlist = model.netlist();
    if netlist.logic_gate_count() == 0 {
        return Err(OptimizeError::EmptyNetwork);
    }
    let tech = model.technology();
    let (w_lo, w_hi) = tech.w_range;
    let tc = problem.effective_cycle_time();
    let n = netlist.gate_count();
    assert_eq!(vt.len(), n, "one threshold per gate required");

    let mut design = Design {
        vdd,
        vt: vt.to_vec(),
        width: vec![w_lo; n],
    };
    let stats = crate::context::EvalContext::global().stats().clone();
    stats.count_eval();
    stats.count_sta(1);
    let mut delays = model.delays(&design);
    let mut evaluations = 1usize;

    let arrivals = |delays: &[f64]| -> (Vec<f64>, f64, Option<GateId>) {
        let mut arr = vec![0.0f64; n];
        let mut crit = 0.0;
        let mut crit_gate = None;
        for &id in netlist.topological_order() {
            let i = id.index();
            let latest = netlist
                .gate(id)
                .fanin()
                .iter()
                .map(|f| arr[f.index()])
                .fold(0.0, f64::max);
            arr[i] = latest + delays[i];
            if (netlist.is_output(id) || netlist.fanout(id).is_empty()) && arr[i] > crit {
                crit = arr[i];
                crit_gate = Some(id);
            }
        }
        (arr, crit, crit_gate)
    };

    let mut best_crit = f64::INFINITY;
    for _move in 0..options.max_moves {
        let (arr, crit, crit_gate) = arrivals(&delays);
        best_crit = best_crit.min(crit);
        if crit <= tc {
            let energy = model.total_energy(&design, problem.fc());
            return Ok(OptimizationResult {
                energy,
                critical_delay: crit,
                feasible: true,
                evaluations,
                budgets: crate::budget::assign_max_delays(netlist, tc),
                design,
            });
        }
        // Walk the critical path; pick the move with the best
        // Δdelay / Δenergy sensitivity.
        let mut cur = match crit_gate {
            Some(g) => g,
            None => break,
        };
        let mut best: Option<(usize, f64)> = None; // (gate, score)
        loop {
            let i = cur.index();
            let gate = netlist.gate(cur);
            if !gate.fanin().is_empty() && design.width[i] < w_hi {
                let w_old = design.width[i];
                let w_new = (w_old * options.step).min(w_hi);
                let max_fanin = model.max_fanin_delay(&delays, i);
                let t_old = delays[i];
                let e_old = model.gate_dynamic_energy(&design, cur)
                    + model.gate_static_energy(&design, cur, problem.fc());
                design.width[i] = w_new;
                let t_new = model.gate_delay(&design, cur, max_fanin);
                let e_new = model.gate_dynamic_energy(&design, cur)
                    + model.gate_static_energy(&design, cur, problem.fc());
                design.width[i] = w_old;
                let gain = t_old - t_new;
                let cost = (e_new - e_old).max(1e-30);
                if gain > 0.0 {
                    let score = gain / cost;
                    if best.is_none_or(|(_, s)| score > s) {
                        best = Some((i, score));
                    }
                }
            }
            match gate.fanin().iter().max_by(|a, b| {
                arr[a.index()]
                    .partial_cmp(&arr[b.index()])
                    .expect("arrivals are finite")
            }) {
                Some(&f) => cur = f,
                None => break,
            }
        }
        match best {
            Some((i, _)) => {
                design.width[i] = (design.width[i] * options.step).min(w_hi);
                // Incremental repair of the affected cone only — the move
                // loop's cost is O(cone), not O(E).
                model.update_delays_after_width_change(&design, &mut delays, GateId::new(i));
                stats.count_sta(1);
                evaluations += 1;
            }
            None => break, // every critical gate saturated
        }
    }
    Err(OptimizeError::Infeasible {
        cycle_time: tc,
        best_delay: best_crit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

    fn netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Nand, &["a", "c"]).unwrap();
        b.gate("v", GateKind::Nor, &["u", "c"]).unwrap();
        b.gate("w", GateKind::Nand, &["u", "v"]).unwrap();
        b.gate("y", GateKind::Not, &["w"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    fn problem(fc: f64) -> Problem {
        let n = netlist();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        Problem::new(model, fc)
    }

    #[test]
    fn greedy_reaches_feasibility() {
        let p = problem(300.0e6);
        let r = size_greedy(&p, 2.5, 0.5, TilosOptions::default()).unwrap();
        assert!(r.feasible);
        assert!(r.critical_delay <= p.cycle_time() * (1.0 + 1e-9));
        // It should not saturate everything on this easy instance.
        assert!(r.design.total_width() < 100.0, "{}", r.design.total_width());
    }

    #[test]
    fn infeasible_targets_are_detected() {
        let p = problem(50.0e9);
        let err = size_greedy(&p, 2.5, 0.5, TilosOptions::default()).unwrap_err();
        assert!(matches!(err, OptimizeError::Infeasible { .. }));
    }

    #[test]
    fn comparable_to_budget_driven_sizing() {
        // Neither method should dominate by an order of magnitude at the
        // same operating point.
        let p = problem(300.0e6);
        let greedy = size_greedy(&p, 2.5, 0.5, TilosOptions::default()).unwrap();
        let budgeted = crate::search::size_at(&p, 2.5, 0.5, &Default::default()).unwrap();
        assert!(budgeted.feasible);
        let ratio = greedy.energy.total() / budgeted.energy.total();
        assert!(
            (0.2..5.0).contains(&ratio),
            "greedy {:.3e} vs budgeted {:.3e}",
            greedy.energy.total(),
            budgeted.energy.total()
        );
    }

    #[test]
    fn bad_step_rejected() {
        let p = problem(300.0e6);
        assert!(matches!(
            size_greedy(
                &p,
                2.5,
                0.5,
                TilosOptions {
                    step: 0.9,
                    ..TilosOptions::default()
                }
            ),
            Err(OptimizeError::BadOption { .. })
        ));
    }
}
