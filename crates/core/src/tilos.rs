//! TILOS-style greedy sensitivity sizing — the classical alternative to
//! Procedure 1's budget-driven widths.
//!
//! The paper's width assignment flows *down* from delay budgets: every
//! gate is given a time allowance and sized to the minimum width meeting
//! it. The classical literature (Fishburn & Dunlop's TILOS; the convex
//! formulation of the paper's ref \[10\]) instead flows *up* from minimum
//! widths: start everything at `w = 1` and repeatedly upsize the
//! critical-path gate with the best delay-reduction-per-energy-cost
//! sensitivity until the cycle time is met.
//!
//! Both reach feasible designs; comparing their energies isolates how
//! much the paper's budgeting idea actually contributes (an ablation the
//! experiments report).

use std::sync::Arc;

use minpower_engine::EngineStats;
use minpower_models::{CircuitModel, Design};
use minpower_netlist::{GateId, Netlist};
use minpower_timing::incremental::{sink_critical, virtual_sinks};

use crate::error::OptimizeError;
use crate::incremental::{arrivals_into, IncrementalEval};
use crate::problem::Problem;
use crate::result::OptimizationResult;
use crate::runctl::RunControl;

/// Options for the greedy sizer.
#[derive(Debug, Clone, PartialEq)]
pub struct TilosOptions {
    /// Multiplicative width step per accepted move (classic TILOS uses
    /// small steps; larger is faster, coarser).
    pub step: f64,
    /// Hard cap on accepted moves (safety bound).
    pub max_moves: usize,
    /// Route the move loop through the incremental evaluation layer
    /// (journaled cone delay repair, persistent arrival state — O(cone)
    /// per move) instead of a dense delay + arrival recompute per move.
    /// Bit-identical results either way; `false` is the
    /// `--no-incremental` escape hatch.
    pub incremental: bool,
}

impl Default for TilosOptions {
    fn default() -> Self {
        TilosOptions {
            step: 1.15,
            max_moves: 20_000,
            incremental: true,
        }
    }
}

/// Sizes widths at a fixed `(vdd, vt)` by greedy sensitivity ascent from
/// minimum widths until the cycle time is met.
///
/// # Errors
///
/// [`OptimizeError::EmptyNetwork`] for gate-free networks,
/// [`OptimizeError::BadOption`] for a non-positive step, and
/// [`OptimizeError::Infeasible`] when the cycle time cannot be met even
/// after exhausting upsizing moves.
pub fn size_greedy(
    problem: &Problem,
    vdd: f64,
    vt: f64,
    options: TilosOptions,
) -> Result<OptimizationResult, OptimizeError> {
    let n = problem.model().netlist().gate_count();
    size_greedy_with_vt(problem, vdd, &vec![vt; n], options)
}

/// [`size_greedy`] under a [`RunControl`]: the move loop polls `control`
/// once per accepted move and, on a trip, stops with
/// [`OptimizeError::Interrupted`]. The partially sized design is *not*
/// returned as a best-so-far — an interrupted greedy ascent has not yet
/// reached feasibility, so there is no valid design to hand back.
///
/// # Errors
///
/// The [`size_greedy`] failure modes, plus
/// [`OptimizeError::Interrupted`] on a control trip.
pub fn size_greedy_ctl(
    problem: &Problem,
    vdd: f64,
    vt: f64,
    options: TilosOptions,
    control: &RunControl,
) -> Result<OptimizationResult, OptimizeError> {
    let n = problem.model().netlist().gate_count();
    let stats = crate::context::EvalContext::global().stats().clone();
    size_greedy_with_stats_ctl(problem, vdd, &vec![vt; n], options, stats, Some(control))
}

/// [`size_greedy`] with per-gate thresholds (the form the joint
/// optimizer's greedy sizing mode uses).
///
/// # Errors
///
/// Same failure modes as [`size_greedy`].
///
/// # Panics
///
/// Panics if `vt.len()` differs from the gate count.
pub fn size_greedy_with_vt(
    problem: &Problem,
    vdd: f64,
    vt: &[f64],
    options: TilosOptions,
) -> Result<OptimizationResult, OptimizeError> {
    let stats = crate::context::EvalContext::global().stats().clone();
    size_greedy_with_stats(problem, vdd, vt, options, stats)
}

/// [`size_greedy_with_vt`] counting into an explicit [`EngineStats`] — the
/// entry point the joint optimizer's greedy sizing mode routes through so
/// telemetry (and the incremental/full choice) follows the caller's
/// [`crate::context::EvalContext`] rather than the process-wide one.
pub(crate) fn size_greedy_with_stats(
    problem: &Problem,
    vdd: f64,
    vt: &[f64],
    options: TilosOptions,
    stats: Arc<EngineStats>,
) -> Result<OptimizationResult, OptimizeError> {
    size_greedy_with_stats_ctl(problem, vdd, vt, options, stats, None)
}

/// [`size_greedy_with_stats`] with an optional [`RunControl`] polled once
/// per move.
pub(crate) fn size_greedy_with_stats_ctl(
    problem: &Problem,
    vdd: f64,
    vt: &[f64],
    options: TilosOptions,
    stats: Arc<EngineStats>,
    control: Option<&RunControl>,
) -> Result<OptimizationResult, OptimizeError> {
    if options.step <= 1.0 {
        return Err(OptimizeError::BadOption {
            option: "step",
            message: "must be greater than 1".into(),
        });
    }
    let model = problem.model();
    let netlist = model.netlist();
    if netlist.logic_gate_count() == 0 {
        return Err(OptimizeError::EmptyNetwork);
    }
    let tech = model.technology();
    let (w_lo, _) = tech.w_range;
    let n = netlist.gate_count();
    assert_eq!(vt.len(), n, "one threshold per gate required");

    let design = Design {
        vdd,
        vt: vt.to_vec(),
        width: vec![w_lo; n],
    };
    stats.count_eval();
    stats.count_sta(1);
    let delays = model.delays(&design);

    if options.incremental {
        greedy_incremental(problem, design, delays, &options, stats, control)
    } else {
        greedy_full(problem, design, delays, &options, stats, control)
    }
}

/// Polls a (possibly absent) control, mapping a trip to the
/// [`OptimizeError::Interrupted`] the greedy loops return. The greedy
/// ascent has no feasible intermediate design, so `best_so_far` is `None`.
fn trip_to_error(
    control: Option<&RunControl>,
    stats: &EngineStats,
    evaluations: usize,
) -> Option<OptimizeError> {
    let control = control?;
    let reason = control.trip()?;
    stats.count_deadline_trip();
    Some(OptimizeError::Interrupted {
        reason,
        best_so_far: None,
        progress: control.progress(evaluations),
    })
}

/// Walks the critical path from `crit_gate` toward the primary inputs and
/// returns the move with the best Δdelay / Δenergy sensitivity
/// `(gate, score)`, probing each candidate in place. Shared verbatim by
/// the full and incremental move loops so both make identical decisions
/// from identical values.
#[allow(clippy::too_many_arguments)]
fn best_sensitivity_move(
    model: &CircuitModel,
    netlist: &Netlist,
    design: &mut Design,
    delays: &[f64],
    arr: &[f64],
    crit_gate: GateId,
    w_hi: f64,
    step: f64,
    fc: f64,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None; // (gate, score)
    let mut cur = crit_gate;
    loop {
        let i = cur.index();
        let gate = netlist.gate(cur);
        if !gate.fanin().is_empty() && design.width[i] < w_hi {
            let w_old = design.width[i];
            let w_new = (w_old * step).min(w_hi);
            let max_fanin = model.max_fanin_delay(delays, i);
            let t_old = delays[i];
            let e_old =
                model.gate_dynamic_energy(design, cur) + model.gate_static_energy(design, cur, fc);
            design.width[i] = w_new;
            let t_new = model.gate_delay(design, cur, max_fanin);
            let e_new =
                model.gate_dynamic_energy(design, cur) + model.gate_static_energy(design, cur, fc);
            design.width[i] = w_old;
            let gain = t_old - t_new;
            let cost = (e_new - e_old).max(1e-30);
            if gain > 0.0 {
                let score = gain / cost;
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((i, score));
                }
            }
        }
        match gate.fanin().iter().max_by(|a, b| {
            arr[a.index()]
                .partial_cmp(&arr[b.index()])
                .expect("arrivals are finite")
        }) {
            Some(&f) => cur = f,
            None => break,
        }
    }
    best
}

/// The move loop on dense recomputation: a full arrival pass per move.
/// Reference semantics for [`greedy_incremental`].
fn greedy_full(
    problem: &Problem,
    mut design: Design,
    mut delays: Vec<f64>,
    options: &TilosOptions,
    stats: Arc<EngineStats>,
    control: Option<&RunControl>,
) -> Result<OptimizationResult, OptimizeError> {
    let model = problem.model();
    let netlist = model.netlist();
    let w_hi = model.technology().w_range.1;
    let tc = problem.effective_cycle_time();
    let sinks = virtual_sinks(netlist);
    let mut arrival = Vec::new();
    let mut evaluations = 1usize;
    let mut best_crit = f64::INFINITY;
    for _move in 0..options.max_moves {
        if let Some(e) = trip_to_error(control, &stats, evaluations) {
            return Err(e);
        }
        arrivals_into(netlist, &delays, &mut arrival);
        let (crit, crit_gate) = sink_critical(&sinks, &arrival);
        best_crit = best_crit.min(crit);
        if crit <= tc {
            let energy = model.total_energy(&design, problem.fc());
            return Ok(OptimizationResult {
                energy,
                critical_delay: crit,
                feasible: true,
                evaluations,
                budgets: crate::budget::assign_max_delays(netlist, tc),
                design,
            });
        }
        // Walk the critical path; pick the move with the best
        // Δdelay / Δenergy sensitivity.
        let Some(cg) = crit_gate else { break };
        let best = best_sensitivity_move(
            model,
            netlist,
            &mut design,
            &delays,
            &arrival,
            cg,
            w_hi,
            options.step,
            problem.fc(),
        );
        match best {
            Some((i, _)) => {
                design.width[i] = (design.width[i] * options.step).min(w_hi);
                // Dense recompute, the `--no-incremental` contract: every
                // gate delay re-evaluated from the device model. Lands on
                // the same fixed point the incremental journal repairs to.
                model.delays_into(&design, &mut delays);
                stats.count_sta(1);
                evaluations += 1;
            }
            None => break, // every critical gate saturated
        }
    }
    Err(OptimizeError::Infeasible {
        cycle_time: tc,
        best_delay: best_crit,
    })
}

/// The move loop on the incremental layers: persistent arrival state
/// updated over the dirty cone per move, energy terms delta-maintained in
/// a ledger and re-summed in index order at the end. Bit-identical to
/// [`greedy_full`] (TILOS never rejects a move, so no reverts occur).
fn greedy_incremental(
    problem: &Problem,
    design: Design,
    delays: Vec<f64>,
    options: &TilosOptions,
    stats: Arc<EngineStats>,
    control: Option<&RunControl>,
) -> Result<OptimizationResult, OptimizeError> {
    let model = problem.model();
    let netlist = model.netlist();
    let w_hi = model.technology().w_range.1;
    let tc = problem.effective_cycle_time();
    let fc = problem.fc();
    let sinks = virtual_sinks(netlist);
    let stats_ref = stats.clone();
    let mut eval = IncrementalEval::new(model, design, delays, tc, stats);
    let mut ledger = model.energy_ledger(eval.design(), fc);
    let mut evaluations = 1usize;
    let mut best_crit = f64::INFINITY;
    for _move in 0..options.max_moves {
        if let Some(e) = trip_to_error(control, &stats_ref, evaluations) {
            return Err(e);
        }
        let (crit, crit_gate) = sink_critical(&sinks, eval.arrivals());
        best_crit = best_crit.min(crit);
        if crit <= tc {
            // Ordered re-sum of the delta-maintained per-gate terms:
            // bitwise what `total_energy` computes over the same design.
            let energy = ledger.exact_total();
            return Ok(OptimizationResult {
                energy,
                critical_delay: crit,
                feasible: true,
                evaluations,
                budgets: crate::budget::assign_max_delays(netlist, tc),
                design: eval.into_design(),
            });
        }
        let Some(cg) = crit_gate else { break };
        let best = {
            let (design, delays, arr) = eval.split();
            best_sensitivity_move(
                model,
                netlist,
                design,
                delays,
                arr,
                cg,
                w_hi,
                options.step,
                fc,
            )
        };
        match best {
            Some((i, _)) => {
                let w_new = (eval.design().width[i] * options.step).min(w_hi);
                eval.try_width(i, w_new);
                eval.accept();
                ledger.on_width_change(model, eval.design(), GateId::new(i));
                evaluations += 1;
            }
            None => break, // every critical gate saturated
        }
    }
    Err(OptimizeError::Infeasible {
        cycle_time: tc,
        best_delay: best_crit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

    fn netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Nand, &["a", "c"]).unwrap();
        b.gate("v", GateKind::Nor, &["u", "c"]).unwrap();
        b.gate("w", GateKind::Nand, &["u", "v"]).unwrap();
        b.gate("y", GateKind::Not, &["w"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    fn problem(fc: f64) -> Problem {
        let n = netlist();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        Problem::new(model, fc)
    }

    #[test]
    fn greedy_reaches_feasibility() {
        let p = problem(300.0e6);
        let r = size_greedy(&p, 2.5, 0.5, TilosOptions::default()).unwrap();
        assert!(r.feasible);
        assert!(r.critical_delay <= p.cycle_time() * (1.0 + 1e-9));
        // It should not saturate everything on this easy instance.
        assert!(r.design.total_width() < 100.0, "{}", r.design.total_width());
    }

    #[test]
    fn infeasible_targets_are_detected() {
        let p = problem(50.0e9);
        let err = size_greedy(&p, 2.5, 0.5, TilosOptions::default()).unwrap_err();
        assert!(matches!(err, OptimizeError::Infeasible { .. }));
    }

    #[test]
    fn comparable_to_budget_driven_sizing() {
        // Neither method should dominate by an order of magnitude at the
        // same operating point.
        let p = problem(300.0e6);
        let greedy = size_greedy(&p, 2.5, 0.5, TilosOptions::default()).unwrap();
        let budgeted = crate::search::size_at(&p, 2.5, 0.5, &Default::default()).unwrap();
        assert!(budgeted.feasible);
        let ratio = greedy.energy.total() / budgeted.energy.total();
        assert!(
            (0.2..5.0).contains(&ratio),
            "greedy {:.3e} vs budgeted {:.3e}",
            greedy.energy.total(),
            budgeted.energy.total()
        );
    }

    #[test]
    fn bad_step_rejected() {
        let p = problem(300.0e6);
        assert!(matches!(
            size_greedy(
                &p,
                2.5,
                0.5,
                TilosOptions {
                    step: 0.9,
                    ..TilosOptions::default()
                }
            ),
            Err(OptimizeError::BadOption { .. })
        ));
    }
}
