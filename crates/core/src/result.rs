//! Optimization outcome record.

use minpower_models::{Design, EnergyBreakdown};

/// The outcome of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationResult {
    /// The best design found (supply, thresholds, widths).
    pub design: Design,
    /// Its static/dynamic energy per cycle.
    pub energy: EnergyBreakdown,
    /// Its critical path delay, seconds.
    pub critical_delay: f64,
    /// Whether every gate met its delay budget (and hence every path met
    /// the cycle time).
    pub feasible: bool,
    /// Number of full-circuit evaluations spent.
    pub evaluations: usize,
    /// The per-gate maximum-delay budgets from Procedure 1, seconds
    /// (indexed by gate).
    pub budgets: Vec<f64>,
}

impl OptimizationResult {
    /// The single threshold voltage of the design if it is uniform over
    /// the logic gates, `None` otherwise (multi-`V_t` designs).
    pub fn uniform_vt(&self) -> Option<f64> {
        let logic: Vec<f64> = self
            .design
            .vt
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, _)| self.budgets.get(i).copied().unwrap_or(0.0) > 0.0)
            .map(|(_, v)| v)
            .collect();
        let first = *logic.first()?;
        if logic.iter().all(|&v| (v - first).abs() < 1e-12) {
            Some(first)
        } else {
            None
        }
    }

    /// Energy-savings factor of this result relative to a reference
    /// total energy (e.g. the fixed-`V_t` baseline of Table 1).
    pub fn savings_vs(&self, reference_total_energy: f64) -> f64 {
        if self.energy.total() == 0.0 {
            f64::INFINITY
        } else {
            reference_total_energy / self.energy.total()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(vts: Vec<f64>, budgets: Vec<f64>) -> OptimizationResult {
        OptimizationResult {
            design: Design {
                vdd: 1.0,
                width: vec![1.0; vts.len()],
                vt: vts,
            },
            energy: EnergyBreakdown::new(1e-12, 1e-12),
            critical_delay: 1e-9,
            feasible: true,
            evaluations: 1,
            budgets,
        }
    }

    #[test]
    fn uniform_vt_detects_uniformity_over_logic_gates() {
        // Gate 0 is an input (budget 0) with a stale vt entry; only the
        // logic gates (budgets > 0) count.
        let r = result(vec![0.9, 0.2, 0.2], vec![0.0, 1e-9, 1e-9]);
        assert_eq!(r.uniform_vt(), Some(0.2));
        let r = result(vec![0.9, 0.2, 0.3], vec![0.0, 1e-9, 1e-9]);
        assert_eq!(r.uniform_vt(), None);
    }

    #[test]
    fn savings_factor() {
        let r = result(vec![0.2], vec![1e-9]);
        assert!((r.savings_vs(20e-12) - 10.0).abs() < 1e-9);
    }
}
