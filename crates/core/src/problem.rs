//! The optimization problem statement.

use minpower_models::CircuitModel;

/// The problem of §2: a circuit model (netlist + technology + wiring +
/// activity) that must run at clock frequency `f_c`, with an optional
/// clock-skew derating factor `b ≤ 1` applied to the available cycle time
/// (Eq. 1).
#[derive(Debug, Clone)]
pub struct Problem {
    model: CircuitModel,
    fc: f64,
    clock_skew: f64,
}

impl Problem {
    /// States the problem for `model` at clock frequency `fc` hertz with
    /// no skew margin (`b = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `fc` is not strictly positive.
    pub fn new(model: CircuitModel, fc: f64) -> Self {
        assert!(fc > 0.0, "clock frequency must be positive");
        Problem {
            model,
            fc,
            clock_skew: 1.0,
        }
    }

    /// Applies a clock-skew factor `b ∈ (0, 1]`: budgets are computed
    /// against `b·T_c` (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside `(0, 1]`.
    pub fn with_clock_skew(mut self, b: f64) -> Self {
        assert!(b > 0.0 && b <= 1.0, "clock skew factor must be in (0, 1]");
        self.clock_skew = b;
        self
    }

    /// The bound circuit model.
    pub fn model(&self) -> &CircuitModel {
        &self.model
    }

    /// Required clock frequency, hertz.
    pub fn fc(&self) -> f64 {
        self.fc
    }

    /// The raw cycle time `T_c = 1/f_c`, seconds.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.fc
    }

    /// The clock-skew factor `b`.
    pub fn clock_skew(&self) -> f64 {
        self.clock_skew
    }

    /// The delay budget available to logic: `b·T_c`, seconds.
    pub fn effective_cycle_time(&self) -> f64 {
        self.clock_skew / self.fc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_device::Technology;
    use minpower_netlist::{GateKind, NetlistBuilder};

    fn problem() -> Problem {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        Problem::new(model, 300.0e6)
    }

    #[test]
    fn cycle_time_is_reciprocal_frequency() {
        let p = problem();
        assert!((p.cycle_time() - 1.0 / 3.0e8).abs() < 1e-20);
        assert_eq!(p.effective_cycle_time(), p.cycle_time());
    }

    #[test]
    fn skew_scales_effective_cycle_time() {
        let p = problem().with_clock_skew(0.9);
        assert!((p.effective_cycle_time() - 0.9 / 3.0e8).abs() < 1e-20);
        assert_eq!(p.clock_skew(), 0.9);
    }

    #[test]
    #[should_panic(expected = "clock skew factor")]
    fn bad_skew_panics() {
        let _ = problem().with_clock_skew(1.5);
    }
}
