//! The optimization problem statement.

use minpower_models::CircuitModel;
use minpower_netlist::GateId;

use crate::error::OptimizeError;

/// The problem of §2: a circuit model (netlist + technology + wiring +
/// activity) that must run at clock frequency `f_c`, with an optional
/// clock-skew derating factor `b ≤ 1` applied to the available cycle time
/// (Eq. 1).
#[derive(Debug, Clone)]
pub struct Problem {
    model: CircuitModel,
    fc: f64,
    clock_skew: f64,
}

impl Problem {
    /// States the problem for `model` at clock frequency `fc` hertz with
    /// no skew margin (`b = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `fc` is not strictly positive.
    pub fn new(model: CircuitModel, fc: f64) -> Self {
        assert!(fc > 0.0, "clock frequency must be positive");
        Problem {
            model,
            fc,
            clock_skew: 1.0,
        }
    }

    /// [`Problem::new`] with validation instead of panics: rejects a
    /// non-finite or non-positive clock frequency and any non-finite or
    /// negative gate activity with [`OptimizeError::BadOption`]. The
    /// optimizer entry points re-run the same checks, so a problem built
    /// through [`Problem::new`] is still validated before any search
    /// iterates on it.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::BadOption`] naming the offending input.
    pub fn try_new(model: CircuitModel, fc: f64) -> Result<Self, OptimizeError> {
        let problem = Problem {
            model,
            fc,
            clock_skew: 1.0,
        };
        problem.validate()?;
        Ok(problem)
    }

    /// Checks every numeric input a search would otherwise iterate on:
    /// the clock frequency and skew must be finite and in range, and
    /// every gate's transition density must be finite and non-negative
    /// (propagated densities can legitimately exceed 1 — an XOR sums its
    /// input densities — but a NaN or negative value would silently
    /// poison every energy comparison downstream).
    ///
    /// # Errors
    ///
    /// [`OptimizeError::BadOption`] naming the offending input.
    pub fn validate(&self) -> Result<(), OptimizeError> {
        if !self.fc.is_finite() || self.fc <= 0.0 {
            return Err(OptimizeError::BadOption {
                option: "cycle_time",
                message: format!(
                    "clock frequency must be finite and positive, got {} Hz",
                    self.fc
                ),
            });
        }
        if !self.clock_skew.is_finite() || self.clock_skew <= 0.0 || self.clock_skew > 1.0 {
            return Err(OptimizeError::BadOption {
                option: "clock_skew",
                message: format!("must lie in (0, 1], got {}", self.clock_skew),
            });
        }
        for i in 0..self.model.netlist().gate_count() {
            let a = self.model.activity(GateId::new(i));
            if !a.is_finite() || a < 0.0 {
                return Err(OptimizeError::BadOption {
                    option: "activity",
                    message: format!(
                        "gate {i} has transition density {a}; it must be finite and non-negative"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Applies a clock-skew factor `b ∈ (0, 1]`: budgets are computed
    /// against `b·T_c` (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside `(0, 1]`.
    pub fn with_clock_skew(mut self, b: f64) -> Self {
        assert!(b > 0.0 && b <= 1.0, "clock skew factor must be in (0, 1]");
        self.clock_skew = b;
        self
    }

    /// The bound circuit model.
    pub fn model(&self) -> &CircuitModel {
        &self.model
    }

    /// Required clock frequency, hertz.
    pub fn fc(&self) -> f64 {
        self.fc
    }

    /// The raw cycle time `T_c = 1/f_c`, seconds.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.fc
    }

    /// The clock-skew factor `b`.
    pub fn clock_skew(&self) -> f64 {
        self.clock_skew
    }

    /// The delay budget available to logic: `b·T_c`, seconds.
    pub fn effective_cycle_time(&self) -> f64 {
        self.clock_skew / self.fc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_device::Technology;
    use minpower_netlist::{GateKind, NetlistBuilder};

    fn problem() -> Problem {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        Problem::new(model, 300.0e6)
    }

    #[test]
    fn cycle_time_is_reciprocal_frequency() {
        let p = problem();
        assert!((p.cycle_time() - 1.0 / 3.0e8).abs() < 1e-20);
        assert_eq!(p.effective_cycle_time(), p.cycle_time());
    }

    #[test]
    fn skew_scales_effective_cycle_time() {
        let p = problem().with_clock_skew(0.9);
        assert!((p.effective_cycle_time() - 0.9 / 3.0e8).abs() < 1e-20);
        assert_eq!(p.clock_skew(), 0.9);
    }

    #[test]
    #[should_panic(expected = "clock skew factor")]
    fn bad_skew_panics() {
        let _ = problem().with_clock_skew(1.5);
    }

    fn model() -> CircuitModel {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3)
    }

    #[test]
    fn try_new_rejects_bad_frequencies_instead_of_panicking() {
        for fc in [0.0, -1.0e6, f64::NAN, f64::INFINITY] {
            let err = Problem::try_new(model(), fc).unwrap_err();
            assert!(
                matches!(
                    err,
                    OptimizeError::BadOption {
                        option: "cycle_time",
                        ..
                    }
                ),
                "fc = {fc}: {err:?}"
            );
        }
        assert!(Problem::try_new(model(), 300.0e6).is_ok());
    }

    #[test]
    fn validate_rejects_non_finite_activity() {
        // An infinite input density passes the activity crate's
        // non-negativity assert but propagates non-finite transition
        // densities through the whole network; validation must catch it
        // before any search iterates on it.
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        let bad = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, f64::INFINITY);
        let err = Problem::try_new(bad, 300.0e6).unwrap_err();
        assert!(
            matches!(
                err,
                OptimizeError::BadOption {
                    option: "activity",
                    ..
                }
            ),
            "{err:?}"
        );
    }
}
