//! The evaluation context: where core routes every full-circuit probe.
//!
//! [`EvalContext`] bundles the three `minpower-engine` layers for this
//! crate's call sites:
//!
//! * a `threads` knob consumed by the parallel call sites
//!   ([`crate::yield_mc`] trials, the bench suite runner);
//! * an optional [`EvalCache`] memoizing Procedure-2 probes — a probe is
//!   keyed by `(V_dd, V⃗_ts)` plus a salt folding in the circuit
//!   fingerprint, the cycle time, and every sizing option, and a hit
//!   additionally requires an exact bit-pattern match, so caching never
//!   changes results;
//! * shared [`EngineStats`] telemetry rendered by the CLI and the
//!   experiment harness.
//!
//! A process-wide context is reachable via [`EvalContext::global`]
//! (installable once, before first use, via [`EvalContext::install`]);
//! individual optimizer runs can override it with
//! [`crate::Optimizer::with_engine`] — how the determinism tests compare
//! cache-on against cache-off runs.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use minpower_engine::{fnv1a_words, CacheStats, EngineStats, EvalCache, Quantizer, StatsSnapshot};
use minpower_models::EnergyBreakdown;

use crate::checkpoint::ProbeRecord;
use crate::search::Sized;

/// Default capacity of the probe cache, in entries. A `Sized` for an
/// `N`-gate circuit holds two `N`-element vectors, so this bounds cache
/// memory to a few tens of megabytes even for the largest suite circuit.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Shared evaluation state: thread count, probe cache, telemetry.
pub struct EvalContext {
    threads: usize,
    cache: Option<EvalCache<Sized>>,
    quantizer: Quantizer,
    stats: Arc<EngineStats>,
    incremental: bool,
    soa: bool,
    /// Probe journal for checkpointing: every distinct probe completed
    /// since [`EvalContext::enable_probe_journal`], in completion order.
    journal: Mutex<Option<Journal>>,
    /// Monotone probe counter — the call index of the `probe.nan` fault
    /// site.
    probe_seq: AtomicU64,
}

struct Journal {
    /// Exact fingerprints already journaled (dedup across cache replays).
    seen: HashSet<u64>,
    /// The budget vector all journaled probes shared (constant per run).
    budgets: Option<Vec<f64>>,
    records: Vec<ProbeRecord>,
}

impl std::fmt::Debug for EvalContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalContext")
            .field("threads", &self.threads)
            .field(
                "cache_capacity",
                &self.cache.as_ref().map(EvalCache::capacity),
            )
            .field("incremental", &self.incremental)
            .field("soa", &self.soa)
            .finish()
    }
}

impl Default for EvalContext {
    fn default() -> Self {
        EvalContext::new(default_threads(), DEFAULT_CACHE_CAPACITY)
    }
}

/// The machine's available parallelism (1 if unknown).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

static GLOBAL: OnceLock<Arc<EvalContext>> = OnceLock::new();

impl EvalContext {
    /// Creates a context with `threads` workers and a probe cache of
    /// `cache_capacity` entries (`0` disables caching entirely).
    pub fn new(threads: usize, cache_capacity: usize) -> Self {
        EvalContext {
            threads: threads.max(1),
            cache: (cache_capacity > 0).then(|| EvalCache::new(cache_capacity)),
            quantizer: Quantizer::default(),
            stats: Arc::new(EngineStats::new()),
            incremental: true,
            soa: true,
            journal: Mutex::new(None),
            probe_seq: AtomicU64::new(0),
        }
    }

    /// Enables or disables the incremental timing/energy fast path of the
    /// width-sizing inner loops (the CLI's `--no-incremental` escape
    /// hatch). The two paths are bit-identical — this toggles *how* a
    /// probe is computed, never its result — so the flag deliberately does
    /// **not** enter the probe-cache salt.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Whether the width-sizing loops use the incremental evaluation
    /// layer (default `true`).
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Enables or disables the levelized structure-of-arrays kernel with
    /// batched width probes in the sizing sweeps (the CLI's `--no-soa`
    /// escape hatch). Like `incremental`, the SoA and scalar paths are
    /// bit-identical — this toggles *how* a probe is computed, never its
    /// result — so the flag deliberately does **not** enter the
    /// probe-cache salt.
    pub fn with_soa(mut self, soa: bool) -> Self {
        self.soa = soa;
        self
    }

    /// Whether the width-sizing sweeps run on the batched SoA kernel
    /// (default `true`).
    pub fn soa(&self) -> bool {
        self.soa
    }

    /// The process-wide context. First use materializes the default
    /// (all cores, caching on) unless [`install`](Self::install) ran
    /// earlier.
    pub fn global() -> Arc<EvalContext> {
        GLOBAL
            .get_or_init(|| Arc::new(EvalContext::default()))
            .clone()
    }

    /// Installs `ctx` as the process-wide context. Returns `false` if a
    /// global context was already materialized (install, like a CLI flag
    /// parser, must run before the first optimization).
    pub fn install(ctx: EvalContext) -> bool {
        GLOBAL.set(Arc::new(ctx)).is_ok()
    }

    /// Worker threads available to parallel call sites.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether probe memoization is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The shared telemetry counters.
    pub fn stats(&self) -> &Arc<EngineStats> {
        &self.stats
    }

    /// A snapshot of the telemetry counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Probe-cache counters, if caching is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(EvalCache::stats)
    }

    /// Starts recording every distinct probe into the journal (clearing
    /// any previous journal). The journal is what a search checkpoint
    /// snapshots: replaying it through
    /// [`preload_probes`](Self::preload_probes) makes a resumed
    /// deterministic search bit-identical to the uninterrupted run.
    pub fn enable_probe_journal(&self) {
        let mut guard = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(Journal {
            seen: HashSet::new(),
            budgets: None,
            records: Vec::new(),
        });
    }

    /// A snapshot of the journal: the shared budget vector and every
    /// distinct probe recorded so far. Empty when journaling is off.
    pub fn probe_journal(&self) -> (Vec<f64>, Vec<ProbeRecord>) {
        let guard = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(j) => (j.budgets.clone().unwrap_or_default(), j.records.clone()),
            None => (Vec::new(), Vec::new()),
        }
    }

    /// Preloads checkpointed probes into the evaluation cache (and into
    /// the journal, when enabled, so subsequent checkpoints stay
    /// cumulative). With caching disabled this only re-journals: the
    /// resumed search then recomputes each probe — slower, but still
    /// bit-identical, since cache hits never change results.
    pub fn preload_probes(&self, salt: u64, budgets: &[f64], probes: &[ProbeRecord]) {
        for p in probes {
            let out = Sized {
                design: p.design.clone(),
                energy: p.energy,
                critical_delay: p.critical_delay,
                feasible: p.feasible,
            };
            if let Some(cache) = &self.cache {
                let (key, fingerprint) = self.quantizer.key(p.vdd, &p.vts, budgets, salt);
                cache.insert(key, fingerprint, out.clone());
            }
            self.record_probe(salt, p.vdd, &p.vts, budgets, &out);
        }
    }

    fn record_probe(&self, salt: u64, vdd: f64, vts: &[f64], widths: &[f64], out: &Sized) {
        let mut guard = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        let Some(journal) = guard.as_mut() else {
            return;
        };
        let (_, fingerprint) = self.quantizer.key(vdd, vts, widths, salt);
        if !journal.seen.insert(fingerprint.0) {
            return;
        }
        if journal.budgets.is_none() {
            journal.budgets = Some(widths.to_vec());
        }
        journal.records.push(ProbeRecord {
            vdd,
            vts: vts.to_vec(),
            design: out.design.clone(),
            energy: out.energy,
            critical_delay: out.critical_delay,
            feasible: out.feasible,
        });
    }

    /// Routes one Procedure-2 probe: counts it, consults the cache, and
    /// falls back to `compute`. `widths` carries the per-gate budget
    /// vector — the width-shaping input of the probe (the concrete widths
    /// are the probe's *output*).
    pub(crate) fn probe(
        &self,
        salt: u64,
        vdd: f64,
        vts: &[f64],
        widths: &[f64],
        compute: impl FnOnce() -> Sized,
    ) -> Sized {
        self.stats.count_eval();
        let out = if let Some(cache) = &self.cache {
            let (key, fingerprint) = self.quantizer.key(vdd, vts, widths, salt);
            if let Some(hit) = cache.get(&key, fingerprint) {
                self.stats.count_hit();
                hit
            } else {
                self.stats.count_miss();
                let out = compute();
                cache.insert(key, fingerprint, out.clone());
                out
            }
        } else {
            compute()
        };
        self.record_probe(salt, vdd, vts, widths, &out);
        // Fault site `probe.nan`: hand the caller a NaN-energy outcome as
        // a broken device model would, *after* journaling/caching the
        // clean value — the injected fault must poison this observation,
        // not the memo the resume path replays. The search loops' finite
        // guards must reject it rather than return it as an optimum.
        let seq = self.probe_seq.fetch_add(1, Ordering::Relaxed);
        if minpower_engine::faults::should_fire("probe.nan", seq) {
            self.stats.count_fault_injected();
            let mut poisoned = out;
            poisoned.energy = EnergyBreakdown::new(f64::NAN, f64::NAN);
            return poisoned;
        }
        out
    }
}

/// Salt for probe-cache keys: everything besides `(V_dd, V⃗_ts)` that
/// determines a probe's outcome. Two probes share a salt only if they run
/// on the same circuit model, at the same cycle time, under the same
/// sizing options.
pub(crate) fn probe_salt(
    problem: &crate::problem::Problem,
    steps: usize,
    width_passes: usize,
    vt_tolerance: f64,
    policy: crate::budget::BudgetPolicy,
    sizing: crate::search::SizingMethod,
) -> u64 {
    let policy_tag = match policy {
        crate::budget::BudgetPolicy::FanoutWeighted => 0u64,
        crate::budget::BudgetPolicy::Uniform => 1,
        crate::budget::BudgetPolicy::SqrtFanout => 2,
    };
    let sizing_tag = match sizing {
        crate::search::SizingMethod::Budgeted => 0u64,
        crate::search::SizingMethod::Greedy => 1,
    };
    fnv1a_words([
        problem.model().fingerprint(),
        problem.fc().to_bits(),
        problem.effective_cycle_time().to_bits(),
        steps as u64,
        width_passes as u64,
        vt_tolerance.to_bits(),
        policy_tag,
        sizing_tag,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_device::Technology;
    use minpower_models::{CircuitModel, Design, EnergyBreakdown};
    use minpower_netlist::{GateKind, NetlistBuilder};

    fn dummy_sized(tag: f64) -> Sized {
        Sized {
            design: Design {
                vdd: tag,
                vt: vec![tag],
                width: vec![tag],
            },
            energy: EnergyBreakdown::default(),
            critical_delay: tag,
            feasible: true,
        }
    }

    #[test]
    fn probe_caches_identical_points() {
        let ctx = EvalContext::new(1, 64);
        let mut computes = 0;
        for _ in 0..3 {
            let s = ctx.probe(1, 1.5, &[0.3, 0.3], &[1.0], || {
                computes += 1;
                dummy_sized(1.5)
            });
            assert_eq!(s.design.vdd, 1.5);
        }
        assert_eq!(computes, 1);
        let snap = ctx.snapshot();
        assert_eq!(snap.circuit_evals, 3);
        assert_eq!((snap.cache_hits, snap.cache_misses), (2, 1));
    }

    #[test]
    fn disabled_cache_always_computes() {
        let ctx = EvalContext::new(1, 0);
        assert!(!ctx.cache_enabled());
        let mut computes = 0;
        for _ in 0..3 {
            let _ = ctx.probe(1, 1.5, &[0.3], &[1.0], || {
                computes += 1;
                dummy_sized(0.0)
            });
        }
        assert_eq!(computes, 3);
        assert_eq!(ctx.cache_stats(), None);
    }

    #[test]
    fn different_salts_do_not_share_entries() {
        let ctx = EvalContext::new(1, 64);
        let a = ctx.probe(1, 1.0, &[0.3], &[], || dummy_sized(1.0));
        let b = ctx.probe(2, 1.0, &[0.3], &[], || dummy_sized(2.0));
        assert_ne!(a.design.vdd, b.design.vdd);
    }

    #[test]
    fn salt_separates_options_and_problems() {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        let mk = |fc: f64, density: f64| {
            let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, density);
            crate::problem::Problem::new(model, fc)
        };
        let p1 = mk(200.0e6, 0.3);
        let base = probe_salt(
            &p1,
            14,
            2,
            0.0,
            crate::budget::BudgetPolicy::FanoutWeighted,
            crate::search::SizingMethod::Budgeted,
        );
        // Different frequency, activity, or options must change the salt.
        for other in [
            probe_salt(
                &mk(300.0e6, 0.3),
                14,
                2,
                0.0,
                crate::budget::BudgetPolicy::FanoutWeighted,
                crate::search::SizingMethod::Budgeted,
            ),
            probe_salt(
                &mk(200.0e6, 0.1),
                14,
                2,
                0.0,
                crate::budget::BudgetPolicy::FanoutWeighted,
                crate::search::SizingMethod::Budgeted,
            ),
            probe_salt(
                &p1,
                15,
                2,
                0.0,
                crate::budget::BudgetPolicy::FanoutWeighted,
                crate::search::SizingMethod::Budgeted,
            ),
            probe_salt(
                &p1,
                14,
                2,
                0.0,
                crate::budget::BudgetPolicy::Uniform,
                crate::search::SizingMethod::Budgeted,
            ),
            probe_salt(
                &p1,
                14,
                2,
                0.0,
                crate::budget::BudgetPolicy::FanoutWeighted,
                crate::search::SizingMethod::Greedy,
            ),
        ] {
            assert_ne!(base, other);
        }
    }
}
