//! Monte-Carlo timing yield under random threshold variation.
//!
//! Fig. 2(a) treats process fluctuation with *worst-case* margining:
//! every device simultaneously at its slow corner. Real fluctuation is
//! per-device and statistical, so the honest question is a **yield**:
//! what fraction of manufactured die meet the cycle time? This module
//! samples per-gate thresholds from a Gaussian around the design value
//! and evaluates timing for each sample — showing that the margined
//! design buys its energy premium in the form of near-unit yield, while
//! the unmargined optimum fails a measurable fraction of die.

use minpower_engine::stats::Phase;
use minpower_engine::{try_par_map_indices, SplitMix64};
use minpower_models::Design;

use crate::context::EvalContext;
use crate::error::OptimizeError;
use crate::problem::Problem;
use crate::runctl::RunControl;

/// Trials per scheduling chunk: the run control is polled between chunks,
/// so this bounds how many trials an interruption can overshoot by. Fixed
/// (not thread-count-derived) so the chunk boundaries — and therefore the
/// trip points — are identical on every machine.
const CHUNK: usize = 64;

/// Result of a timing-yield Monte Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldResult {
    /// Fraction of samples meeting the cycle time, in `[0, 1]`.
    pub timing_yield: f64,
    /// Mean critical delay over the samples, seconds.
    pub mean_delay: f64,
    /// Worst sampled critical delay, seconds.
    pub worst_delay: f64,
    /// Mean total energy over the samples (leaky devices leak more),
    /// joules.
    pub mean_energy: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Samples per-gate thresholds as `N(vt_i, (sigma_rel·vt_i)²)`, clamped
/// to stay positive, and evaluates `design`'s timing and energy for each
/// sample.
///
/// Trials run on the process-wide [`EvalContext`]'s worker pool; each
/// trial draws from its own seeded PRNG stream and the partial results
/// reduce in trial order, so the outcome is deterministic for a given
/// `seed` regardless of the thread count.
///
/// # Panics
///
/// Panics if `samples` is zero or `sigma_rel` is negative.
///
/// # Example
///
/// ```
/// use minpower_core::{yield_mc, Optimizer, Problem};
/// use minpower_device::Technology;
/// use minpower_models::CircuitModel;
/// # use minpower_netlist::{GateKind, NetlistBuilder};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut b = NetlistBuilder::new("t");
/// # b.input("a")?;
/// # b.gate("x", GateKind::Nand, &["a", "a"])?;
/// # b.gate("y", GateKind::Nor, &["x", "a"])?;
/// # b.output("y")?;
/// # let n = b.finish()?;
/// let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
/// let problem = Problem::new(model, 200.0e6);
/// let r = Optimizer::new(&problem).run()?;
/// let y = yield_mc::timing_yield(&problem, &r.design, 0.05, 200, 7);
/// assert!(y.timing_yield >= 0.0 && y.timing_yield <= 1.0);
/// # Ok(())
/// # }
/// ```
pub fn timing_yield(
    problem: &Problem,
    design: &Design,
    sigma_rel: f64,
    samples: usize,
    seed: u64,
) -> YieldResult {
    timing_yield_with(
        &EvalContext::global(),
        problem,
        design,
        sigma_rel,
        samples,
        seed,
    )
}

/// [`timing_yield`] on an explicit [`EvalContext`] (thread count and
/// telemetry of the caller's choosing).
///
/// # Panics
///
/// Panics if `samples` is zero, `sigma_rel` is negative, or a trial's
/// evaluation panicked on a worker (re-raised here; use
/// [`timing_yield_ctl`] to receive it as a typed error instead).
pub fn timing_yield_with(
    ctx: &EvalContext,
    problem: &Problem,
    design: &Design,
    sigma_rel: f64,
    samples: usize,
    seed: u64,
) -> YieldResult {
    match timing_yield_ctl(
        ctx,
        problem,
        design,
        sigma_rel,
        samples,
        seed,
        &RunControl::new(),
    ) {
        Ok(r) => r,
        Err(OptimizeError::WorkerPanicked { index, message }) => {
            panic!("worker panicked at index {index}: {message}")
        }
        // A default RunControl never trips and no other error is reachable.
        Err(e) => panic!("unexpected yield error: {e}"),
    }
}

/// [`timing_yield_with`] under a [`RunControl`], with typed failure
/// containment.
///
/// Trials run in fixed-size chunks; the control is polled between chunks
/// and a trip returns [`OptimizeError::Interrupted`] whose
/// `progress.evaluations` reports the trials completed (there is no
/// meaningful partial yield estimate, so `best_so_far` is `None`). A
/// panic inside a trial — a poisoned model, an injected fault — is caught
/// on the worker, its sibling trials drained, and surfaced as
/// [`OptimizeError::WorkerPanicked`] instead of tearing down the caller.
///
/// # Errors
///
/// [`OptimizeError::Interrupted`] on a control trip,
/// [`OptimizeError::WorkerPanicked`] when a trial panicked.
///
/// # Panics
///
/// Panics if `samples` is zero or `sigma_rel` is negative.
#[allow(clippy::too_many_arguments)]
pub fn timing_yield_ctl(
    ctx: &EvalContext,
    problem: &Problem,
    design: &Design,
    sigma_rel: f64,
    samples: usize,
    seed: u64,
    control: &RunControl,
) -> Result<YieldResult, OptimizeError> {
    assert!(samples > 0, "need at least one sample");
    assert!(sigma_rel >= 0.0, "sigma must be non-negative");
    let model = problem.model();
    let tc = problem.effective_cycle_time();
    let stats = ctx.stats().clone();
    // Each trial owns a PRNG stream derived from (seed, trial index), so
    // the drawn thresholds — and therefore the whole result — do not
    // depend on how trials land on workers or where chunks split.
    let trial = |t: usize| {
        // Per-worker scratch: trial loops are the hottest full-pass
        // caller, so reuse the delay/arrival buffers across trials
        // instead of allocating fresh vectors per evaluation.
        thread_local! {
            static SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        let mut rng = SplitMix64::stream(seed, t as u64);
        let mut sample = design.clone();
        for (i, &vt) in design.vt.iter().enumerate() {
            let z = rng.normal();
            sample.vt[i] = (vt * (1.0 + sigma_rel * z)).max(0.01);
        }
        // `timing_into` + `total_energy` produce bitwise the
        // `critical_delay` / `energy` of `CircuitModel::evaluate`.
        let critical_delay = SCRATCH.with(|s| {
            let (delays, arrival) = &mut *s.borrow_mut();
            model.timing_into(&sample, delays, arrival)
        });
        let energy = model.total_energy(&sample, problem.fc());
        stats.count_eval();
        stats.count_sta(1);
        (critical_delay, energy.total())
    };

    // Reduce in trial order as chunks complete: bitwise-identical for
    // every thread count and chunk placement.
    let mut pass = 0usize;
    let mut sum_delay = 0.0;
    let mut worst: f64 = 0.0;
    let mut sum_energy = 0.0;
    let mut done = 0usize;
    stats.time(Phase::MonteCarlo, || {
        while done < samples {
            if let Some(reason) = control.trip() {
                stats.count_deadline_trip();
                return Err(OptimizeError::Interrupted {
                    reason,
                    best_so_far: None,
                    progress: control.progress(done),
                });
            }
            let count = CHUNK.min(samples - done);
            let base = done;
            let chunk =
                try_par_map_indices(ctx.threads(), count, |i| trial(base + i)).map_err(|p| {
                    stats.count_panic_recovered();
                    OptimizeError::WorkerPanicked {
                        index: base + p.index,
                        message: p.message,
                    }
                })?;
            for &(delay, energy) in &chunk {
                if delay <= tc {
                    pass += 1;
                }
                sum_delay += delay;
                worst = worst.max(delay);
                sum_energy += energy;
            }
            done += count;
        }
        Ok(())
    })?;
    Ok(YieldResult {
        timing_yield: pass as f64 / samples as f64,
        mean_delay: sum_delay / samples as f64,
        worst_delay: worst,
        mean_energy: sum_energy / samples as f64,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Optimizer;
    use crate::variation;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

    fn netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Nand, &["a", "c"]).unwrap();
        b.gate("v", GateKind::Nor, &["u", "c"]).unwrap();
        b.gate("w", GateKind::Nand, &["u", "v"]).unwrap();
        b.gate("y", GateKind::Not, &["w"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    fn problem() -> Problem {
        let model = CircuitModel::with_uniform_activity(&netlist(), Technology::dac97(), 0.5, 0.3);
        Problem::new(model, 200.0e6)
    }

    #[test]
    fn zero_sigma_yields_unity_for_feasible_designs() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let y = timing_yield(&p, &r.design, 0.0, 50, 1);
        assert_eq!(y.timing_yield, 1.0);
        assert!((y.worst_delay - r.critical_delay).abs() < 1e-15);
    }

    #[test]
    fn yield_degrades_with_sigma() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let tight = timing_yield(&p, &r.design, 0.02, 300, 2);
        let loose = timing_yield(&p, &r.design, 0.25, 300, 2);
        assert!(tight.timing_yield >= loose.timing_yield);
        assert!(loose.worst_delay > tight.worst_delay);
    }

    #[test]
    fn margined_design_has_higher_yield_than_unmargined() {
        let p = problem();
        let sigma = 0.10;
        let plain = Optimizer::new(&p).run().unwrap();
        let margined = variation::optimize_with_tolerance(&p, 3.0 * sigma).unwrap();
        let y_plain = timing_yield(&p, &plain.design, sigma, 400, 3);
        let y_margined = timing_yield(&p, &margined.design, sigma, 400, 3);
        assert!(
            y_margined.timing_yield >= y_plain.timing_yield,
            "margined {} < plain {}",
            y_margined.timing_yield,
            y_plain.timing_yield
        );
        // The 3-sigma margined design should be essentially yield-clean.
        assert!(
            y_margined.timing_yield > 0.95,
            "{}",
            y_margined.timing_yield
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let serial = timing_yield_with(&EvalContext::new(1, 0), &p, &r.design, 0.1, 64, 5);
        for threads in [2, 4, 7] {
            let parallel =
                timing_yield_with(&EvalContext::new(threads, 0), &p, &r.design, 0.1, 64, 5);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let a = timing_yield(&p, &r.design, 0.1, 100, 9);
        let b = timing_yield(&p, &r.design, 0.1, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let _ = timing_yield(&p, &r.design, 0.1, 0, 1);
    }
}
