//! Monte-Carlo timing yield under random threshold variation.
//!
//! Fig. 2(a) treats process fluctuation with *worst-case* margining:
//! every device simultaneously at its slow corner. Real fluctuation is
//! per-device and statistical, so the honest question is a **yield**:
//! what fraction of manufactured die meet the cycle time? This module
//! samples per-gate thresholds from a Gaussian around the design value
//! and evaluates timing for each sample — showing that the margined
//! design buys its energy premium in the form of near-unit yield, while
//! the unmargined optimum fails a measurable fraction of die.

use minpower_engine::stats::Phase;
use minpower_engine::{try_par_map_indices, SplitMix64};
use minpower_models::Design;

use crate::context::EvalContext;
use crate::error::OptimizeError;
use crate::problem::Problem;
use crate::runctl::RunControl;

/// Trials per scheduling chunk: the run control is polled between chunks,
/// so this bounds how many trials an interruption can overshoot by. Fixed
/// (not thread-count-derived) so the chunk boundaries — and therefore the
/// trip points — are identical on every machine.
const CHUNK: usize = 64;

/// Result of a timing-yield Monte Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldResult {
    /// Fraction of samples meeting the cycle time, in `[0, 1]`.
    pub timing_yield: f64,
    /// Mean critical delay over the samples, seconds.
    pub mean_delay: f64,
    /// Worst sampled critical delay, seconds.
    pub worst_delay: f64,
    /// Mean total energy over the samples (leaky devices leak more),
    /// joules.
    pub mean_energy: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The in-order reduction shared by the single-process yield loop and
/// the distributed shard merge: feeding it the same per-trial outcomes
/// in the same trial order always produces the same bits, which is what
/// makes seed-stream sharding (`minpower-coord`) bit-identical to
/// [`timing_yield`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TrialReducer {
    pass: usize,
    sum_delay: f64,
    worst: f64,
    sum_energy: f64,
    done: usize,
}

impl TrialReducer {
    /// A fresh reducer with nothing accumulated.
    pub fn new() -> Self {
        TrialReducer::default()
    }

    /// Folds one trial's `(critical_delay, energy)` outcome in, judged
    /// against cycle time `tc`. Must be called in trial order.
    pub fn add(&mut self, delay: f64, energy: f64, tc: f64) {
        if delay <= tc {
            self.pass += 1;
        }
        self.sum_delay += delay;
        self.worst = self.worst.max(delay);
        self.sum_energy += energy;
        self.done += 1;
    }

    /// Trials folded in so far.
    pub fn count(&self) -> usize {
        self.done
    }

    /// The final statistics.
    ///
    /// # Panics
    ///
    /// Panics when no trials were added.
    pub fn finish(self) -> YieldResult {
        assert!(self.done > 0, "need at least one sample");
        YieldResult {
            timing_yield: self.pass as f64 / self.done as f64,
            mean_delay: self.sum_delay / self.done as f64,
            worst_delay: self.worst,
            mean_energy: self.sum_energy / self.done as f64,
            samples: self.done,
        }
    }
}

/// Reduces per-trial `(critical_delay, energy)` outcomes — concatenated
/// in trial order across shard boundaries — against cycle time `tc`.
/// Bitwise-identical to what [`timing_yield_ctl`] computes from the same
/// trials, for any sharding of the trial range.
///
/// # Panics
///
/// Panics when `trials` is empty.
pub fn reduce_trials(tc: f64, trials: &[(f64, f64)]) -> YieldResult {
    let mut reducer = TrialReducer::new();
    for &(delay, energy) in trials {
        reducer.add(delay, energy, tc);
    }
    reducer.finish()
}

/// Runs the contiguous trial range `[start, start + count)` of the
/// seed-stream Monte Carlo and returns the **raw per-trial outcomes**
/// `(critical_delay, total_energy)` instead of reduced statistics.
///
/// Trial `t` draws from `SplitMix64::stream(seed, t)` regardless of the
/// range it is computed in, so a coordinator can split `0..samples` into
/// arbitrary contiguous ranges, run them on different workers, and
/// [`reduce_trials`] the concatenation into bitwise the same
/// [`YieldResult`] a single [`timing_yield_ctl`] run produces.
///
/// # Errors
///
/// [`OptimizeError::Interrupted`] on a control trip,
/// [`OptimizeError::WorkerPanicked`] when a trial panicked.
///
/// # Panics
///
/// Panics if `count` is zero or `sigma_rel` is negative.
#[allow(clippy::too_many_arguments)]
pub fn yield_trials_ctl(
    ctx: &EvalContext,
    problem: &Problem,
    design: &Design,
    sigma_rel: f64,
    start: usize,
    count: usize,
    seed: u64,
    control: &RunControl,
) -> Result<Vec<(f64, f64)>, OptimizeError> {
    assert!(count > 0, "need at least one sample");
    assert!(sigma_rel >= 0.0, "sigma must be non-negative");
    let stats = ctx.stats().clone();
    let mut out = Vec::with_capacity(count);
    stats.time(Phase::MonteCarlo, || {
        let mut done = 0usize;
        while done < count {
            if let Some(reason) = control.trip() {
                stats.count_deadline_trip();
                return Err(OptimizeError::Interrupted {
                    reason,
                    best_so_far: None,
                    progress: control.progress(done),
                });
            }
            let n = CHUNK.min(count - done);
            let base = start + done;
            let chunk = run_chunk(ctx, problem, design, sigma_rel, seed, base, n, &stats)?;
            out.extend_from_slice(&chunk);
            done += n;
        }
        Ok(())
    })?;
    Ok(out)
}

/// One scheduling chunk of trials `[base, base + count)`, parallel over
/// the context's pool, results in trial order.
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    ctx: &EvalContext,
    problem: &Problem,
    design: &Design,
    sigma_rel: f64,
    seed: u64,
    base: usize,
    count: usize,
    stats: &minpower_engine::EngineStats,
) -> Result<Vec<(f64, f64)>, OptimizeError> {
    let model = problem.model();
    let trial = |t: usize| {
        // Per-worker scratch: trial loops are the hottest full-pass
        // caller, so reuse the delay/arrival buffers across trials
        // instead of allocating fresh vectors per evaluation.
        thread_local! {
            static SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        let mut rng = SplitMix64::stream(seed, t as u64);
        let mut sample = design.clone();
        for (i, &vt) in design.vt.iter().enumerate() {
            let z = rng.normal();
            sample.vt[i] = (vt * (1.0 + sigma_rel * z)).max(0.01);
        }
        // `timing_into` + `total_energy` produce bitwise the
        // `critical_delay` / `energy` of `CircuitModel::evaluate`.
        let critical_delay = SCRATCH.with(|s| {
            let (delays, arrival) = &mut *s.borrow_mut();
            model.timing_into(&sample, delays, arrival)
        });
        let energy = model.total_energy(&sample, problem.fc());
        stats.count_eval();
        stats.count_sta(1);
        (critical_delay, energy.total())
    };
    try_par_map_indices(ctx.threads(), count, |i| trial(base + i)).map_err(|p| {
        stats.count_panic_recovered();
        OptimizeError::WorkerPanicked {
            index: base + p.index,
            message: p.message,
        }
    })
}

/// Samples per-gate thresholds as `N(vt_i, (sigma_rel·vt_i)²)`, clamped
/// to stay positive, and evaluates `design`'s timing and energy for each
/// sample.
///
/// Trials run on the process-wide [`EvalContext`]'s worker pool; each
/// trial draws from its own seeded PRNG stream and the partial results
/// reduce in trial order, so the outcome is deterministic for a given
/// `seed` regardless of the thread count.
///
/// # Panics
///
/// Panics if `samples` is zero or `sigma_rel` is negative.
///
/// # Example
///
/// ```
/// use minpower_core::{yield_mc, Optimizer, Problem};
/// use minpower_device::Technology;
/// use minpower_models::CircuitModel;
/// # use minpower_netlist::{GateKind, NetlistBuilder};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut b = NetlistBuilder::new("t");
/// # b.input("a")?;
/// # b.gate("x", GateKind::Nand, &["a", "a"])?;
/// # b.gate("y", GateKind::Nor, &["x", "a"])?;
/// # b.output("y")?;
/// # let n = b.finish()?;
/// let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
/// let problem = Problem::new(model, 200.0e6);
/// let r = Optimizer::new(&problem).run()?;
/// let y = yield_mc::timing_yield(&problem, &r.design, 0.05, 200, 7);
/// assert!(y.timing_yield >= 0.0 && y.timing_yield <= 1.0);
/// # Ok(())
/// # }
/// ```
pub fn timing_yield(
    problem: &Problem,
    design: &Design,
    sigma_rel: f64,
    samples: usize,
    seed: u64,
) -> YieldResult {
    timing_yield_with(
        &EvalContext::global(),
        problem,
        design,
        sigma_rel,
        samples,
        seed,
    )
}

/// [`timing_yield`] on an explicit [`EvalContext`] (thread count and
/// telemetry of the caller's choosing).
///
/// # Panics
///
/// Panics if `samples` is zero, `sigma_rel` is negative, or a trial's
/// evaluation panicked on a worker (re-raised here; use
/// [`timing_yield_ctl`] to receive it as a typed error instead).
pub fn timing_yield_with(
    ctx: &EvalContext,
    problem: &Problem,
    design: &Design,
    sigma_rel: f64,
    samples: usize,
    seed: u64,
) -> YieldResult {
    match timing_yield_ctl(
        ctx,
        problem,
        design,
        sigma_rel,
        samples,
        seed,
        &RunControl::new(),
    ) {
        Ok(r) => r,
        Err(OptimizeError::WorkerPanicked { index, message }) => {
            panic!("worker panicked at index {index}: {message}")
        }
        // A default RunControl never trips and no other error is reachable.
        Err(e) => panic!("unexpected yield error: {e}"),
    }
}

/// [`timing_yield_with`] under a [`RunControl`], with typed failure
/// containment.
///
/// Trials run in fixed-size chunks; the control is polled between chunks
/// and a trip returns [`OptimizeError::Interrupted`] whose
/// `progress.evaluations` reports the trials completed (there is no
/// meaningful partial yield estimate, so `best_so_far` is `None`). A
/// panic inside a trial — a poisoned model, an injected fault — is caught
/// on the worker, its sibling trials drained, and surfaced as
/// [`OptimizeError::WorkerPanicked`] instead of tearing down the caller.
///
/// # Errors
///
/// [`OptimizeError::Interrupted`] on a control trip,
/// [`OptimizeError::WorkerPanicked`] when a trial panicked.
///
/// # Panics
///
/// Panics if `samples` is zero or `sigma_rel` is negative.
#[allow(clippy::too_many_arguments)]
pub fn timing_yield_ctl(
    ctx: &EvalContext,
    problem: &Problem,
    design: &Design,
    sigma_rel: f64,
    samples: usize,
    seed: u64,
    control: &RunControl,
) -> Result<YieldResult, OptimizeError> {
    assert!(samples > 0, "need at least one sample");
    assert!(sigma_rel >= 0.0, "sigma must be non-negative");
    let tc = problem.effective_cycle_time();
    let stats = ctx.stats().clone();
    // Each trial owns a PRNG stream derived from (seed, trial index), so
    // the drawn thresholds — and therefore the whole result — do not
    // depend on how trials land on workers or where chunks split. The
    // chunk runner and the reducer are shared with the sharded path
    // (`yield_trials_ctl` + `reduce_trials`), which is what makes a
    // coordinator's merged result bit-identical to this loop.
    let mut reducer = TrialReducer::new();
    stats.time(Phase::MonteCarlo, || {
        while reducer.count() < samples {
            if let Some(reason) = control.trip() {
                stats.count_deadline_trip();
                return Err(OptimizeError::Interrupted {
                    reason,
                    best_so_far: None,
                    progress: control.progress(reducer.count()),
                });
            }
            let base = reducer.count();
            let count = CHUNK.min(samples - base);
            let chunk = run_chunk(ctx, problem, design, sigma_rel, seed, base, count, &stats)?;
            for &(delay, energy) in &chunk {
                reducer.add(delay, energy, tc);
            }
        }
        Ok(())
    })?;
    Ok(reducer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Optimizer;
    use crate::variation;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

    fn netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Nand, &["a", "c"]).unwrap();
        b.gate("v", GateKind::Nor, &["u", "c"]).unwrap();
        b.gate("w", GateKind::Nand, &["u", "v"]).unwrap();
        b.gate("y", GateKind::Not, &["w"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    fn problem() -> Problem {
        let model = CircuitModel::with_uniform_activity(&netlist(), Technology::dac97(), 0.5, 0.3);
        Problem::new(model, 200.0e6)
    }

    #[test]
    fn zero_sigma_yields_unity_for_feasible_designs() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let y = timing_yield(&p, &r.design, 0.0, 50, 1);
        assert_eq!(y.timing_yield, 1.0);
        assert!((y.worst_delay - r.critical_delay).abs() < 1e-15);
    }

    #[test]
    fn yield_degrades_with_sigma() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let tight = timing_yield(&p, &r.design, 0.02, 300, 2);
        let loose = timing_yield(&p, &r.design, 0.25, 300, 2);
        assert!(tight.timing_yield >= loose.timing_yield);
        assert!(loose.worst_delay > tight.worst_delay);
    }

    #[test]
    fn margined_design_has_higher_yield_than_unmargined() {
        let p = problem();
        let sigma = 0.10;
        let plain = Optimizer::new(&p).run().unwrap();
        let margined = variation::optimize_with_tolerance(&p, 3.0 * sigma).unwrap();
        let y_plain = timing_yield(&p, &plain.design, sigma, 400, 3);
        let y_margined = timing_yield(&p, &margined.design, sigma, 400, 3);
        assert!(
            y_margined.timing_yield >= y_plain.timing_yield,
            "margined {} < plain {}",
            y_margined.timing_yield,
            y_plain.timing_yield
        );
        // The 3-sigma margined design should be essentially yield-clean.
        assert!(
            y_margined.timing_yield > 0.95,
            "{}",
            y_margined.timing_yield
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let serial = timing_yield_with(&EvalContext::new(1, 0), &p, &r.design, 0.1, 64, 5);
        for threads in [2, 4, 7] {
            let parallel =
                timing_yield_with(&EvalContext::new(threads, 0), &p, &r.design, 0.1, 64, 5);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let a = timing_yield(&p, &r.design, 0.1, 100, 9);
        let b = timing_yield(&p, &r.design, 0.1, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_trial_ranges_reduce_bit_identically() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let samples = 250;
        let whole = timing_yield(&p, &r.design, 0.12, samples, 11);
        // Uneven shard boundaries, deliberately not CHUNK-aligned.
        for splits in [vec![0, 250], vec![0, 1, 250], vec![0, 63, 127, 200, 250]] {
            let mut trials = Vec::new();
            for pair in splits.windows(2) {
                let ctx = EvalContext::new(1, 0);
                let part = yield_trials_ctl(
                    &ctx,
                    &p,
                    &r.design,
                    0.12,
                    pair[0],
                    pair[1] - pair[0],
                    11,
                    &RunControl::new(),
                )
                .unwrap();
                trials.extend_from_slice(&part);
            }
            let merged = reduce_trials(p.effective_cycle_time(), &trials);
            assert_eq!(merged, whole, "splits {splits:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let _ = timing_yield(&p, &r.design, 0.1, 0, 1);
    }
}
