//! Monte-Carlo timing yield under random threshold variation.
//!
//! Fig. 2(a) treats process fluctuation with *worst-case* margining:
//! every device simultaneously at its slow corner. Real fluctuation is
//! per-device and statistical, so the honest question is a **yield**:
//! what fraction of manufactured die meet the cycle time? This module
//! samples per-gate thresholds from a Gaussian around the design value
//! and evaluates timing for each sample — showing that the margined
//! design buys its energy premium in the form of near-unit yield, while
//! the unmargined optimum fails a measurable fraction of die.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use minpower_models::Design;

use crate::problem::Problem;

/// Result of a timing-yield Monte Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldResult {
    /// Fraction of samples meeting the cycle time, in `[0, 1]`.
    pub timing_yield: f64,
    /// Mean critical delay over the samples, seconds.
    pub mean_delay: f64,
    /// Worst sampled critical delay, seconds.
    pub worst_delay: f64,
    /// Mean total energy over the samples (leaky devices leak more),
    /// joules.
    pub mean_energy: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Samples per-gate thresholds as `N(vt_i, (sigma_rel·vt_i)²)`, clamped
/// to stay positive, and evaluates `design`'s timing and energy for each
/// sample.
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `samples` is zero or `sigma_rel` is negative.
///
/// # Example
///
/// ```
/// use minpower_core::{yield_mc, Optimizer, Problem};
/// use minpower_device::Technology;
/// use minpower_models::CircuitModel;
/// # use minpower_netlist::{GateKind, NetlistBuilder};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut b = NetlistBuilder::new("t");
/// # b.input("a")?;
/// # b.gate("x", GateKind::Nand, &["a", "a"])?;
/// # b.gate("y", GateKind::Nor, &["x", "a"])?;
/// # b.output("y")?;
/// # let n = b.finish()?;
/// let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
/// let problem = Problem::new(model, 200.0e6);
/// let r = Optimizer::new(&problem).run()?;
/// let y = yield_mc::timing_yield(&problem, &r.design, 0.05, 200, 7);
/// assert!(y.timing_yield >= 0.0 && y.timing_yield <= 1.0);
/// # Ok(())
/// # }
/// ```
pub fn timing_yield(
    problem: &Problem,
    design: &Design,
    sigma_rel: f64,
    samples: usize,
    seed: u64,
) -> YieldResult {
    assert!(samples > 0, "need at least one sample");
    assert!(sigma_rel >= 0.0, "sigma must be non-negative");
    let model = problem.model();
    let tc = problem.effective_cycle_time();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pass = 0usize;
    let mut sum_delay = 0.0;
    let mut worst: f64 = 0.0;
    let mut sum_energy = 0.0;
    let mut sample = design.clone();
    for _ in 0..samples {
        for (i, &vt) in design.vt.iter().enumerate() {
            // Box-Muller normal from two uniforms.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            sample.vt[i] = (vt * (1.0 + sigma_rel * z)).max(0.01);
        }
        let eval = model.evaluate(&sample, problem.fc());
        if eval.critical_delay <= tc {
            pass += 1;
        }
        sum_delay += eval.critical_delay;
        worst = worst.max(eval.critical_delay);
        sum_energy += eval.energy.total();
    }
    YieldResult {
        timing_yield: pass as f64 / samples as f64,
        mean_delay: sum_delay / samples as f64,
        worst_delay: worst,
        mean_energy: sum_energy / samples as f64,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Optimizer;
    use crate::variation;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

    fn netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Nand, &["a", "c"]).unwrap();
        b.gate("v", GateKind::Nor, &["u", "c"]).unwrap();
        b.gate("w", GateKind::Nand, &["u", "v"]).unwrap();
        b.gate("y", GateKind::Not, &["w"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    fn problem() -> Problem {
        let model =
            CircuitModel::with_uniform_activity(&netlist(), Technology::dac97(), 0.5, 0.3);
        Problem::new(model, 200.0e6)
    }

    #[test]
    fn zero_sigma_yields_unity_for_feasible_designs() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let y = timing_yield(&p, &r.design, 0.0, 50, 1);
        assert_eq!(y.timing_yield, 1.0);
        assert!((y.worst_delay - r.critical_delay).abs() < 1e-15);
    }

    #[test]
    fn yield_degrades_with_sigma() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let tight = timing_yield(&p, &r.design, 0.02, 300, 2);
        let loose = timing_yield(&p, &r.design, 0.25, 300, 2);
        assert!(tight.timing_yield >= loose.timing_yield);
        assert!(loose.worst_delay > tight.worst_delay);
    }

    #[test]
    fn margined_design_has_higher_yield_than_unmargined() {
        let p = problem();
        let sigma = 0.10;
        let plain = Optimizer::new(&p).run().unwrap();
        let margined = variation::optimize_with_tolerance(&p, 3.0 * sigma).unwrap();
        let y_plain = timing_yield(&p, &plain.design, sigma, 400, 3);
        let y_margined = timing_yield(&p, &margined.design, sigma, 400, 3);
        assert!(
            y_margined.timing_yield >= y_plain.timing_yield,
            "margined {} < plain {}",
            y_margined.timing_yield,
            y_plain.timing_yield
        );
        // The 3-sigma margined design should be essentially yield-clean.
        assert!(y_margined.timing_yield > 0.95, "{}", y_margined.timing_yield);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let a = timing_yield(&p, &r.design, 0.1, 100, 9);
        let b = timing_yield(&p, &r.design, 0.1, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let p = problem();
        let r = Optimizer::new(&p).run().unwrap();
        let _ = timing_yield(&p, &r.design, 0.1, 0, 1);
    }
}
