//! Transactional incremental evaluation for the width-sizing inner loops.
//!
//! [`IncrementalEval`] bundles the three delta layers built for the
//! sizing hot path:
//!
//! * [`CircuitModel::update_delays_after_width_change_with`] repairs the
//!   self-consistent per-gate delay vector over the affected cone only
//!   (the changed gate, its drivers whose loads moved, and whatever the
//!   input-slope term reaches downstream), journaling every overwrite;
//! * [`IncrementalSta`] re-propagates arrival times with a levelized
//!   dirty-worklist, falling back to a journaled dense pass when the
//!   dirty set grows past its fallback fraction;
//! * the caller keeps an [`minpower_models::EnergyLedger`] beside this
//!   struct for the delta-maintained energy terms.
//!
//! Every layer stops propagation on *bitwise* change only, so the state
//! after any sequence of probes is exactly — bit for bit — what a dense
//! recompute would produce. That is the contract the `--no-incremental`
//! escape hatch and the determinism suite check.
//!
//! The API is a single-slot transaction: [`try_width`] opens a probe
//! (applies the width, repairs delays, commits the STA), then exactly one
//! of [`accept`] or [`revert`] closes it. A revert replays the delay
//! journal in reverse and undoes the STA commit, restoring the pre-probe
//! state bit-exactly without recomputation.
//!
//! [`try_width`]: IncrementalEval::try_width
//! [`accept`]: IncrementalEval::accept
//! [`revert`]: IncrementalEval::revert

use std::sync::Arc;

use minpower_engine::EngineStats;
use minpower_models::{CircuitModel, Design};
use minpower_netlist::{GateId, Netlist};
use minpower_timing::{Commit, IncrementalSta};

/// Computes arrival times for `delays` into a reused buffer: the shared
/// forward pass of the full (non-incremental) sizing paths.
pub(crate) fn arrivals_into(netlist: &Netlist, delays: &[f64], arrival: &mut Vec<f64>) {
    arrival.clear();
    arrival.resize(delays.len(), 0.0);
    for &id in netlist.topological_order() {
        let i = id.index();
        let latest = netlist
            .gate(id)
            .fanin()
            .iter()
            .map(|f| arrival[f.index()])
            .fold(0.0, f64::max);
        arrival[i] = latest + delays[i];
    }
}

/// A design + self-consistent delays + persistent STA, advanced one width
/// probe at a time.
pub(crate) struct IncrementalEval<'a> {
    model: &'a CircuitModel,
    stats: Arc<EngineStats>,
    design: Design,
    delays: Vec<f64>,
    sta: IncrementalSta,
    /// `(gate, previous_delay)` overwrites of the open probe, in apply
    /// order; replayed in reverse on revert.
    journal: Vec<(u32, f64)>,
    /// `(gate, previous_width)` of the open probe, if any.
    open: Option<(usize, f64)>,
}

impl<'a> IncrementalEval<'a> {
    /// Starts from `design` and its already-self-consistent `delays`
    /// (i.e. bitwise what [`CircuitModel::delays`] returns for `design`).
    pub fn new(
        model: &'a CircuitModel,
        design: Design,
        delays: Vec<f64>,
        cycle_time: f64,
        stats: Arc<EngineStats>,
    ) -> Self {
        let sta = IncrementalSta::forward_only(model.netlist(), &delays, cycle_time);
        IncrementalEval {
            model,
            stats,
            design,
            delays,
            sta,
            journal: Vec::new(),
            open: None,
        }
    }

    /// Opens a probe: sets gate `gate`'s width to `w`, repairs the delay
    /// vector over the affected cone, and commits the arrival update.
    /// Counted into the engine telemetry (commit + gates touched +
    /// fallback).
    ///
    /// # Panics
    ///
    /// Panics if a probe is already open.
    pub fn try_width(&mut self, gate: usize, w: f64) -> Commit {
        assert!(self.open.is_none(), "a width probe is already open");
        self.open = Some((gate, self.design.width[gate]));
        self.design.width[gate] = w;
        self.journal.clear();
        let journal = &mut self.journal;
        self.model.update_delays_after_width_change_with(
            &self.design,
            &mut self.delays,
            GateId::new(gate),
            |idx, old| journal.push((idx as u32, old)),
        );
        for &(idx, _) in self.journal.iter() {
            self.sta
                .set_delay(GateId::new(idx as usize), self.delays[idx as usize]);
        }
        let commit = self.sta.commit();
        self.stats
            .count_incremental(u64::from(commit.gates_touched));
        if commit.fallback {
            self.stats.count_fallback();
        }
        commit
    }

    /// Keeps the open probe's state.
    ///
    /// # Panics
    ///
    /// Panics if no probe is open.
    pub fn accept(&mut self) {
        self.open.take().expect("no open probe to accept");
    }

    /// Discards the open probe: restores the width, replays the delay
    /// journal in reverse, and undoes the STA commit — bit-exact.
    ///
    /// # Panics
    ///
    /// Panics if no probe is open.
    pub fn revert(&mut self) {
        let (gate, w_old) = self.open.take().expect("no open probe to revert");
        self.design.width[gate] = w_old;
        for &(idx, old) in self.journal.iter().rev() {
            self.delays[idx as usize] = old;
        }
        self.sta.undo();
    }

    /// The current design (post-accept state, or the probe's trial state
    /// while one is open).
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Current per-gate arrival times.
    pub fn arrivals(&self) -> &[f64] {
        self.sta.arrivals()
    }

    /// Splits into the pieces the move-selection walks need: a mutable
    /// design for in-place width probes plus the delay and arrival views.
    pub fn split(&mut self) -> (&mut Design, &[f64], &[f64]) {
        (&mut self.design, &self.delays, self.sta.arrivals())
    }

    /// Consumes the evaluator, returning the final design.
    ///
    /// # Panics
    ///
    /// Panics if a probe is still open.
    pub fn into_design(self) -> Design {
        assert!(self.open.is_none(), "a width probe is still open");
        self.design
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalContext;
    use minpower_device::Technology;
    use minpower_netlist::{GateKind, NetlistBuilder};

    fn setup() -> (CircuitModel, Design) {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("x", GateKind::Nand, &["a", "b"]).unwrap();
        b.gate("y", GateKind::Nor, &["x", "b"]).unwrap();
        b.gate("z", GateKind::Nand, &["x", "y"]).unwrap();
        b.output("z").unwrap();
        let n = b.finish().unwrap();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        let design = Design::uniform(&n, 2.5, 0.5, 2.0);
        (model, design)
    }

    #[test]
    fn accepted_probes_match_dense_recompute_bitwise() {
        let (model, design) = setup();
        let ctx = EvalContext::new(1, 0);
        let delays = model.delays(&design);
        let mut eval = IncrementalEval::new(&model, design, delays, 1e-9, ctx.stats().clone());
        for (step, gate) in [(1.4f64, 2usize), (2.2, 3), (1.1, 4), (3.0, 2)] {
            let w = eval.design().width[gate] * step;
            eval.try_width(gate, w);
            eval.accept();
            let dense_delays = model.delays(eval.design());
            let mut dense_arrival = Vec::new();
            arrivals_into(model.netlist(), &dense_delays, &mut dense_arrival);
            for (i, (a, b)) in eval.arrivals().iter().zip(&dense_arrival).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "arrival[{i}]");
            }
        }
        let snap = ctx.snapshot();
        assert_eq!(snap.incremental_commits, 4);
    }

    #[test]
    fn reverted_probes_restore_state_bit_exactly() {
        let (model, design) = setup();
        let ctx = EvalContext::new(1, 0);
        let delays = model.delays(&design);
        let before_widths = design.width.clone();
        let before_delays = delays.clone();
        let mut eval = IncrementalEval::new(&model, design, delays, 1e-9, ctx.stats().clone());
        let before_arrival = eval.arrivals().to_vec();
        eval.try_width(3, 9.0);
        eval.revert();
        assert_eq!(eval.design().width, before_widths);
        for (a, b) in eval.delays.iter().zip(&before_delays) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in eval.arrivals().iter().zip(&before_arrival) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "already open")]
    fn double_open_probe_panics() {
        let (model, design) = setup();
        let delays = model.delays(&design);
        let mut eval = IncrementalEval::new(
            &model,
            design,
            delays,
            1e-9,
            EvalContext::new(1, 0).stats().clone(),
        );
        eval.try_width(2, 3.0);
        eval.try_width(3, 3.0);
    }
}
