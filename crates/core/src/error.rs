//! Optimizer error type.

use std::error::Error;
use std::fmt;

/// Error produced by the optimization entry points.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimizeError {
    /// No operating point in the technology's search ranges meets the
    /// cycle-time constraint.
    Infeasible {
        /// The requested cycle time, seconds.
        cycle_time: f64,
        /// The best critical-path delay achieved, seconds.
        best_delay: f64,
    },
    /// The network contains no logic gates to optimize.
    EmptyNetwork,
    /// An option value is out of its legal range.
    BadOption {
        /// Name of the offending option.
        option: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
    /// The run was stopped by its [`crate::runctl::RunControl`]
    /// (cancellation or deadline) before converging. The partial result,
    /// when present, is a fully valid, delay-feasible design — just not
    /// necessarily the optimum the uninterrupted run would have reached.
    Interrupted {
        /// Why the run stopped.
        reason: crate::runctl::TripReason,
        /// Best feasible design found before the trip, if any.
        best_so_far: Option<Box<crate::result::OptimizationResult>>,
        /// How far the run had progressed.
        progress: crate::runctl::Progress,
    },
    /// A worker closure panicked during a parallel evaluation; the panic
    /// was contained (sibling results were drained, the process
    /// survives) and surfaced as this typed error.
    WorkerPanicked {
        /// The smallest work-item index whose closure panicked.
        index: usize,
        /// The panic payload rendered as text.
        message: String,
    },
    /// A checkpoint could not be written, read, or applied (I/O failure,
    /// malformed document, or a snapshot from a different problem or
    /// option set).
    Checkpoint {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::Infeasible {
                cycle_time,
                best_delay,
            } => write!(
                f,
                "no feasible design: cycle time {cycle_time:.3e} s, best delay {best_delay:.3e} s"
            ),
            OptimizeError::EmptyNetwork => write!(f, "network has no logic gates"),
            OptimizeError::BadOption { option, message } => {
                write!(f, "invalid option `{option}`: {message}")
            }
            OptimizeError::Interrupted {
                reason,
                best_so_far,
                progress,
            } => write!(
                f,
                "run interrupted ({reason}) after {} evaluations in {:.1} s; {}",
                progress.evaluations,
                progress.elapsed_secs,
                if best_so_far.is_some() {
                    "a feasible best-so-far design is available"
                } else {
                    "no feasible design had been found yet"
                }
            ),
            OptimizeError::WorkerPanicked { index, message } => {
                write!(f, "worker panicked at index {index}: {message}")
            }
            OptimizeError::Checkpoint { message } => write!(f, "checkpoint error: {message}"),
        }
    }
}

impl Error for OptimizeError {}

impl From<crate::json::JsonError> for OptimizeError {
    /// JSON malformations surface as [`OptimizeError::Checkpoint`]: the
    /// only JSON this crate *parses* on its own behalf is a checkpoint
    /// document (callers decoding other schemas through [`crate::json`]
    /// keep the raw [`crate::json::JsonError`]).
    fn from(e: crate::json::JsonError) -> Self {
        OptimizeError::Checkpoint { message: e.message }
    }
}

impl From<crate::store::StoreError> for OptimizeError {
    /// Durable-store failures surface as [`OptimizeError::Checkpoint`]:
    /// a checkpoint or job record that could not be written durably or
    /// failed integrity verification on read.
    fn from(e: crate::store::StoreError) -> Self {
        OptimizeError::Checkpoint {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            OptimizeError::Infeasible {
                cycle_time: 1e-9,
                best_delay: 2e-9,
            },
            OptimizeError::EmptyNetwork,
            OptimizeError::BadOption {
                option: "steps",
                message: "must be positive".into(),
            },
            OptimizeError::Interrupted {
                reason: crate::runctl::TripReason::DeadlineExceeded,
                best_so_far: None,
                progress: crate::runctl::Progress {
                    evaluations: 12,
                    elapsed_secs: 0.5,
                },
            },
            OptimizeError::WorkerPanicked {
                index: 3,
                message: "boom".into(),
            },
            OptimizeError::Checkpoint {
                message: "bad file".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptimizeError>();
    }
}
