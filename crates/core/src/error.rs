//! Optimizer error type.

use std::error::Error;
use std::fmt;

/// Error produced by the optimization entry points.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimizeError {
    /// No operating point in the technology's search ranges meets the
    /// cycle-time constraint.
    Infeasible {
        /// The requested cycle time, seconds.
        cycle_time: f64,
        /// The best critical-path delay achieved, seconds.
        best_delay: f64,
    },
    /// The network contains no logic gates to optimize.
    EmptyNetwork,
    /// An option value is out of its legal range.
    BadOption {
        /// Name of the offending option.
        option: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::Infeasible {
                cycle_time,
                best_delay,
            } => write!(
                f,
                "no feasible design: cycle time {cycle_time:.3e} s, best delay {best_delay:.3e} s"
            ),
            OptimizeError::EmptyNetwork => write!(f, "network has no logic gates"),
            OptimizeError::BadOption { option, message } => {
                write!(f, "invalid option `{option}`: {message}")
            }
        }
    }
}

impl Error for OptimizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            OptimizeError::Infeasible {
                cycle_time: 1e-9,
                best_delay: 2e-9,
            },
            OptimizeError::EmptyNetwork,
            OptimizeError::BadOption {
                option: "steps",
                message: "must be positive".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptimizeError>();
    }
}
