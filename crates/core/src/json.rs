//! Minimal JSON, shared by every machine-readable surface of the
//! workspace: checkpoint documents ([`crate::checkpoint`]), the CLI's
//! `--format json` report, and the `minpower-serve` request/response
//! bodies. Kept in-tree because the build must resolve offline (no
//! serde); the subset implemented is exactly what those schemas need.
//!
//! Two number encodings coexist:
//!
//! * **plain numbers** ([`Value::Int`], [`Value::Float`]) — what a human
//!   or an HTTP client reads and writes. Finite floats render through
//!   Rust's shortest-round-trip formatting, so writing and re-parsing a
//!   finite `f64` is bitwise lossless; non-finite floats render as
//!   `null` (JSON has no spelling for them).
//! * **bit-exact floats** ([`bits_f64`] / [`Value::as_bits_f64`]) — the
//!   hex IEEE-754 bit pattern as a string (`"0x3fe0000000000000"` for
//!   0.5). Checkpoints use this so NaNs, infinities, and signed zeros
//!   round-trip *bitwise* under the resume-bit-identical contract.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A JSON parse or shape error: what was expected, where, what was seen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the malformation.
    pub message: String,
}

impl JsonError {
    /// Builds an error from any displayable message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for JsonError {}

fn bad(message: impl Into<String>) -> JsonError {
    JsonError::new(message)
}

/// A JSON document value.
///
/// Object fields keep their insertion order (checkpoint documents are
/// diffable; response bodies render deterministically).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` — also what non-finite floats serialize to.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (the checkpoint schema's counters
    /// and the service's ids fit in `u64`).
    Int(u64),
    /// Any other number literal: negative, fractional, or exponent form.
    /// Finite values write shortest-round-trip; non-finite write `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, Value)>),
}

/// Borrowed view of an object's fields for schema-shaped decoding.
pub struct Obj<'a> {
    fields: HashMap<&'a str, &'a Value>,
}

impl<'a> Obj<'a> {
    /// The field `name`, or an error naming the missing field.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the field is absent.
    pub fn req(&self, name: &str) -> Result<&'a Value, JsonError> {
        self.fields
            .get(name)
            .copied()
            .ok_or_else(|| bad(format!("missing field {name:?}")))
    }

    /// The field `name` if present (explicit `null` counts as absent, so
    /// optional request fields can be passed either way).
    pub fn opt(&self, name: &str) -> Option<&'a Value> {
        self.fields
            .get(name)
            .copied()
            .filter(|v| !matches!(v, Value::Null))
    }
}

/// `f64` → bit-exact hex string value (`"0x..."`), the checkpoint
/// encoding. Round-trips NaN payloads, infinities, and signed zeros.
pub fn bits_f64(x: f64) -> Value {
    Value::Str(format!("0x{:016x}", x.to_bits()))
}

/// An array of bit-exact hex float values.
pub fn bits_f64_array(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| bits_f64(x)).collect())
}

/// An array of plain (shortest-round-trip) float values.
pub fn f64_array(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::Float(x)).collect())
}

/// Escapes and writes a string literal, quotes included.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Serializes into `out` (compact, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                    // `5.0f64` displays as "5"; that re-parses as Int, so
                    // numeric consumers must accept both (as_number does).
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The compact serialization as a fresh string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Views this value as an object. `what` names the value in errors.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not an object.
    pub fn as_obj(&self, what: &str) -> Result<Obj<'_>, JsonError> {
        match self {
            Value::Obj(fields) => Ok(Obj {
                fields: fields.iter().map(|(k, v)| (k.as_str(), v)).collect(),
            }),
            _ => Err(bad(format!("{what}: expected an object"))),
        }
    }

    /// Views this value as an array.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not an array.
    pub fn as_arr(&self, what: &str) -> Result<&[Value], JsonError> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err(bad(format!("{what}: expected an array"))),
        }
    }

    /// Views this value as a string.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not a string.
    pub fn as_str(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(bad(format!("{what}: expected a string"))),
        }
    }

    /// Views this value as a boolean.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not a boolean.
    pub fn as_bool(&self, what: &str) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(bad(format!("{what}: expected a boolean"))),
        }
    }

    /// Views this value as a non-negative integer.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not a non-negative integer
    /// literal (floats are rejected — ids and counters must be exact).
    pub fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
        match self {
            Value::Int(n) => Ok(*n),
            _ => Err(bad(format!("{what}: expected a non-negative integer"))),
        }
    }

    /// Views this value as a number, accepting either literal form
    /// (integer or float) — the accessor for option values like
    /// frequencies and tolerances.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not numeric.
    pub fn as_number(&self, what: &str) -> Result<f64, JsonError> {
        match self {
            Value::Int(n) => Ok(*n as f64),
            Value::Float(x) => Ok(*x),
            _ => Err(bad(format!("{what}: expected a number"))),
        }
    }

    /// Decodes a bit-exact hex float (`"0x..."` string), the checkpoint
    /// encoding written by [`bits_f64`].
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not a `0x`-prefixed hex string.
    pub fn as_bits_f64(&self, what: &str) -> Result<f64, JsonError> {
        let s = self.as_str(what)?;
        let hex = s
            .strip_prefix("0x")
            .ok_or_else(|| bad(format!("{what}: expected a 0x-prefixed hex float")))?;
        let bits = u64::from_str_radix(hex, 16)
            .map_err(|e| bad(format!("{what}: bad hex float {s:?}: {e}")))?;
        Ok(f64::from_bits(bits))
    }

    /// Decodes an array of bit-exact hex floats.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not such an array.
    pub fn as_bits_f64_vec(&self, what: &str) -> Result<Vec<f64>, JsonError> {
        self.as_arr(what)?
            .iter()
            .map(|v| v.as_bits_f64(what))
            .collect()
    }

    /// Decodes an array of plain numbers.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not an array of numbers.
    pub fn as_number_vec(&self, what: &str) -> Result<Vec<f64>, JsonError> {
        self.as_arr(what)?
            .iter()
            .map(|v| v.as_number(what))
            .collect()
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, any
/// other trailing bytes rejected).
///
/// # Errors
///
/// [`JsonError`] describing the first malformation encountered.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(bad(format!("trailing garbage at byte {pos}")));
    }
    Ok(value)
}

/// Nesting cap: service request bodies are attacker-supplied, and a
/// recursive-descent parser must not let `[[[[...` exhaust the stack.
const MAX_DEPTH: usize = 96;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(bad(format!("expected {:?} at byte {}", c as char, *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    if depth > MAX_DEPTH {
        return Err(bad("document nests too deeply"));
    }
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(bad("unexpected end of document"));
    };
    match b {
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos, depth + 1)? {
                    Value::Str(s) => s,
                    _ => return Err(bad(format!("object key at byte {} must be a string", *pos))),
                };
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(bad(format!("expected ',' or '}}' at byte {}", *pos))),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(bad(format!("expected ',' or ']' at byte {}", *pos))),
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut s = String::new();
            loop {
                let Some(&c) = bytes.get(*pos) else {
                    return Err(bad("unterminated string"));
                };
                *pos += 1;
                match c {
                    b'"' => return Ok(Value::Str(s)),
                    b'\\' => {
                        let Some(&e) = bytes.get(*pos) else {
                            return Err(bad("unterminated escape"));
                        };
                        *pos += 1;
                        match e {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'n' => s.push('\n'),
                            b't' => s.push('\t'),
                            b'r' => s.push('\r'),
                            b'u' => {
                                let hex = bytes
                                    .get(*pos..*pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| bad("truncated \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| bad(format!("bad \\u escape {hex:?}")))?;
                                *pos += 4;
                                s.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| bad("invalid \\u code point"))?,
                                );
                            }
                            other => {
                                return Err(bad(format!("unknown escape \\{}", other as char)))
                            }
                        }
                    }
                    c => {
                        // Multi-byte UTF-8: copy the full sequence.
                        if c < 0x80 {
                            s.push(c as char);
                        } else {
                            let start = *pos - 1;
                            let len = match c {
                                0xC0..=0xDF => 2,
                                0xE0..=0xEF => 3,
                                _ => 4,
                            };
                            let chunk = bytes
                                .get(start..start + len)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .ok_or_else(|| bad("invalid UTF-8 in string"))?;
                            s.push_str(chunk);
                            *pos = start + len;
                        }
                    }
                }
            }
        }
        b't' => {
            if bytes[*pos..].starts_with(b"true") {
                *pos += 4;
                Ok(Value::Bool(true))
            } else {
                Err(bad(format!("bad literal at byte {}", *pos)))
            }
        }
        b'f' => {
            if bytes[*pos..].starts_with(b"false") {
                *pos += 5;
                Ok(Value::Bool(false))
            } else {
                Err(bad(format!("bad literal at byte {}", *pos)))
            }
        }
        b'n' => {
            if bytes[*pos..].starts_with(b"null") {
                *pos += 4;
                Ok(Value::Null)
            } else {
                Err(bad(format!("bad literal at byte {}", *pos)))
            }
        }
        b'0'..=b'9' | b'-' => {
            let start = *pos;
            let mut is_float = bytes[*pos] == b'-';
            *pos += 1;
            while let Some(&c) = bytes.get(*pos) {
                match c {
                    b'0'..=b'9' => {}
                    b'.' | b'e' | b'E' | b'+' | b'-' => is_float = true,
                    _ => break,
                }
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number chars");
            if !is_float {
                if let Ok(n) = text.parse::<u64>() {
                    return Ok(Value::Int(n));
                }
                // Wider than u64: fall through to the float reading.
            }
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| bad(format!("bad number {text:?}: {e}")))
        }
        other => Err(bad(format!(
            "unexpected character {:?} at byte {}",
            other as char, *pos
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_and_array_round_trip() {
        let v = Value::Obj(vec![
            ("a".to_string(), Value::Int(3)),
            (
                "b".to_string(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::Str("x\"y\n".to_string())),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn plain_floats_round_trip_bitwise_when_finite() {
        for x in [
            0.5,
            -3.25,
            1.0e-15,
            3.0e8,
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            -0.0,
        ] {
            let text = Value::Float(x).render();
            let back = match parse(&text).unwrap() {
                Value::Float(y) => y,
                Value::Int(n) => n as f64,
                other => panic!("expected a number, got {other:?}"),
            };
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn integral_floats_render_as_integer_literals() {
        // `5.0` displays as "5"; as_number accepts either literal form.
        let text = Value::Float(5.0).render();
        assert_eq!(text, "5");
        assert_eq!(parse(&text).unwrap().as_number("x").unwrap(), 5.0);
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Value::Float(x).render(), "null");
        }
    }

    #[test]
    fn bits_encoding_round_trips_every_bit_pattern() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 0.1 + 0.2] {
            let v = bits_f64(x);
            let back = parse(&v.render()).unwrap().as_bits_f64("x").unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn negative_and_exponent_numbers_parse() {
        assert_eq!(parse("-3").unwrap(), Value::Float(-3.0));
        assert_eq!(parse("2.5e-9").unwrap(), Value::Float(2.5e-9));
        assert_eq!(parse("300000000").unwrap(), Value::Int(300_000_000));
        // Wider than u64 degrades to float instead of failing.
        assert!(matches!(
            parse("99999999999999999999999").unwrap(),
            Value::Float(_)
        ));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "tru",
            "01x",
            "\"abc",
            "{\"a\":1} trailing",
            "--3",
            "1.2.3",
        ] {
            assert!(parse(text).is_err(), "accepted: {text:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let text = "[".repeat(10_000);
        assert!(parse(&text).is_err());
    }

    #[test]
    fn obj_accessors_report_missing_and_mistyped_fields() {
        let v = parse("{\"n\":1,\"s\":\"x\",\"z\":null}").unwrap();
        let obj = v.as_obj("doc").unwrap();
        assert_eq!(obj.req("n").unwrap().as_u64("n").unwrap(), 1);
        assert!(obj.req("missing").is_err());
        assert!(obj.req("s").unwrap().as_u64("s").is_err());
        assert!(obj.opt("z").is_none(), "explicit null counts as absent");
        assert!(obj.opt("n").is_some());
    }

    #[test]
    fn number_vec_accessor() {
        let v = parse("[1, 2.5, -3]").unwrap();
        assert_eq!(v.as_number_vec("xs").unwrap(), vec![1.0, 2.5, -3.0]);
        assert!(parse("[1, \"x\"]").unwrap().as_number_vec("xs").is_err());
    }
}
