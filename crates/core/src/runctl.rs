//! Run control: cooperative cancellation and soft deadlines.
//!
//! Every optimizer entry point in this crate accepts a [`RunControl`] and
//! polls it at iteration boundaries (one poll per full-circuit probe,
//! annealing step, sizing move, or Monte-Carlo chunk — never inside the
//! numeric kernels). When the control trips, the engine stops cleanly and
//! returns [`crate::OptimizeError::Interrupted`] carrying the best design
//! found so far (always delay-feasible when present) and a [`Progress`]
//! record, so an interrupted run is a usable partial result rather than a
//! dead process.
//!
//! A control trips for one of two reasons ([`TripReason`]):
//!
//! * **cancellation** — someone called [`RunControl::cancel`], typically
//!   the CLI's Ctrl-C handler flipping the shared token from a signal
//!   context;
//! * **deadline** — the soft time limit of
//!   [`RunControl::with_deadline`] elapsed. "Soft" because it is only
//!   observed at iteration boundaries: the run overshoots by at most one
//!   probe, never by a partial one.
//!
//! Clones share state: cancelling any clone trips them all, which is how
//! one token reaches a signal handler, the optimizer, and a progress
//! reporter at once.
//!
//! A control can also carry a progress observer
//! ([`RunControl::with_progress`]): a callback invoked at poll
//! boundaries with the poll index and elapsed time. `minpower-serve`
//! taps it to feed per-job progress streams without touching the
//! optimizer loops.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripReason {
    /// [`RunControl::cancel`] was called (e.g. Ctrl-C).
    Cancelled,
    /// The soft deadline of [`RunControl::with_deadline`] elapsed.
    DeadlineExceeded,
}

impl std::fmt::Display for TripReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripReason::Cancelled => write!(f, "cancelled"),
            TripReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// How far a run had progressed when it was interrupted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Full-circuit evaluations completed before the trip.
    pub evaluations: usize,
    /// Wall time elapsed since the control was created, seconds.
    pub elapsed_secs: f64,
}

/// Signature of a [`RunControl::with_progress`] observer: called with
/// the poll index and the seconds elapsed since the control's clock
/// started. Observers run on the optimizer's thread inside the poll, so
/// they must be cheap and must not block (store counters, notify a
/// condvar — not I/O).
pub type ProgressFn = dyn Fn(u64, f64) + Send + Sync;

struct Observer {
    /// Invoke on every `every`-th poll (1 = every poll).
    every: u64,
    f: Arc<ProgressFn>,
}

struct Shared {
    cancel: Arc<AtomicBool>,
    started: Instant,
    deadline: Option<Duration>,
    /// Poll budget for deterministic tests: trip after this many
    /// [`RunControl::trip`] calls (`u64::MAX` = unlimited).
    check_budget: AtomicU64,
    /// Monotone poll counter, also the index fed to the `runctl.clock_jump`
    /// fault site.
    checks: AtomicU64,
    observer: Option<Observer>,
}

/// A shareable cancellation token plus an optional soft deadline.
///
/// See the [module documentation](self) for semantics. The default
/// control never trips, so `RunControl::default()` is the "no run
/// control" value every legacy entry point uses.
#[derive(Clone)]
pub struct RunControl {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for RunControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.shared.deadline)
            .finish()
    }
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl::new()
    }
}

impl RunControl {
    /// A control with no deadline that trips only on [`cancel`](Self::cancel).
    pub fn new() -> Self {
        RunControl {
            shared: Arc::new(Shared {
                cancel: Arc::new(AtomicBool::new(false)),
                started: Instant::now(),
                deadline: None,
                check_budget: AtomicU64::new(u64::MAX),
                checks: AtomicU64::new(0),
                observer: None,
            }),
        }
    }

    /// Adds a soft deadline measured from *now* (the elapsed clock
    /// restarts). The run stops at the first iteration boundary after
    /// `limit` elapses.
    #[must_use]
    pub fn with_deadline(self, limit: Duration) -> Self {
        RunControl {
            shared: Arc::new(Shared {
                cancel: self.shared.cancel.clone(),
                started: Instant::now(),
                deadline: Some(limit),
                check_budget: AtomicU64::new(self.shared.check_budget.load(Ordering::Relaxed)),
                checks: AtomicU64::new(0),
                observer: self.shared.observer.as_ref().map(|o| Observer {
                    every: o.every,
                    f: o.f.clone(),
                }),
            }),
        }
    }

    /// Attaches a progress observer invoked on every `every`-th poll
    /// (`every = 1` means every poll; `0` is treated as 1) with the poll
    /// index and the elapsed seconds. This is the liveness hook a
    /// progress stream taps: the optimizer polls at iteration
    /// boundaries, so each invocation proves the run is still moving.
    /// Like [`with_deadline`](Self::with_deadline), this is a build-time
    /// knob: call it before handing the control to a run.
    #[must_use]
    pub fn with_progress(self, every: u64, f: Arc<ProgressFn>) -> Self {
        RunControl {
            shared: Arc::new(Shared {
                cancel: self.shared.cancel.clone(),
                started: self.shared.started,
                deadline: self.shared.deadline,
                check_budget: AtomicU64::new(self.shared.check_budget.load(Ordering::Relaxed)),
                checks: AtomicU64::new(self.shared.checks.load(Ordering::Relaxed)),
                observer: Some(Observer {
                    every: every.max(1),
                    f,
                }),
            }),
        }
    }

    /// Trips after `polls` calls to [`trip`](Self::trip) — a deterministic
    /// interruption point for tests (wall clocks make flaky tests; a poll
    /// budget interrupts at exactly the same iteration every run).
    #[must_use]
    pub fn with_check_budget(self, polls: u64) -> Self {
        self.shared.check_budget.store(polls, Ordering::Relaxed);
        self
    }

    /// Requests cancellation. Safe to call from any thread (and, through
    /// the shared token, from a signal handler); every clone observes it.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
    }

    /// The raw cancellation token, for wiring into a signal handler.
    /// Storing `true` is equivalent to [`cancel`](Self::cancel) — every
    /// clone of this control observes it.
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        self.shared.cancel.clone()
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancel.load(Ordering::Relaxed)
    }

    /// Seconds since this control (or its deadline clock) was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.shared.started.elapsed().as_secs_f64()
    }

    /// Polls the control at an iteration boundary. Returns `Some` once
    /// tripped (and forever after — a tripped control stays tripped);
    /// `None` while the run may continue.
    pub fn trip(&self) -> Option<TripReason> {
        let n = self.shared.checks.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.shared.observer {
            if n.is_multiple_of(obs.every) {
                (obs.f)(n, self.elapsed_secs());
            }
        }
        if self.is_cancelled() {
            return Some(TripReason::Cancelled);
        }
        if n + 1 >= self.shared.check_budget.load(Ordering::Relaxed) {
            // A spent poll budget cancels (so the trip latches for
            // subsequent polls too).
            self.cancel();
            return Some(TripReason::Cancelled);
        }
        if let Some(limit) = self.shared.deadline {
            // Fault site: a "clock jump" makes this poll behave as if the
            // deadline has already passed, exercising the degradation
            // path without waiting out a real limit.
            let jumped = minpower_engine::faults::should_fire("runctl.clock_jump", n);
            if jumped || self.shared.started.elapsed() >= limit {
                return Some(TripReason::DeadlineExceeded);
            }
        }
        None
    }

    /// A [`Progress`] record as of now.
    pub fn progress(&self, evaluations: usize) -> Progress {
        Progress {
            evaluations,
            elapsed_secs: self.elapsed_secs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_control_never_trips() {
        let rc = RunControl::new();
        for _ in 0..1000 {
            assert_eq!(rc.trip(), None);
        }
    }

    #[test]
    fn cancel_trips_all_clones() {
        let rc = RunControl::new();
        let clone = rc.clone();
        assert_eq!(clone.trip(), None);
        rc.cancel();
        assert_eq!(clone.trip(), Some(TripReason::Cancelled));
        assert_eq!(rc.trip(), Some(TripReason::Cancelled));
        assert!(rc.is_cancelled());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let rc = RunControl::new().with_deadline(Duration::from_secs(0));
        assert_eq!(rc.trip(), Some(TripReason::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let rc = RunControl::new().with_deadline(Duration::from_secs(3600));
        assert_eq!(rc.trip(), None);
    }

    #[test]
    fn check_budget_trips_deterministically_and_latches() {
        let rc = RunControl::new().with_check_budget(3);
        assert_eq!(rc.trip(), None);
        assert_eq!(rc.trip(), None);
        assert_eq!(rc.trip(), Some(TripReason::Cancelled));
        assert_eq!(rc.trip(), Some(TripReason::Cancelled));
    }

    #[test]
    fn progress_observer_fires_on_schedule() {
        use std::sync::atomic::AtomicUsize;
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = calls.clone();
        let rc = RunControl::new().with_progress(
            3,
            Arc::new(move |_, elapsed| {
                assert!(elapsed >= 0.0);
                seen.fetch_add(1, Ordering::Relaxed);
            }),
        );
        for _ in 0..9 {
            assert_eq!(rc.trip(), None);
        }
        // Polls 0, 3, 6 fire.
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn observer_survives_deadline_and_shares_cancellation() {
        use std::sync::atomic::AtomicUsize;
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = calls.clone();
        let rc = RunControl::new()
            .with_progress(
                1,
                Arc::new(move |_, _| {
                    seen.fetch_add(1, Ordering::Relaxed);
                }),
            )
            .with_deadline(Duration::from_secs(3600));
        assert_eq!(rc.trip(), None);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        rc.cancel();
        assert_eq!(rc.trip(), Some(TripReason::Cancelled));
        // The observer still sees polls after the trip (liveness during
        // wind-down).
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn progress_reports_evaluations() {
        let rc = RunControl::new();
        let p = rc.progress(42);
        assert_eq!(p.evaluations, 42);
        assert!(p.elapsed_secs >= 0.0);
    }
}
