//! Checkpoint snapshots: save an interrupted run, resume it bit-identically.
//!
//! A [`Checkpoint`] is a versioned, self-describing JSON document written
//! crash-safely through [`crate::store`]: CRC32-framed, staged via a
//! fsynced temp file, atomically renamed, with the previous snapshot kept
//! as a `.1` fallback generation. Two engines checkpoint:
//!
//! * **search** — the Procedure-2 optimizer is deterministic, so its
//!   checkpoint is a *probe journal*: every `(V_dd, V⃗_ts) → sized design`
//!   evaluation completed so far. Resuming preloads the journal into the
//!   evaluation cache and replays the search; probes already journaled hit
//!   the cache (bit-identical by the cache's exact-fingerprint contract)
//!   and the run continues from where it stopped, producing exactly the
//!   result an uninterrupted run would have.
//! * **anneal** — the annealer is sequential and stochastic, so its
//!   checkpoint is the loop state itself: pass/step indices, temperature,
//!   PRNG state, and the current/best designs. Resuming continues the
//!   Metropolis walk from the exact step it stopped at.
//!
//! Every checkpoint carries a `salt` fingerprinting the problem and the
//! options it was taken under; resuming against a different circuit,
//! cycle time, or option set is rejected instead of silently mixing runs.
//!
//! # Format and versioning
//!
//! The document is ordinary JSON (via the shared [`crate::json`]
//! module) with two conventions: the top level
//! always contains `"format": "minpower-checkpoint"` and an integer
//! `"version"` (currently 1), and every `f64` is encoded as the hex bit
//! pattern of its IEEE-754 representation (`"0x3fe0000000000000"` for
//! 0.5) so values round-trip *bitwise* — decimal formatting would lose
//! ULPs and break the bit-identical-resume guarantee. Loaders reject
//! unknown formats and newer versions; adding fields is a compatible
//! change (unknown fields are ignored), removing or reinterpreting one
//! requires a version bump.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use minpower_models::{Design, EnergyBreakdown};

use crate::error::OptimizeError;
use crate::json::{self, Value};
use crate::store::{self, StoreHealth, WriteReport};

/// The format marker every checkpoint document carries.
pub const FORMAT: &str = "minpower-checkpoint";
/// The newest checkpoint schema version this build reads and writes.
pub const VERSION: u64 = 1;

/// One journaled Procedure-2 probe: the operating point and the sized
/// outcome. The width-shaping input (the budget vector) is constant per
/// run and stored once in [`Checkpoint::Search`], not per probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRecord {
    /// Supply voltage of the probe, volts.
    pub vdd: f64,
    /// Per-gate nominal thresholds of the probe, volts.
    pub vts: Vec<f64>,
    /// The sized design the probe produced.
    pub design: Design,
    /// Its energy breakdown.
    pub energy: EnergyBreakdown,
    /// Its critical-path delay, seconds.
    pub critical_delay: f64,
    /// Whether it met the cycle time.
    pub feasible: bool,
}

/// Exact loop state of an annealing run, sufficient to continue the
/// Metropolis walk from the step after the one recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealState {
    /// Cooling pass index.
    pub pass: usize,
    /// Step index within the pass.
    pub step: usize,
    /// Design evaluations spent so far.
    pub evaluations: usize,
    /// Current acceptance temperature.
    pub temperature: f64,
    /// The PRNG's walked internal state.
    pub rng_state: u64,
    /// The walk's current design.
    pub current: Design,
    /// Penalized cost of the current design.
    pub current_cost: f64,
    /// Best design seen so far.
    pub best: Design,
    /// Penalized cost of the best design.
    pub best_cost: f64,
    /// Whether the best design met every delay budget.
    pub best_feasible: bool,
}

/// A resumable snapshot of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub enum Checkpoint {
    /// Probe journal of a (deterministic) Procedure-2 search run.
    Search {
        /// Fingerprint of the problem + options the run was started with.
        salt: u64,
        /// Evaluations spent when the snapshot was taken.
        evaluations: usize,
        /// The per-gate budget vector (constant across the run's probes).
        budgets: Vec<f64>,
        /// Every distinct probe completed so far.
        probes: Vec<ProbeRecord>,
    },
    /// Loop state of a simulated-annealing run.
    Anneal {
        /// Fingerprint of the problem + options the run was started with.
        salt: u64,
        /// The exact walk state.
        state: AnnealState,
    },
}

/// Where and how often an engine writes checkpoints, and what a write
/// failure means for the run.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Destination file (written crash-safely through [`crate::store`]).
    pub path: PathBuf,
    /// Evaluations between periodic writes (a final write also happens on
    /// interruption and on completion).
    pub every: usize,
    /// When `true` (the default, what the CLI wants) a checkpoint write
    /// failure fails the run. When `false` (what the service wants) the
    /// run continues *without* checkpointing — losing resumability, not
    /// the job — and the failure is reported through `health`.
    pub required: bool,
    /// Optional shared degraded-mode latch: write failures latch it,
    /// successful writes clear it.
    pub health: Option<Arc<StoreHealth>>,
}

impl CheckpointSpec {
    /// A spec writing to `path` every 32 evaluations; failures fail the
    /// run.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            path: path.into(),
            every: 32,
            required: true,
            health: None,
        }
    }

    /// Makes checkpoint writes best-effort: a failure degrades the run to
    /// uncheckpointed instead of failing it.
    #[must_use]
    pub fn best_effort(mut self) -> Self {
        self.required = false;
        self
    }

    /// Attaches a shared [`StoreHealth`] latch that tracks write
    /// failures and recoveries.
    #[must_use]
    pub fn with_health(mut self, health: Arc<StoreHealth>) -> Self {
        self.health = Some(health);
        self
    }
}

impl Checkpoint {
    /// The engine tag stored in the document.
    pub fn engine(&self) -> &'static str {
        match self {
            Checkpoint::Search { .. } => "search",
            Checkpoint::Anneal { .. } => "anneal",
        }
    }

    /// The problem/options fingerprint the snapshot was taken under.
    pub fn salt(&self) -> u64 {
        match self {
            Checkpoint::Search { salt, .. } | Checkpoint::Anneal { salt, .. } => *salt,
        }
    }

    /// Writes the checkpoint crash-safely through [`crate::store`]:
    /// CRC32 envelope, fsynced temp file, previous snapshot rotated to
    /// the `.1` generation, atomic rename, parent-directory fsync —
    /// readers see either the old snapshot or the new one, never a torn
    /// write, and a corrupt newest snapshot still leaves the previous
    /// one to resume from.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::Checkpoint`] once the store's retry budget is
    /// exhausted.
    pub fn save(&self, path: &Path) -> Result<(), OptimizeError> {
        self.save_report(path).map(|_| ())
    }

    /// Like [`save`](Checkpoint::save) but reports how many transient
    /// failures the durable write absorbed (for telemetry).
    ///
    /// # Errors
    ///
    /// [`OptimizeError::Checkpoint`] once the store's retry budget is
    /// exhausted.
    pub fn save_report(&self, path: &Path) -> Result<WriteReport, OptimizeError> {
        let body = self.to_json();
        Ok(store::write_durable(path, body.as_bytes())?)
    }

    /// Reads, integrity-checks, and parses a checkpoint, falling back to
    /// the previous (`.1`) generation when the newest snapshot is
    /// missing or fails verification.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::Checkpoint`] on I/O failure, a corrupt envelope,
    /// malformed JSON, an unknown format marker, or a newer schema
    /// version.
    pub fn load(path: &Path) -> Result<Checkpoint, OptimizeError> {
        let loaded = store::read_with_fallback(path)?;
        let body = String::from_utf8(loaded.payload).map_err(|_| OptimizeError::Checkpoint {
            message: format!("{}: checkpoint is not UTF-8", path.display()),
        })?;
        Checkpoint::from_json(&body)
    }

    /// Serializes to the versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut top = vec![
            ("format".to_string(), Value::Str(FORMAT.to_string())),
            ("version".to_string(), Value::Int(VERSION)),
            ("engine".to_string(), Value::Str(self.engine().to_string())),
            ("salt".to_string(), Value::Int(self.salt())),
        ];
        match self {
            Checkpoint::Search {
                evaluations,
                budgets,
                probes,
                ..
            } => {
                top.push(("evaluations".to_string(), Value::Int(*evaluations as u64)));
                top.push(("budgets".to_string(), json::bits_f64_array(budgets)));
                top.push((
                    "probes".to_string(),
                    Value::Arr(probes.iter().map(probe_value).collect()),
                ));
            }
            Checkpoint::Anneal { state, .. } => {
                top.push(("state".to_string(), anneal_value(state)));
            }
        }
        let mut out = String::new();
        Value::Obj(top).write(&mut out);
        out.push('\n');
        out
    }

    /// Parses the versioned JSON document.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::Checkpoint`] describing the first malformation
    /// encountered.
    pub fn from_json(text: &str) -> Result<Checkpoint, OptimizeError> {
        let value = json::parse(text)?;
        let obj = value.as_obj("checkpoint")?;
        let format = obj.req("format")?.as_str("format")?;
        if format != FORMAT {
            return Err(bad(format!("not a checkpoint file (format {format:?})")));
        }
        let version = obj.req("version")?.as_u64("version")?;
        if version > VERSION {
            return Err(bad(format!(
                "checkpoint version {version} is newer than this build understands ({VERSION})"
            )));
        }
        let salt = obj.req("salt")?.as_u64("salt")?;
        match obj.req("engine")?.as_str("engine")? {
            "search" => {
                let evaluations = obj.req("evaluations")?.as_u64("evaluations")? as usize;
                let budgets = obj.req("budgets")?.as_bits_f64_vec("budgets")?;
                let probes = obj
                    .req("probes")?
                    .as_arr("probes")?
                    .iter()
                    .map(parse_probe)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Checkpoint::Search {
                    salt,
                    evaluations,
                    budgets,
                    probes,
                })
            }
            "anneal" => {
                let state = parse_anneal(obj.req("state")?)?;
                Ok(Checkpoint::Anneal { salt, state })
            }
            other => Err(bad(format!("unknown checkpoint engine {other:?}"))),
        }
    }
}

fn bad(message: impl Into<String>) -> OptimizeError {
    OptimizeError::Checkpoint {
        message: message.into(),
    }
}

fn design_value(d: &Design) -> Value {
    Value::Obj(vec![
        ("vdd".to_string(), json::bits_f64(d.vdd)),
        ("vt".to_string(), json::bits_f64_array(&d.vt)),
        ("width".to_string(), json::bits_f64_array(&d.width)),
    ])
}

fn parse_design(v: &Value) -> Result<Design, OptimizeError> {
    let obj = v.as_obj("design")?;
    Ok(Design {
        vdd: obj.req("vdd")?.as_bits_f64("design.vdd")?,
        vt: obj.req("vt")?.as_bits_f64_vec("design.vt")?,
        width: obj.req("width")?.as_bits_f64_vec("design.width")?,
    })
}

fn probe_value(p: &ProbeRecord) -> Value {
    Value::Obj(vec![
        ("vdd".to_string(), json::bits_f64(p.vdd)),
        ("vts".to_string(), json::bits_f64_array(&p.vts)),
        ("design".to_string(), design_value(&p.design)),
        ("static".to_string(), json::bits_f64(p.energy.static_)),
        ("dynamic".to_string(), json::bits_f64(p.energy.dynamic)),
        (
            "critical_delay".to_string(),
            json::bits_f64(p.critical_delay),
        ),
        ("feasible".to_string(), Value::Bool(p.feasible)),
    ])
}

fn parse_probe(v: &Value) -> Result<ProbeRecord, OptimizeError> {
    let obj = v.as_obj("probe")?;
    Ok(ProbeRecord {
        vdd: obj.req("vdd")?.as_bits_f64("probe.vdd")?,
        vts: obj.req("vts")?.as_bits_f64_vec("probe.vts")?,
        design: parse_design(obj.req("design")?)?,
        energy: EnergyBreakdown::new(
            obj.req("static")?.as_bits_f64("probe.static")?,
            obj.req("dynamic")?.as_bits_f64("probe.dynamic")?,
        ),
        critical_delay: obj
            .req("critical_delay")?
            .as_bits_f64("probe.critical_delay")?,
        feasible: obj.req("feasible")?.as_bool("probe.feasible")?,
    })
}

fn anneal_value(s: &AnnealState) -> Value {
    Value::Obj(vec![
        ("pass".to_string(), Value::Int(s.pass as u64)),
        ("step".to_string(), Value::Int(s.step as u64)),
        ("evaluations".to_string(), Value::Int(s.evaluations as u64)),
        ("temperature".to_string(), json::bits_f64(s.temperature)),
        ("rng_state".to_string(), Value::Int(s.rng_state)),
        ("current".to_string(), design_value(&s.current)),
        ("current_cost".to_string(), json::bits_f64(s.current_cost)),
        ("best".to_string(), design_value(&s.best)),
        ("best_cost".to_string(), json::bits_f64(s.best_cost)),
        ("best_feasible".to_string(), Value::Bool(s.best_feasible)),
    ])
}

fn parse_anneal(v: &Value) -> Result<AnnealState, OptimizeError> {
    let obj = v.as_obj("state")?;
    Ok(AnnealState {
        pass: obj.req("pass")?.as_u64("state.pass")? as usize,
        step: obj.req("step")?.as_u64("state.step")? as usize,
        evaluations: obj.req("evaluations")?.as_u64("state.evaluations")? as usize,
        temperature: obj.req("temperature")?.as_bits_f64("state.temperature")?,
        rng_state: obj.req("rng_state")?.as_u64("state.rng_state")?,
        current: parse_design(obj.req("current")?)?,
        current_cost: obj.req("current_cost")?.as_bits_f64("state.current_cost")?,
        best: parse_design(obj.req("best")?)?,
        best_cost: obj.req("best_cost")?.as_bits_f64("state.best_cost")?,
        best_feasible: obj.req("best_feasible")?.as_bool("state.best_feasible")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(tag: f64) -> Design {
        Design {
            vdd: tag,
            vt: vec![0.3, tag],
            width: vec![1.0, 2.5],
        }
    }

    fn search_checkpoint() -> Checkpoint {
        Checkpoint::Search {
            salt: 0xDEAD_BEEF,
            evaluations: 17,
            budgets: vec![0.0, 1.25e-9],
            probes: vec![ProbeRecord {
                vdd: 1.5,
                // Awkward bit patterns that decimal formatting would lose.
                vts: vec![0.1 + 0.2, f64::MIN_POSITIVE],
                design: design(1.5),
                energy: EnergyBreakdown::new(1.0e-15, 3.7e-12),
                critical_delay: 4.999999999999999e-9,
                feasible: true,
            }],
        }
    }

    fn anneal_checkpoint() -> Checkpoint {
        Checkpoint::Anneal {
            salt: 42,
            state: AnnealState {
                pass: 1,
                step: 350,
                evaluations: 1023,
                temperature: 1.7e-13,
                rng_state: 0x1234_5678_9ABC_DEF0,
                current: design(2.0),
                current_cost: 5.0e-12,
                best: design(1.8),
                best_cost: 4.0e-12,
                best_feasible: true,
            },
        }
    }

    #[test]
    fn search_round_trips_bitwise() {
        let cp = search_checkpoint();
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn anneal_round_trips_bitwise() {
        let cp = anneal_checkpoint();
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn nan_and_infinity_round_trip() {
        let cp = Checkpoint::Search {
            salt: 1,
            evaluations: 0,
            budgets: vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0],
            probes: vec![],
        };
        let Checkpoint::Search { budgets, .. } = Checkpoint::from_json(&cp.to_json()).unwrap()
        else {
            panic!("engine changed");
        };
        assert!(budgets[0].is_nan());
        assert_eq!(budgets[1], f64::INFINITY);
        assert_eq!(budgets[2], f64::NEG_INFINITY);
        assert_eq!(budgets[3].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("minpower-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp-roundtrip.json");
        let cp = search_checkpoint();
        cp.save(&path).unwrap();
        // The temp file must not linger after the rename.
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        // Overwrite with a different snapshot: atomic replace, previous
        // snapshot kept as the fallback generation.
        let cp2 = anneal_checkpoint();
        cp2.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp2);
        assert_eq!(
            Checkpoint::load(&crate::store::previous_generation(&path)).unwrap(),
            cp
        );
        // A corrupt newest snapshot falls back to the previous one.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        crate::store::remove_generations(&path);
    }

    #[test]
    fn malformed_documents_are_rejected_not_panicked() {
        for text in [
            "",
            "{",
            "nonsense",
            "{\"format\":\"minpower-checkpoint\"}",
            "{\"format\":\"other-tool\",\"version\":1}",
            "{\"format\":\"minpower-checkpoint\",\"version\":1,\"engine\":\"mystery\",\"salt\":0}",
            "{\"format\":\"minpower-checkpoint\",\"version\":1,\"engine\":\"search\",\"salt\":\"zero\"}",
            "{\"format\":\"minpower-checkpoint\",\"version\":1} trailing",
        ] {
            assert!(
                matches!(
                    Checkpoint::from_json(text),
                    Err(OptimizeError::Checkpoint { .. })
                ),
                "accepted: {text:?}"
            );
        }
    }

    #[test]
    fn newer_versions_are_rejected() {
        let text = search_checkpoint()
            .to_json()
            .replace("\"version\":1", &format!("\"version\":{}", VERSION + 1));
        let err = Checkpoint::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn unknown_fields_are_ignored_for_forward_compat() {
        let text = search_checkpoint()
            .to_json()
            .replace("\"salt\"", "\"future_extension\":\"yes\",\"salt\"");
        assert!(Checkpoint::from_json(&text).is_ok());
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/minpower.cp")).unwrap_err();
        assert!(matches!(err, OptimizeError::Checkpoint { .. }));
    }
}
