//! Procedure 1: assignment of maximum delay budgets to gates.
//!
//! The heuristic's key observation (§4): the larger the delay a gate is
//! allowed, the less energy it needs — so *every* path, not just the
//! critical one, should be stretched to the available cycle time. Paths
//! are visited in decreasing criticality (`N_cj = Σ fanouts`); along each
//! path the still-unallocated share of `b·T_c` is split among unassigned
//! gates **in proportion to their fanout** (Eqs. 2–3), because a gate
//! driving more loads needs more of the cycle to switch at a given energy.
//!
//! Two post-processing adjustments follow the paper's remarks at the end
//! of §4.2:
//!
//! 1. a slope floor: a gate's budget is raised to a fixed fraction of its
//!    slowest driver's budget, since Eq. (A3) makes each delay depend on
//!    the maximum driving delay — an extremely small budget downstream of
//!    a large one is unrealizable by any `(V_dd, V_ts, W)`;
//! 2. a global rescale: if raising floors (or path interactions) pushed
//!    the worst budget-sum path beyond `b·T_c`, all budgets are scaled
//!    back so the invariant "no path's budget total exceeds the cycle
//!    time" is exact.

use minpower_netlist::{GateId, GateKind, Netlist};

/// Fraction of the slowest driver's budget every gate must be allowed
/// (the worst-case input-slope coefficient of Eq. A3 stays below this for
/// practical `V_ts/V_dd` ratios).
pub const SLOPE_FLOOR: f64 = 0.25;

/// How the cycle time is divided among the gates of a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BudgetPolicy {
    /// The paper's Procedure 1: a gate's share is proportional to its
    /// fanout (criticality = Σ fanouts).
    #[default]
    FanoutWeighted,
    /// Ablation baseline: every logic gate gets an equal share
    /// (criticality = gate count, as in the original Ju–Saleh
    /// formulation).
    Uniform,
    /// Square-root-of-fanout share. When wire capacitance dominates the
    /// load, the energy of a gate sized to meet a budget `t` scales like
    /// `C/t`, and minimizing `Σ C_i/t_i` under `Σ t_i = T_c` gives
    /// optimal shares `t_i ∝ √C_i ∝ √fanout` — between the paper's rule
    /// and the uniform split.
    SqrtFanout,
}

/// Assigns a maximum-delay budget (seconds) to every gate so that the sum
/// of budgets along **any** source→sink path is at most `cycle_time`,
/// using the paper's fanout-weighted policy.
///
/// Primary inputs receive zero budget. Gates that drive nothing are
/// treated as path sinks (their output is a register or pad).
///
/// # Panics
///
/// Panics if `cycle_time` is not strictly positive.
///
/// # Example
///
/// ```
/// use minpower_core::budget::{assign_max_delays, longest_budget_path};
/// use minpower_netlist::{GateKind, NetlistBuilder};
///
/// # fn main() -> Result<(), minpower_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("chain");
/// b.input("a")?;
/// b.gate("x", GateKind::Not, &["a"])?;
/// b.gate("y", GateKind::Not, &["x"])?;
/// b.output("y")?;
/// let n = b.finish()?;
/// let budgets = assign_max_delays(&n, 2.0e-9);
/// assert!(longest_budget_path(&n, &budgets) <= 2.0e-9 * (1.0 + 1e-9));
/// # Ok(())
/// # }
/// ```
pub fn assign_max_delays(netlist: &Netlist, cycle_time: f64) -> Vec<f64> {
    assign_max_delays_with_policy(netlist, cycle_time, BudgetPolicy::FanoutWeighted)
}

/// [`assign_max_delays`] with an explicit [`BudgetPolicy`] (used by the
/// budgeting ablation).
///
/// # Panics
///
/// Panics if `cycle_time` is not strictly positive.
pub fn assign_max_delays_with_policy(
    netlist: &Netlist,
    cycle_time: f64,
    policy: BudgetPolicy,
) -> Vec<f64> {
    assert!(cycle_time > 0.0, "cycle time must be positive");
    let n = netlist.gate_count();
    let weight: Vec<f64> = (0..n)
        .map(|i| {
            let id = GateId::new(i);
            if netlist.gate(id).kind() == GateKind::Input {
                0.0
            } else {
                match policy {
                    BudgetPolicy::FanoutWeighted => netlist.fanout_count(id) as f64,
                    BudgetPolicy::Uniform => 1.0,
                    BudgetPolicy::SqrtFanout => (netlist.fanout_count(id) as f64).sqrt(),
                }
            }
        })
        .collect();

    // Prefix/suffix criticality DP with argmax pointers. Every gate with
    // no fanout is a sink, so every gate lies on some complete path.
    let mut prefix = vec![0.0f64; n];
    let mut pred: Vec<Option<u32>> = vec![None; n];
    for &id in netlist.topological_order() {
        let i = id.index();
        let mut best = 0.0;
        let mut best_pred = None;
        for &f in netlist.gate(id).fanin() {
            if best_pred.is_none() || prefix[f.index()] > best {
                best = prefix[f.index()];
                best_pred = Some(f.index() as u32);
            }
        }
        prefix[i] = best + weight[i];
        pred[i] = best_pred;
    }
    let mut suffix = vec![0.0f64; n];
    let mut succ: Vec<Option<u32>> = vec![None; n];
    for &id in netlist.topological_order().iter().rev() {
        let i = id.index();
        let mut best = 0.0;
        let mut best_succ = None;
        for &s in netlist.fanout(id) {
            if best_succ.is_none() || suffix[s.index()] > best {
                best = suffix[s.index()];
                best_succ = Some(s.index() as u32);
            }
        }
        suffix[i] = best + weight[i];
        succ[i] = best_succ;
    }

    // Gates ordered by decreasing best-path-through criticality: visiting
    // the top unassigned gate and assigning its whole best path reproduces
    // the paper's "next most critical path" loop with ≤ N path walks.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ca = prefix[a] + suffix[a] - weight[a];
        let cb = prefix[b] + suffix[b] - weight[b];
        cb.partial_cmp(&ca).expect("criticalities are finite")
    });

    let mut budget: Vec<Option<f64>> = vec![None; n];
    for (i, w) in weight.iter().enumerate() {
        if *w == 0.0 {
            budget[i] = Some(0.0); // primary inputs carry no delay
        }
    }
    let mut path = Vec::new();
    for &g in &order {
        if budget[g].is_some() {
            continue;
        }
        // Extract the maximum-criticality path through g.
        path.clear();
        let mut cur = g as u32;
        loop {
            path.push(cur as usize);
            match pred[cur as usize] {
                Some(p) => cur = p,
                None => break,
            }
        }
        path.reverse();
        let mut cur = g as u32;
        while let Some(s) = succ[cur as usize] {
            path.push(s as usize);
            cur = s;
        }

        // Eq. 3: distribute the unallocated cycle time over the
        // still-unassigned gates of the path, by fanout weight.
        let assigned_sum: f64 = path.iter().filter_map(|&i| budget[i]).sum();
        let unassigned_weight: f64 = path
            .iter()
            .filter(|&&i| budget[i].is_none())
            .map(|&i| weight[i])
            .sum();
        let scale = if unassigned_weight > 0.0 {
            ((cycle_time - assigned_sum).max(0.0)) / unassigned_weight
        } else {
            0.0
        };
        for &i in &path {
            if budget[i].is_none() {
                budget[i] = Some(weight[i] * scale);
            }
        }
    }
    let mut budgets: Vec<f64> = budget.into_iter().map(|b| b.unwrap_or(0.0)).collect();

    // Post-processing 1: slope floor (paper §4.2, final paragraph).
    for &id in netlist.topological_order() {
        let i = id.index();
        if weight[i] == 0.0 {
            continue;
        }
        let max_fanin = netlist
            .gate(id)
            .fanin()
            .iter()
            .map(|f| budgets[f.index()])
            .fold(0.0, f64::max);
        budgets[i] = budgets[i].max(SLOPE_FLOOR * max_fanin).max(1e-15);
    }

    // Post-processing 2: exact global rescale to the cycle time.
    let longest = longest_budget_path(netlist, &budgets);
    if longest > cycle_time {
        let k = cycle_time / longest;
        for b in &mut budgets {
            *b *= k;
        }
    }
    budgets
}

/// The largest sum of budgets along any source→sink path (node-weighted
/// longest path), in seconds — the quantity that must not exceed the
/// cycle time.
pub fn longest_budget_path(netlist: &Netlist, budgets: &[f64]) -> f64 {
    assert_eq!(budgets.len(), netlist.gate_count());
    let mut acc = vec![0.0f64; budgets.len()];
    let mut worst: f64 = 0.0;
    for &id in netlist.topological_order() {
        let i = id.index();
        let best_in = netlist
            .gate(id)
            .fanin()
            .iter()
            .map(|f| acc[f.index()])
            .fold(0.0, f64::max);
        acc[i] = best_in + budgets[i];
        worst = worst.max(acc[i]);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_netlist::NetlistBuilder;

    const TC: f64 = 3.0e-9;

    fn chain(len: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        b.input("a").unwrap();
        let mut prev = "a".to_string();
        for i in 0..len {
            let name = format!("n{i}");
            b.gate(&name, GateKind::Not, &[&prev]).unwrap();
            prev = name;
        }
        b.output(&prev).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn uniform_chain_splits_evenly() {
        let n = chain(5);
        let budgets = assign_max_delays(&n, TC);
        // Every chain gate has fanout 1, so all get T_c / 5.
        for i in 0..5 {
            let g = n.find(&format!("n{i}")).unwrap();
            assert!(
                (budgets[g.index()] - TC / 5.0).abs() < 1e-18,
                "gate n{i}: {}",
                budgets[g.index()]
            );
        }
        assert_eq!(budgets[n.find("a").unwrap().index()], 0.0);
    }

    #[test]
    fn budget_proportional_to_fanout() {
        // drv fans out to 3 sinks, each sink fans out to a PO load only.
        let mut b = NetlistBuilder::new("fan");
        b.input("a").unwrap();
        b.gate("drv", GateKind::Not, &["a"]).unwrap();
        for i in 0..3 {
            let s = format!("s{i}");
            b.gate(&s, GateKind::Not, &["drv"]).unwrap();
            b.output(&s).unwrap();
        }
        let n = b.finish().unwrap();
        let budgets = assign_max_delays(&n, TC);
        let drv = budgets[n.find("drv").unwrap().index()];
        let sink = budgets[n.find("s0").unwrap().index()];
        // Path weights: drv = 3, sink = 1 → 3:1 budget split.
        assert!((drv / sink - 3.0).abs() < 1e-9, "ratio = {}", drv / sink);
        assert!((drv + sink - TC).abs() < 1e-18);
    }

    #[test]
    fn no_path_exceeds_cycle_time() {
        // Reconvergent structure with shared segments.
        let mut b = NetlistBuilder::new("recon");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Not, &["a"]).unwrap();
        b.gate("v", GateKind::Nand, &["u", "c"]).unwrap();
        b.gate("w", GateKind::Nor, &["u", "v"]).unwrap();
        b.gate("x", GateKind::Not, &["v"]).unwrap();
        b.gate("y", GateKind::Nand, &["w", "x"]).unwrap();
        b.output("y").unwrap();
        b.output("x").unwrap();
        let n = b.finish().unwrap();
        let budgets = assign_max_delays(&n, TC);
        assert!(longest_budget_path(&n, &budgets) <= TC * (1.0 + 1e-12));
        // All logic gates got a strictly positive budget.
        for &id in n.topological_order() {
            if n.gate(id).kind() != GateKind::Input {
                assert!(budgets[id.index()] > 0.0, "{}", n.gate(id).name());
            }
        }
    }

    #[test]
    fn critical_path_budget_uses_full_cycle() {
        let n = chain(4);
        let budgets = assign_max_delays(&n, TC);
        assert!((longest_budget_path(&n, &budgets) - TC).abs() < TC * 1e-9);
    }

    #[test]
    fn slope_floor_prevents_starved_gates() {
        // A short path sharing its head with a long path: the short
        // path's tail gate would get the whole remaining budget; the long
        // path's interior gates get smaller ones — floor keeps every gate
        // above SLOPE_FLOOR × its driver.
        let mut b = NetlistBuilder::new("mix");
        b.input("a").unwrap();
        b.gate("h", GateKind::Not, &["a"]).unwrap();
        let mut prev = "h".to_string();
        for i in 0..6 {
            let name = format!("l{i}");
            b.gate(&name, GateKind::Not, &[&prev]).unwrap();
            prev = name;
        }
        b.output(&prev).unwrap();
        b.gate("short", GateKind::Not, &["h"]).unwrap();
        b.output("short").unwrap();
        let n = b.finish().unwrap();
        let budgets = assign_max_delays(&n, TC);
        for &id in n.topological_order() {
            if n.gate(id).kind() == GateKind::Input {
                continue;
            }
            let max_fanin = n
                .gate(id)
                .fanin()
                .iter()
                .map(|f| budgets[f.index()])
                .fold(0.0, f64::max);
            assert!(
                budgets[id.index()] >= SLOPE_FLOOR * max_fanin - 1e-18,
                "{} starved: {} vs driver {}",
                n.gate(id).name(),
                budgets[id.index()],
                max_fanin
            );
        }
        assert!(longest_budget_path(&n, &budgets) <= TC * (1.0 + 1e-12));
    }

    #[test]
    #[should_panic(expected = "cycle time must be positive")]
    fn zero_cycle_time_panics() {
        let n = chain(2);
        let _ = assign_max_delays(&n, 0.0);
    }

    #[test]
    fn policies_order_budget_concentration() {
        // On a fanout-3 driver feeding single-fanout sinks, the driver's
        // share must be largest under fanout weighting, intermediate
        // under sqrt, and equal under uniform.
        let mut b = NetlistBuilder::new("fan");
        b.input("a").unwrap();
        b.gate("drv", GateKind::Not, &["a"]).unwrap();
        for i in 0..3 {
            let s = format!("s{i}");
            b.gate(&s, GateKind::Not, &["drv"]).unwrap();
            b.output(&s).unwrap();
        }
        let n = b.finish().unwrap();
        let share = |policy| {
            let budgets = assign_max_delays_with_policy(&n, TC, policy);
            budgets[n.find("drv").unwrap().index()] / budgets[n.find("s0").unwrap().index()]
        };
        let fanout = share(BudgetPolicy::FanoutWeighted);
        let sqrt = share(BudgetPolicy::SqrtFanout);
        let uniform = share(BudgetPolicy::Uniform);
        assert!((fanout - 3.0).abs() < 1e-9);
        assert!((sqrt - 3.0f64.sqrt()).abs() < 1e-9);
        assert!((uniform - 1.0).abs() < 1e-9);
        // All policies respect the cycle-time certificate.
        for policy in [
            BudgetPolicy::FanoutWeighted,
            BudgetPolicy::SqrtFanout,
            BudgetPolicy::Uniform,
        ] {
            let budgets = assign_max_delays_with_policy(&n, TC, policy);
            assert!(longest_budget_path(&n, &budgets) <= TC * (1.0 + 1e-12));
        }
    }

    #[test]
    fn dangling_gate_gets_budget() {
        let mut b = NetlistBuilder::new("dead");
        b.input("a").unwrap();
        b.gate("live", GateKind::Not, &["a"]).unwrap();
        b.gate("dead", GateKind::Not, &["a"]).unwrap();
        b.gate("y", GateKind::Not, &["live"]).unwrap();
        b.output("y").unwrap();
        let n = b.finish().unwrap();
        let budgets = assign_max_delays(&n, TC);
        assert!(budgets[n.find("dead").unwrap().index()] > 0.0);
    }
}
