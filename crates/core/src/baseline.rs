//! The Table 1 comparison point: widths + `V_dd` at a fixed threshold.
//!
//! The paper's baseline ("conventional optimization") holds the threshold
//! at the process-nominal 700 mV and optimizes only the supply voltage and
//! device widths to minimize power at the required cycle time. Because a
//! 700 mV threshold leaks essentially nothing, lowering `V_dd` quickly
//! makes the delay constraint unmeetable even at maximum width — which is
//! why the paper notes the baseline "coincidentally returned `V_dd` values
//! close to 3.3 V".

use crate::error::OptimizeError;
use crate::problem::Problem;
use crate::result::OptimizationResult;
use crate::runctl::RunControl;
use crate::search::{SearchOptions, Sizer};

/// Optimizes widths and the global supply at a fixed threshold voltage.
///
/// Only [`SearchOptions::steps`] and [`SearchOptions::width_passes`] are
/// honored (there is no threshold loop to group or margin).
///
/// # Errors
///
/// Same failure modes as [`crate::Optimizer::run`].
///
/// # Example
///
/// ```
/// use minpower_core::{baseline, Problem, SearchOptions};
/// use minpower_device::Technology;
/// use minpower_models::CircuitModel;
/// use minpower_netlist::{GateKind, NetlistBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut b = NetlistBuilder::new("t");
/// # b.input("a")?;
/// # b.gate("x", GateKind::Nand, &["a", "a"])?;
/// # b.gate("y", GateKind::Nor, &["x", "a"])?;
/// # b.output("y")?;
/// # let n = b.finish()?;
/// let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
/// let problem = Problem::new(model, 300.0e6);
/// let r = baseline::optimize_fixed_vt(&problem, 0.7, SearchOptions::default())?;
/// assert!(r.feasible);
/// # Ok(())
/// # }
/// ```
pub fn optimize_fixed_vt(
    problem: &Problem,
    vt: f64,
    options: SearchOptions,
) -> Result<OptimizationResult, OptimizeError> {
    optimize_fixed_vt_ctl(problem, vt, options, &RunControl::new())
}

/// [`optimize_fixed_vt`] under a [`RunControl`]: the supply search polls
/// `control` once per probe and, on a trip, stops cleanly with
/// [`OptimizeError::Interrupted`] carrying the best feasible design found
/// so far.
///
/// # Errors
///
/// The [`optimize_fixed_vt`] failure modes, plus
/// [`OptimizeError::Interrupted`] on a control trip.
pub fn optimize_fixed_vt_ctl(
    problem: &Problem,
    vt: f64,
    options: SearchOptions,
    control: &RunControl,
) -> Result<OptimizationResult, OptimizeError> {
    if options.steps == 0 {
        return Err(OptimizeError::BadOption {
            option: "steps",
            message: "must be at least 1".into(),
        });
    }
    problem.validate()?;
    let model = problem.model();
    if model.netlist().logic_gate_count() == 0 {
        return Err(OptimizeError::EmptyNetwork);
    }
    let tech = model.technology().clone();
    let sizer = Sizer::new(
        problem,
        options.steps,
        options.width_passes.max(1),
        0.0,
        options.budget_policy,
        options.sizing,
    );
    let n = model.netlist().gate_count();
    let vt_vec = vec![vt; n];

    let mut best: Option<crate::search::Sized> = None;
    let mut best_delay = f64::INFINITY;
    let mut evaluations = 0usize;
    // Energy vs V_dd at a fixed high threshold is unimodal with an
    // infeasible plateau at low supply (the paper's baseline "returned
    // V_dd values close to 3.3 V" because that plateau reached nearly to
    // the top of the range); golden-section with upward tie-breaking
    // locates the minimum.
    let mut tripped = None;
    let (v_lo, v_hi) = tech.vdd_range;
    crate::search::golden_section(v_lo, v_hi, options.steps, true, |vdd| {
        if tripped.is_none() {
            tripped = control.trip();
        }
        if tripped.is_some() {
            return f64::INFINITY;
        }
        let sized = sizer.size(vdd, &vt_vec);
        evaluations += 1;
        if sized.critical_delay.is_finite() {
            best_delay = best_delay.min(sized.critical_delay);
        }
        let e = if sized.feasible && sized.energy.total().is_finite() {
            sized.energy.total()
        } else {
            f64::INFINITY
        };
        if sized.feasible
            && sized.energy.total().is_finite()
            && best
                .as_ref()
                .is_none_or(|b| sized.energy.total() < b.energy.total())
        {
            best = Some(sized);
        }
        e
    });
    // Probe the very top of the supply range explicitly — golden-section
    // never lands on the bracket ends, and the fixed-Vt optimum may sit
    // exactly there.
    if best.is_none() && tripped.is_none() {
        let sized = sizer.size(tech.vdd_range.1, &vt_vec);
        evaluations += 1;
        best_delay = best_delay.min(sized.critical_delay);
        if sized.feasible && sized.energy.total().is_finite() {
            best = Some(sized);
        }
    }

    if let Some(reason) = tripped {
        sizer.stats().count_deadline_trip();
        let best_so_far = best.map(|sized| {
            Box::new(OptimizationResult {
                design: sized.design,
                energy: sized.energy,
                critical_delay: sized.critical_delay,
                feasible: sized.feasible,
                evaluations,
                budgets: sizer.budgets.clone(),
            })
        });
        return Err(OptimizeError::Interrupted {
            reason,
            best_so_far,
            progress: control.progress(evaluations),
        });
    }

    match best {
        Some(sized) => Ok(OptimizationResult {
            design: sized.design,
            energy: sized.energy,
            critical_delay: sized.critical_delay,
            feasible: sized.feasible,
            evaluations,
            budgets: sizer.budgets,
        }),
        None => Err(OptimizeError::Infeasible {
            cycle_time: problem.effective_cycle_time(),
            best_delay,
        }),
    }
}

/// Optimizes only the device widths at a **fixed** supply and threshold —
/// the process-nominal operating point a conventional flow ships
/// (`V_dd = 3.3 V`, `V_t = 700 mV` for the paper's technology, where its
/// Table 1 baseline landed).
///
/// Equivalent to [`crate::search::size_at`]; provided under a baseline
/// name because the experiment tables quote savings against it.
///
/// # Errors
///
/// Same failure modes as [`optimize_fixed_vt`]; an infeasible corner is
/// reported as [`OptimizeError::Infeasible`].
pub fn optimize_widths_at(
    problem: &Problem,
    vdd: f64,
    vt: f64,
    options: SearchOptions,
) -> Result<OptimizationResult, OptimizeError> {
    let r = crate::search::size_at(problem, vdd, vt, &options)?;
    if r.feasible {
        Ok(r)
    } else {
        Err(OptimizeError::Infeasible {
            cycle_time: problem.effective_cycle_time(),
            best_delay: r.critical_delay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{GateKind, Netlist, NetlistBuilder};

    fn chain(len: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        b.input("a").unwrap();
        b.input("b").unwrap();
        let mut prev = "a".to_string();
        for i in 0..len {
            let name = format!("n{i}");
            b.gate(&name, GateKind::Nand, &[&prev, "b"]).unwrap();
            prev = name;
        }
        b.output(&prev).unwrap();
        b.finish().unwrap()
    }

    fn problem(fc: f64) -> Problem {
        let n = chain(8);
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        Problem::new(model, fc)
    }

    #[test]
    fn baseline_is_feasible_at_nominal_frequency() {
        let p = problem(300.0e6);
        let r = optimize_fixed_vt(&p, 0.7, SearchOptions::default()).unwrap();
        assert!(r.feasible);
        assert!(r.critical_delay <= p.cycle_time() * (1.0 + 1e-9));
        // Threshold untouched.
        assert_eq!(r.uniform_vt(), Some(0.7));
    }

    #[test]
    fn fixed_vt_needs_much_higher_supply_than_joint() {
        // The paper's observation: with the threshold pinned at 700 mV the
        // baseline is forced to a high supply, while the joint optimizer
        // drops both Vt and Vdd.
        let p = problem(500.0e6);
        let fixed = optimize_fixed_vt(&p, 0.7, SearchOptions::default()).unwrap();
        let joint = crate::Optimizer::new(&p).run().unwrap();
        assert!(
            fixed.design.vdd > joint.design.vdd,
            "fixed vdd {} !> joint vdd {}",
            fixed.design.vdd,
            joint.design.vdd
        );
        assert!(fixed.design.vdd > 1.0, "vdd = {}", fixed.design.vdd);
    }

    #[test]
    fn leakage_is_negligible_at_700mv() {
        let p = problem(300.0e6);
        let r = optimize_fixed_vt(&p, 0.7, SearchOptions::default()).unwrap();
        assert!(
            r.energy.static_ < 1e-4 * r.energy.dynamic,
            "static {:.3e} vs dynamic {:.3e}",
            r.energy.static_,
            r.energy.dynamic
        );
    }

    #[test]
    fn nominal_corner_baseline_costs_more_than_free_vdd() {
        let p = problem(300.0e6);
        let free = optimize_fixed_vt(&p, 0.7, SearchOptions::default()).unwrap();
        let nominal = optimize_widths_at(&p, 3.3, 0.7, SearchOptions::default()).unwrap();
        assert!(nominal.feasible);
        assert_eq!(nominal.design.vdd, 3.3);
        assert!(
            nominal.energy.total() >= free.energy.total(),
            "nominal {:.3e} < free {:.3e}",
            nominal.energy.total(),
            free.energy.total()
        );
    }

    #[test]
    fn impossible_frequency_errors() {
        let p = problem(100.0e9);
        assert!(matches!(
            optimize_fixed_vt(&p, 0.7, SearchOptions::default()),
            Err(OptimizeError::Infeasible { .. })
        ));
    }
}
