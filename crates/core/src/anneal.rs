//! Multiple-pass simulated annealing over `(V_dd, V_ts, W_1..W_N)`.
//!
//! The paper implemented an annealing-based optimizer "for evaluation
//! purposes" and found the heuristic performed significantly better: the
//! joint search space (two voltages plus one width per gate) is too large
//! for annealing to converge in practical time (§5). This module
//! reproduces that comparison point: a standard Metropolis annealer with
//! geometric cooling and multiple restart passes, a delay-violation
//! penalty folded into the cost, and a bounded evaluation budget so
//! head-to-head comparisons against Procedure 2 use equal work.

use minpower_engine::SplitMix64;
use minpower_models::Design;
use minpower_netlist::GateKind;

use crate::budget::assign_max_delays;
use crate::error::OptimizeError;
use crate::problem::Problem;
use crate::result::OptimizationResult;

/// Annealing schedule and budget.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealOptions {
    /// Total design evaluations across all passes.
    pub max_evaluations: usize,
    /// Number of independent cooling passes (restarts keep the best).
    pub passes: usize,
    /// Initial acceptance temperature as a fraction of the initial cost.
    pub initial_temperature: f64,
    /// Geometric cooling rate per step, in `(0, 1)`.
    pub cooling: f64,
    /// PRNG seed for reproducible runs.
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            max_evaluations: 20_000,
            passes: 3,
            initial_temperature: 0.3,
            cooling: 0.999,
            seed: 0xDAC9_7001,
        }
    }
}

/// Runs the annealer, returning the best design found.
///
/// The returned result's `feasible` flag reports whether the best design
/// met every delay budget; unlike the heuristic, annealing offers no
/// guarantee of ending feasible.
///
/// # Errors
///
/// [`OptimizeError::EmptyNetwork`] for gate-free networks and
/// [`OptimizeError::BadOption`] for a zero evaluation budget or an invalid
/// cooling rate.
pub fn optimize(
    problem: &Problem,
    options: AnnealOptions,
) -> Result<OptimizationResult, OptimizeError> {
    if options.max_evaluations == 0 {
        return Err(OptimizeError::BadOption {
            option: "max_evaluations",
            message: "must be at least 1".into(),
        });
    }
    if !(0.0 < options.cooling && options.cooling < 1.0) {
        return Err(OptimizeError::BadOption {
            option: "cooling",
            message: "must lie in (0, 1)".into(),
        });
    }
    let model = problem.model();
    let netlist = model.netlist();
    if netlist.logic_gate_count() == 0 {
        return Err(OptimizeError::EmptyNetwork);
    }
    let tech = model.technology().clone();
    let budgets = assign_max_delays(netlist, problem.effective_cycle_time());
    let n = netlist.gate_count();
    let logic: Vec<usize> = (0..n)
        .filter(|&i| netlist.gate(minpower_netlist::GateId::new(i)).kind() != GateKind::Input)
        .collect();

    let mut rng = SplitMix64::new(options.seed);
    let fc = problem.fc();
    let stats = crate::context::EvalContext::global().stats().clone();

    // Penalized cost: energy × (1 + relative budget violation). The
    // violation term dominates while infeasible and vanishes at
    // feasibility.
    let cost_of = |design: &Design| -> (f64, bool) {
        stats.count_eval();
        stats.count_sta(1);
        let delays = model.delays(design);
        let mut violation = 0.0f64;
        for &i in &logic {
            let over = delays[i] - budgets[i];
            if over > 0.0 {
                violation += over / problem.effective_cycle_time();
            }
        }
        let energy = model.total_energy(design, fc).total();
        (energy * (1.0 + 100.0 * violation), violation <= 0.0)
    };

    // Start from a safe corner: full supply, nominal threshold, mid width.
    let start = Design {
        vdd: tech.vdd_range.1,
        vt: vec![0.5 * (tech.vt_range.0 + tech.vt_range.1); n],
        width: vec![0.25 * (tech.w_range.0 + tech.w_range.1); n],
    };

    let mut best = start.clone();
    let (mut best_cost, mut best_feasible) = cost_of(&best);
    let mut evaluations = 1usize;
    let per_pass = options.max_evaluations / options.passes.max(1);

    for pass in 0..options.passes.max(1) {
        let mut current = if pass == 0 {
            start.clone()
        } else {
            best.clone()
        };
        let (mut current_cost, _) = cost_of(&current);
        evaluations += 1;
        let mut temperature = options.initial_temperature * current_cost.max(1e-30);
        for _ in 0..per_pass {
            if evaluations >= options.max_evaluations {
                break;
            }
            let mut trial = current.clone();
            match rng.range_usize(4) {
                0 => {
                    let delta = rng.range_f64(-0.15, 0.15);
                    trial.vdd = (trial.vdd + delta).clamp(tech.vdd_range.0, tech.vdd_range.1);
                }
                1 => {
                    let delta = rng.range_f64(-0.05, 0.05);
                    let vt = (trial.vt[logic[0]] + delta).clamp(tech.vt_range.0, tech.vt_range.1);
                    for &i in &logic {
                        trial.vt[i] = vt;
                    }
                }
                _ => {
                    let i = logic[rng.range_usize(logic.len())];
                    let factor = rng.range_f64(0.7, 1.4);
                    trial.width[i] =
                        (trial.width[i] * factor).clamp(tech.w_range.0, tech.w_range.1);
                }
            }
            let (trial_cost, trial_feasible) = cost_of(&trial);
            evaluations += 1;
            let accept = trial_cost < current_cost || {
                let delta = trial_cost - current_cost;
                rng.next_f64() < (-delta / temperature.max(1e-300)).exp()
            };
            if accept {
                current = trial;
                current_cost = trial_cost;
                if current_cost < best_cost {
                    best = current.clone();
                    best_cost = current_cost;
                    best_feasible = trial_feasible;
                }
            }
            temperature *= options.cooling;
        }
    }

    let delays = model.delays(&best);
    let mut arrival = vec![0.0f64; n];
    let mut critical = 0.0f64;
    for &id in netlist.topological_order() {
        let i = id.index();
        let latest = netlist
            .gate(id)
            .fanin()
            .iter()
            .map(|f| arrival[f.index()])
            .fold(0.0, f64::max);
        arrival[i] = latest + delays[i];
        critical = critical.max(arrival[i]);
    }
    let energy = model.total_energy(&best, fc);
    Ok(OptimizationResult {
        design: best,
        energy,
        critical_delay: critical,
        feasible: best_feasible,
        evaluations,
        budgets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{Netlist, NetlistBuilder};

    fn netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Nand, &["a", "c"]).unwrap();
        b.gate("v", GateKind::Nor, &["u", "c"]).unwrap();
        b.gate("w", GateKind::Nand, &["u", "v"]).unwrap();
        b.gate("y", GateKind::Not, &["w"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    fn problem() -> Problem {
        let n = netlist();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        Problem::new(model, 200.0e6)
    }

    #[test]
    fn annealing_improves_on_start_and_respects_budget_cap() {
        let p = problem();
        let opts = AnnealOptions {
            max_evaluations: 3_000,
            ..AnnealOptions::default()
        };
        let r = optimize(&p, opts.clone()).unwrap();
        assert!(r.evaluations <= opts.max_evaluations + 2);
        // It should at least find a feasible design on this tiny network.
        assert!(r.feasible);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let p = problem();
        let opts = AnnealOptions {
            max_evaluations: 1_000,
            ..AnnealOptions::default()
        };
        let a = optimize(&p, opts.clone()).unwrap();
        let b = optimize(&p, opts).unwrap();
        assert_eq!(a.design, b.design);
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn zero_budget_rejected() {
        let p = problem();
        let err = optimize(
            &p,
            AnnealOptions {
                max_evaluations: 0,
                ..AnnealOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            OptimizeError::BadOption {
                option: "max_evaluations",
                ..
            }
        ));
    }

    #[test]
    fn heuristic_beats_annealing_at_equal_budget() {
        let p = problem();
        let heuristic = crate::Optimizer::new(&p).run().unwrap();
        let annealed = optimize(
            &p,
            AnnealOptions {
                max_evaluations: heuristic.evaluations.max(500),
                ..AnnealOptions::default()
            },
        )
        .unwrap();
        // The paper's §5 claim, at matched evaluation budgets: the
        // heuristic's energy is at least as good (allow a sliver of noise).
        assert!(
            heuristic.energy.total() <= annealed.energy.total() * 1.05,
            "heuristic {:.3e} vs anneal {:.3e}",
            heuristic.energy.total(),
            annealed.energy.total()
        );
    }
}
