//! Multiple-pass simulated annealing over `(V_dd, V_ts, W_1..W_N)`.
//!
//! The paper implemented an annealing-based optimizer "for evaluation
//! purposes" and found the heuristic performed significantly better: the
//! joint search space (two voltages plus one width per gate) is too large
//! for annealing to converge in practical time (§5). This module
//! reproduces that comparison point: a standard Metropolis annealer with
//! geometric cooling and multiple restart passes, a delay-violation
//! penalty folded into the cost, and a bounded evaluation budget so
//! head-to-head comparisons against Procedure 2 use equal work.

use std::path::Path;

use minpower_engine::{fnv1a_words, SplitMix64};
use minpower_models::Design;
use minpower_netlist::GateKind;

use crate::budget::assign_max_delays;
use crate::checkpoint::{AnnealState, Checkpoint, CheckpointSpec};
use crate::error::OptimizeError;
use crate::problem::Problem;
use crate::result::OptimizationResult;
use crate::runctl::RunControl;

/// Annealing schedule and budget.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealOptions {
    /// Total design evaluations across all passes.
    pub max_evaluations: usize,
    /// Number of independent cooling passes (restarts keep the best).
    pub passes: usize,
    /// Initial acceptance temperature as a fraction of the initial cost.
    pub initial_temperature: f64,
    /// Geometric cooling rate per step, in `(0, 1)`.
    pub cooling: f64,
    /// PRNG seed for reproducible runs.
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            max_evaluations: 20_000,
            passes: 3,
            initial_temperature: 0.3,
            cooling: 0.999,
            seed: 0xDAC9_7001,
        }
    }
}

/// Runs the annealer, returning the best design found.
///
/// The returned result's `feasible` flag reports whether the best design
/// met every delay budget; unlike the heuristic, annealing offers no
/// guarantee of ending feasible.
///
/// # Errors
///
/// [`OptimizeError::EmptyNetwork`] for gate-free networks and
/// [`OptimizeError::BadOption`] for a zero evaluation budget or an invalid
/// cooling rate.
pub fn optimize(
    problem: &Problem,
    options: AnnealOptions,
) -> Result<OptimizationResult, OptimizeError> {
    optimize_ctl(problem, options, &RunControl::new(), None, None)
}

/// Fingerprint binding a checkpoint to one `(problem, options)` pair: a
/// resume against a different circuit, budget, or schedule is rejected
/// instead of silently continuing the wrong run.
fn anneal_salt(problem: &Problem, options: &AnnealOptions) -> u64 {
    fnv1a_words([
        problem.model().fingerprint(),
        problem.fc().to_bits(),
        problem.effective_cycle_time().to_bits(),
        options.max_evaluations as u64,
        options.passes as u64,
        options.initial_temperature.to_bits(),
        options.cooling.to_bits(),
        options.seed,
    ])
}

/// [`optimize`] under a [`RunControl`], with optional checkpointing.
///
/// The annealer polls `control` once per Metropolis step; on a trip it
/// writes a final snapshot (when `checkpoint` is set) and returns
/// [`OptimizeError::Interrupted`] carrying the best design found so far.
/// A snapshot captures the full loop state — pass, step, temperature,
/// PRNG state, current and best designs — so a resumed run continues the
/// exact random sequence and finishes bit-identically to an uninterrupted
/// one.
///
/// # Errors
///
/// The [`optimize`] failure modes, plus [`OptimizeError::Interrupted`] on
/// a control trip and [`OptimizeError::Checkpoint`] for unreadable or
/// mismatched snapshots.
pub fn optimize_ctl(
    problem: &Problem,
    options: AnnealOptions,
    control: &RunControl,
    checkpoint: Option<&CheckpointSpec>,
    resume: Option<&Path>,
) -> Result<OptimizationResult, OptimizeError> {
    if options.max_evaluations == 0 {
        return Err(OptimizeError::BadOption {
            option: "max_evaluations",
            message: "must be at least 1".into(),
        });
    }
    if !(0.0 < options.cooling && options.cooling < 1.0) {
        return Err(OptimizeError::BadOption {
            option: "cooling",
            message: "must lie in (0, 1)".into(),
        });
    }
    problem.validate()?;
    let model = problem.model();
    let netlist = model.netlist();
    if netlist.logic_gate_count() == 0 {
        return Err(OptimizeError::EmptyNetwork);
    }
    let tech = model.technology().clone();
    let budgets = assign_max_delays(netlist, problem.effective_cycle_time());
    let n = netlist.gate_count();
    let logic: Vec<usize> = (0..n)
        .filter(|&i| netlist.gate(minpower_netlist::GateId::new(i)).kind() != GateKind::Input)
        .collect();

    let salt = anneal_salt(problem, &options);
    let fc = problem.fc();
    let stats = crate::context::EvalContext::global().stats().clone();

    // Penalized cost: energy × (1 + relative budget violation). The
    // violation term dominates while infeasible and vanishes at
    // feasibility.
    let cost_of = |design: &Design| -> (f64, bool) {
        stats.count_eval();
        stats.count_sta(1);
        let delays = model.delays(design);
        let mut violation = 0.0f64;
        for &i in &logic {
            let over = delays[i] - budgets[i];
            if over > 0.0 {
                violation += over / problem.effective_cycle_time();
            }
        }
        let energy = model.total_energy(design, fc).total();
        (energy * (1.0 + 100.0 * violation), violation <= 0.0)
    };

    // Start from a safe corner: full supply, nominal threshold, mid width.
    let start = Design {
        vdd: tech.vdd_range.1,
        vt: vec![0.5 * (tech.vt_range.0 + tech.vt_range.1); n],
        width: vec![0.25 * (tech.w_range.0 + tech.w_range.1); n],
    };
    let per_pass = options.max_evaluations / options.passes.max(1);
    let passes = options.passes.max(1);

    // Loop state — either freshly initialized or restored verbatim from a
    // snapshot. Snapshots are taken at the top of the step loop (after the
    // pass initialization), so a restored state always re-enters the step
    // loop directly with `skip_init` set.
    let mut rng;
    let mut pass;
    let mut step;
    let mut evaluations;
    let mut temperature;
    let mut current;
    let mut current_cost;
    let mut best;
    let mut best_cost;
    let mut best_feasible;
    let mut skip_init;
    if let Some(path) = resume {
        let state = match Checkpoint::load(path)? {
            Checkpoint::Anneal { salt: s, state } => {
                if s != salt {
                    return Err(OptimizeError::Checkpoint {
                        message: format!(
                            "{} was taken for a different problem or option set \
                             (fingerprint mismatch)",
                            path.display()
                        ),
                    });
                }
                state
            }
            other => {
                return Err(OptimizeError::Checkpoint {
                    message: format!(
                        "{} is an `{}` checkpoint, not an anneal checkpoint",
                        path.display(),
                        other.engine()
                    ),
                });
            }
        };
        rng = SplitMix64::from_state(state.rng_state);
        pass = state.pass;
        step = state.step;
        evaluations = state.evaluations;
        temperature = state.temperature;
        current = state.current;
        current_cost = state.current_cost;
        best = state.best;
        best_cost = state.best_cost;
        best_feasible = state.best_feasible;
        skip_init = true;
    } else {
        rng = SplitMix64::new(options.seed);
        pass = 0;
        step = 0;
        best = start.clone();
        let (c, f) = cost_of(&best);
        best_cost = c;
        best_feasible = f;
        evaluations = 1;
        temperature = 0.0;
        current = start.clone();
        current_cost = best_cost;
        skip_init = false;
    }

    let mut last_write = evaluations;
    let mut save_state = |pass: usize,
                          step: usize,
                          evaluations: usize,
                          temperature: f64,
                          rng: &SplitMix64,
                          current: &Design,
                          current_cost: f64,
                          best: &Design,
                          best_cost: f64,
                          best_feasible: bool,
                          force: bool|
     -> Result<(), OptimizeError> {
        let Some(spec) = checkpoint else {
            return Ok(());
        };
        let due = evaluations.saturating_sub(last_write) >= spec.every.max(1);
        if !(due || (force && evaluations != last_write)) {
            return Ok(());
        }
        let snapshot = Checkpoint::Anneal {
            salt,
            state: AnnealState {
                pass,
                step,
                evaluations,
                temperature,
                rng_state: rng.state(),
                current: current.clone(),
                current_cost,
                best: best.clone(),
                best_cost,
                best_feasible,
            },
        };
        match snapshot.save_report(&spec.path) {
            Ok(report) => {
                stats.count_checkpoint();
                stats.count_store_write(report.retries);
                if let Some(health) = &spec.health {
                    health.report_success();
                }
                last_write = evaluations;
            }
            Err(e) => {
                if let Some(health) = &spec.health {
                    health.report_failure(&e.to_string());
                }
                if spec.required {
                    return Err(e);
                }
                // Best-effort policy: keep annealing uncheckpointed and
                // re-attempt at the normal cadence.
                last_write = evaluations;
            }
        }
        Ok(())
    };

    let mut tripped = None;
    'passes: while pass < passes {
        if !skip_init {
            current = if pass == 0 {
                start.clone()
            } else {
                best.clone()
            };
            let (c, _) = cost_of(&current);
            current_cost = c;
            evaluations += 1;
            temperature = options.initial_temperature * current_cost.max(1e-30);
        }
        skip_init = false;
        while step < per_pass {
            if evaluations >= options.max_evaluations {
                break;
            }
            if tripped.is_none() {
                tripped = control.trip();
            }
            if tripped.is_some() {
                break 'passes;
            }
            save_state(
                pass,
                step,
                evaluations,
                temperature,
                &rng,
                &current,
                current_cost,
                &best,
                best_cost,
                best_feasible,
                false,
            )?;
            let mut trial = current.clone();
            match rng.range_usize(4) {
                0 => {
                    let delta = rng.range_f64(-0.15, 0.15);
                    trial.vdd = (trial.vdd + delta).clamp(tech.vdd_range.0, tech.vdd_range.1);
                }
                1 => {
                    let delta = rng.range_f64(-0.05, 0.05);
                    let vt = (trial.vt[logic[0]] + delta).clamp(tech.vt_range.0, tech.vt_range.1);
                    for &i in &logic {
                        trial.vt[i] = vt;
                    }
                }
                _ => {
                    let i = logic[rng.range_usize(logic.len())];
                    let factor = rng.range_f64(0.7, 1.4);
                    trial.width[i] =
                        (trial.width[i] * factor).clamp(tech.w_range.0, tech.w_range.1);
                }
            }
            let (trial_cost, trial_feasible) = cost_of(&trial);
            evaluations += 1;
            let accept = trial_cost < current_cost || {
                let delta = trial_cost - current_cost;
                rng.next_f64() < (-delta / temperature.max(1e-300)).exp()
            };
            if accept {
                current = trial;
                current_cost = trial_cost;
                if current_cost < best_cost {
                    best = current.clone();
                    best_cost = current_cost;
                    best_feasible = trial_feasible;
                }
            }
            temperature *= options.cooling;
            step += 1;
        }
        pass += 1;
        step = 0;
    }

    if let Some(reason) = tripped {
        stats.count_deadline_trip();
        // Best-effort final snapshot so `--resume` continues from this
        // exact step; the partial result matters more than a failed write.
        let _ = save_state(
            pass,
            step,
            evaluations,
            temperature,
            &rng,
            &current,
            current_cost,
            &best,
            best_cost,
            best_feasible,
            true,
        );
        let result = finish(problem, best, best_feasible, evaluations, budgets);
        return Err(OptimizeError::Interrupted {
            reason,
            best_so_far: Some(Box::new(result)),
            progress: control.progress(evaluations),
        });
    }

    // Final snapshot: resuming a *completed* run replays to the same
    // result immediately.
    save_state(
        pass,
        step,
        evaluations,
        temperature,
        &rng,
        &current,
        current_cost,
        &best,
        best_cost,
        best_feasible,
        true,
    )?;
    Ok(finish(problem, best, best_feasible, evaluations, budgets))
}

/// Final evaluation of the winning design: self-consistent delays, the
/// critical arrival, and the energy breakdown.
fn finish(
    problem: &Problem,
    best: Design,
    best_feasible: bool,
    evaluations: usize,
    budgets: Vec<f64>,
) -> OptimizationResult {
    let model = problem.model();
    let netlist = model.netlist();
    let n = netlist.gate_count();
    let delays = model.delays(&best);
    let mut arrival = vec![0.0f64; n];
    let mut critical = 0.0f64;
    for &id in netlist.topological_order() {
        let i = id.index();
        let latest = netlist
            .gate(id)
            .fanin()
            .iter()
            .map(|f| arrival[f.index()])
            .fold(0.0, f64::max);
        arrival[i] = latest + delays[i];
        critical = critical.max(arrival[i]);
    }
    let energy = model.total_energy(&best, problem.fc());
    OptimizationResult {
        design: best,
        energy,
        critical_delay: critical,
        feasible: best_feasible,
        evaluations,
        budgets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{Netlist, NetlistBuilder};

    fn netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Nand, &["a", "c"]).unwrap();
        b.gate("v", GateKind::Nor, &["u", "c"]).unwrap();
        b.gate("w", GateKind::Nand, &["u", "v"]).unwrap();
        b.gate("y", GateKind::Not, &["w"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    fn problem() -> Problem {
        let n = netlist();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        Problem::new(model, 200.0e6)
    }

    #[test]
    fn annealing_improves_on_start_and_respects_budget_cap() {
        let p = problem();
        let opts = AnnealOptions {
            max_evaluations: 3_000,
            ..AnnealOptions::default()
        };
        let r = optimize(&p, opts.clone()).unwrap();
        assert!(r.evaluations <= opts.max_evaluations + 2);
        // It should at least find a feasible design on this tiny network.
        assert!(r.feasible);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let p = problem();
        let opts = AnnealOptions {
            max_evaluations: 1_000,
            ..AnnealOptions::default()
        };
        let a = optimize(&p, opts.clone()).unwrap();
        let b = optimize(&p, opts).unwrap();
        assert_eq!(a.design, b.design);
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn zero_budget_rejected() {
        let p = problem();
        let err = optimize(
            &p,
            AnnealOptions {
                max_evaluations: 0,
                ..AnnealOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            OptimizeError::BadOption {
                option: "max_evaluations",
                ..
            }
        ));
    }

    #[test]
    fn heuristic_beats_annealing_at_equal_budget() {
        let p = problem();
        let heuristic = crate::Optimizer::new(&p).run().unwrap();
        let annealed = optimize(
            &p,
            AnnealOptions {
                max_evaluations: heuristic.evaluations.max(500),
                ..AnnealOptions::default()
            },
        )
        .unwrap();
        // The paper's §5 claim, at matched evaluation budgets: the
        // heuristic's energy is at least as good (allow a sliver of noise).
        assert!(
            heuristic.energy.total() <= annealed.energy.total() * 1.05,
            "heuristic {:.3e} vs anneal {:.3e}",
            heuristic.energy.total(),
            annealed.energy.total()
        );
    }
}
