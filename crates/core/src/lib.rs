//! Joint device-circuit optimization for minimal energy in CMOS random
//! logic networks — the core algorithm of Pant, De & Chatterjee (DAC'97).
//!
//! Given a logic network required to run at clock frequency `f_c`, the
//! optimizer chooses one global supply voltage `V_dd`, one (or `n_v`)
//! threshold voltage(s) `V_ts`, and a channel width `w_i` per gate so that
//! the total static + dynamic energy per cycle is minimized while every
//! path meets the cycle time. The algorithm is a two-phase heuristic:
//!
//! 1. **[`budget`] (Procedure 1)** — walk paths in decreasing fanout-sum
//!    criticality and give every gate a maximum-delay budget proportional
//!    to its fanout, stretching *all* paths (critical and non-critical) to
//!    the available cycle time;
//! 2. **[`search`] (Procedure 2)** — nested `M`-step binary searches over
//!    `V_dd`, `V_ts`, and per-gate widths, relying on the monotonicity of
//!    delay and energy in each variable, `O(M³)` circuit evaluations
//!    total.
//!
//! Also provided, because the paper's evaluation needs them:
//!
//! * [`baseline`] — the Table 1 comparison point: widths + `V_dd`
//!   optimized at a fixed 700 mV threshold;
//! * [`anneal`] — the multiple-pass simulated-annealing optimizer the
//!   heuristic is shown to beat (§5);
//! * [`variation`] — worst-case threshold margining for the
//!   process-fluctuation study of Fig. 2(a);
//! * multi-threshold (`n_v > 1`) operation via
//!   [`SearchOptions::vt_groups`].
//!
//! # Example
//!
//! ```
//! use minpower_core::{Optimizer, Problem};
//! use minpower_device::Technology;
//! use minpower_models::CircuitModel;
//! use minpower_netlist::{GateKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new("demo");
//! b.input("a")?;
//! b.input("b")?;
//! b.gate("x", GateKind::Nand, &["a", "b"])?;
//! b.gate("y", GateKind::Nor, &["x", "b"])?;
//! b.output("y")?;
//! let netlist = b.finish()?;
//!
//! let model = CircuitModel::with_uniform_activity(&netlist, Technology::dac97(), 0.5, 0.3);
//! let problem = Problem::new(model, 300.0e6);
//! let result = Optimizer::new(&problem).run()?;
//! assert!(result.feasible);
//! assert!(result.critical_delay <= problem.cycle_time());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod baseline;
pub mod budget;
pub mod checkpoint;
pub mod context;
mod error;
mod incremental;
pub mod jobstore;
pub mod json;
mod problem;
pub mod report;
mod result;
pub mod runctl;
pub mod search;
pub mod session;
pub mod store;
pub mod tilos;
pub mod variation;
pub mod yield_mc;

pub use checkpoint::{Checkpoint, CheckpointSpec};
pub use context::EvalContext;
pub use error::OptimizeError;
pub use jobstore::{Claim, FsJobStore, JobStore, Lease};
pub use problem::Problem;
pub use result::OptimizationResult;
pub use runctl::{Progress, RunControl, TripReason};
pub use search::{Optimizer, SearchOptions, SizingMethod};
pub use store::StoreHealth;
