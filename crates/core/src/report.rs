//! Human-readable optimization reports.
//!
//! A designer adopting the optimizer needs more than the three headline
//! numbers: where the energy goes, which gates were upsized and why, and
//! how much margin each path retains. This module renders an
//! [`OptimizationResult`] against its [`Problem`] into that report.

use std::fmt::Write as _;

use minpower_models::EnergyBreakdown;
use minpower_netlist::{GateId, GateKind};

use crate::json::{self, Value};
use crate::problem::Problem;
use crate::result::OptimizationResult;

/// Per-gate line of a report, sorted by total energy.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Gate name.
    pub name: String,
    /// Logic function.
    pub kind: GateKind,
    /// Chosen width, feature widths.
    pub width: f64,
    /// Gate delay, seconds.
    pub delay: f64,
    /// Delay budget from Procedure 1, seconds.
    pub budget: f64,
    /// Static + dynamic energy per cycle.
    pub energy: EnergyBreakdown,
    /// Share of the circuit's total energy, in `[0, 1]`.
    pub share: f64,
}

/// A rendered summary of an optimization outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Per-gate details, descending by energy.
    pub gates: Vec<GateReport>,
    /// Total energy.
    pub energy: EnergyBreakdown,
    /// Critical path delay, seconds.
    pub critical_delay: f64,
    /// The cycle time the problem demanded, seconds.
    pub cycle_time: f64,
    /// Total device width (area proxy), feature widths.
    pub total_width: f64,
    /// Number of gates sized at the maximum allowed width.
    pub width_saturated: usize,
}

impl Report {
    /// Builds the report for `result` under `problem`.
    pub fn build(problem: &Problem, result: &OptimizationResult) -> Self {
        let model = problem.model();
        let netlist = model.netlist();
        let eval = model.evaluate(&result.design, problem.fc());
        let total = eval.energy.total().max(1e-300);
        let w_hi = model.technology().w_range.1;
        let mut gates: Vec<GateReport> = netlist
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind() != GateKind::Input)
            .map(|(i, g)| GateReport {
                name: g.name().to_string(),
                kind: g.kind(),
                width: result.design.width[i],
                delay: eval.gates[i].delay,
                budget: result.budgets.get(i).copied().unwrap_or(0.0),
                energy: eval.gates[i].energy,
                share: eval.gates[i].energy.total() / total,
            })
            .collect();
        gates.sort_by(|a, b| {
            b.energy
                .total()
                .partial_cmp(&a.energy.total())
                .expect("energies are finite")
        });
        let width_saturated = gates
            .iter()
            .filter(|g| g.width >= w_hi * (1.0 - 1e-9))
            .count();
        Report {
            energy: eval.energy,
            critical_delay: eval.critical_delay,
            cycle_time: problem.effective_cycle_time(),
            total_width: result.design.total_width(),
            width_saturated,
            gates,
        }
    }

    /// The `n` most energy-hungry gates.
    pub fn top_consumers(&self, n: usize) -> &[GateReport] {
        &self.gates[..n.min(self.gates.len())]
    }

    /// Renders the report as an aligned text table with `top` gate rows.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "energy/cycle: static {:.3e} J + dynamic {:.3e} J = {:.3e} J (balance {:.2})",
            self.energy.static_,
            self.energy.dynamic,
            self.energy.total(),
            self.energy.balance()
        );
        let _ = writeln!(
            out,
            "critical delay {:.3} ns of {:.3} ns budget; total width {:.0} ({} gates at cap)",
            self.critical_delay * 1e9,
            self.cycle_time * 1e9,
            self.total_width,
            self.width_saturated
        );
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>7} {:>9} {:>9} {:>10} {:>6}",
            "gate", "kind", "width", "delay ps", "budget", "energy J", "share"
        );
        for g in self.top_consumers(top) {
            let _ = writeln!(
                out,
                "{:<10} {:>5} {:>7.1} {:>9.1} {:>9.1} {:>10.2e} {:>5.1}%",
                g.name,
                g.kind.to_string(),
                g.width,
                g.delay * 1e12,
                g.budget * 1e12,
                g.energy.total(),
                g.share * 100.0
            );
        }
        out
    }
}

/// Renders `result` under `problem` as the canonical machine-readable
/// result document (`"schema": "minpower-result"`, version 1) shared by
/// the CLI's `--format json` and `minpower-serve`'s job bodies.
///
/// All scalars are plain JSON numbers. Rust's `f64` `Display` prints the
/// shortest string that round-trips, so for finite values the document
/// is *bitwise* faithful: parsing the `design` vectors back (with
/// [`Value::as_number`] / [`Value::as_number_vec`]) reproduces the
/// original `f64`s bit for bit. That property is what lets the service
/// integration tests assert a served result is identical to a direct
/// library run, not merely close. The `top_gates` table carries the
/// `top_gates` highest-energy gates from the [`Report`] (the JSON twin
/// of [`Report::render`]'s rows).
pub fn result_to_json(problem: &Problem, result: &OptimizationResult, top_gates: usize) -> Value {
    let report = Report::build(problem, result);
    let netlist = problem.model().netlist();
    let gates: Vec<Value> = report
        .top_consumers(top_gates)
        .iter()
        .map(|g| {
            Value::Obj(vec![
                ("name".into(), Value::Str(g.name.clone())),
                ("kind".into(), Value::Str(g.kind.to_string())),
                ("width".into(), Value::Float(g.width)),
                ("delay".into(), Value::Float(g.delay)),
                ("budget".into(), Value::Float(g.budget)),
                ("energy".into(), Value::Float(g.energy.total())),
                ("share".into(), Value::Float(g.share)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::Str("minpower-result".into())),
        ("version".into(), Value::Int(1)),
        ("circuit".into(), Value::Str(netlist.name().to_string())),
        (
            "gates".into(),
            Value::Int(netlist.logic_gate_count() as u64),
        ),
        ("feasible".into(), Value::Bool(result.feasible)),
        ("evaluations".into(), Value::Int(result.evaluations as u64)),
        (
            "energy".into(),
            Value::Obj(vec![
                ("static".into(), Value::Float(result.energy.static_)),
                ("dynamic".into(), Value::Float(result.energy.dynamic)),
                ("total".into(), Value::Float(result.energy.total())),
            ]),
        ),
        ("critical_delay".into(), Value::Float(result.critical_delay)),
        ("cycle_time".into(), Value::Float(report.cycle_time)),
        ("total_width".into(), Value::Float(report.total_width)),
        (
            "width_saturated".into(),
            Value::Int(report.width_saturated as u64),
        ),
        (
            "design".into(),
            Value::Obj(vec![
                ("vdd".into(), Value::Float(result.design.vdd)),
                ("vt".into(), json::f64_array(&result.design.vt)),
                ("width".into(), json::f64_array(&result.design.width)),
            ]),
        ),
        ("top_gates".into(), Value::Arr(gates)),
    ])
}

/// Renders the process-wide engine telemetry (evaluation counts, cache
/// hit rate, per-phase wall time), or `None` when nothing has routed
/// through the engine yet. The CLI and the experiment harness append
/// this to their reports.
pub fn engine_summary() -> Option<String> {
    let ctx = crate::context::EvalContext::global();
    let snapshot = ctx.snapshot();
    if snapshot.circuit_evals == 0 {
        return None;
    }
    Some(snapshot.render())
}

/// Identifies the gates of the critical path of `result`'s design, in
/// topological order.
pub fn critical_path(problem: &Problem, result: &OptimizationResult) -> Vec<GateId> {
    let model = problem.model();
    let netlist = model.netlist();
    let eval = model.evaluate(&result.design, problem.fc());
    let end = netlist.outputs().iter().copied().max_by(|a, b| {
        eval.arrival[a.index()]
            .partial_cmp(&eval.arrival[b.index()])
            .expect("arrivals are finite")
    });
    let mut path = Vec::new();
    let mut cur = match end {
        Some(e) => e,
        None => return path,
    };
    loop {
        path.push(cur);
        let next = netlist.gate(cur).fanin().iter().copied().max_by(|a, b| {
            eval.arrival[a.index()]
                .partial_cmp(&eval.arrival[b.index()])
                .expect("arrivals are finite")
        });
        match next {
            Some(f) => cur = f,
            None => break,
        }
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Optimizer;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{Netlist, NetlistBuilder};

    fn netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("u", GateKind::Nand, &["a", "c"]).unwrap();
        b.gate("v", GateKind::Nor, &["u", "c"]).unwrap();
        b.gate("w", GateKind::Nand, &["u", "v"]).unwrap();
        b.gate("y", GateKind::Not, &["w"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    fn optimized() -> (Problem, OptimizationResult) {
        let n = netlist();
        let model = CircuitModel::with_uniform_activity(&n, Technology::dac97(), 0.5, 0.3);
        let p = Problem::new(model, 200.0e6);
        let r = Optimizer::new(&p).run().unwrap();
        (p, r)
    }

    #[test]
    fn report_shares_sum_to_one() {
        let (p, r) = optimized();
        let rep = Report::build(&p, &r);
        let sum: f64 = rep.gates.iter().map(|g| g.share).sum();
        assert!((sum - 1.0).abs() < 1e-9, "share sum = {sum}");
        // Sorted descending.
        for w in rep.gates.windows(2) {
            assert!(w[0].energy.total() >= w[1].energy.total());
        }
    }

    #[test]
    fn report_totals_match_result() {
        let (p, r) = optimized();
        let rep = Report::build(&p, &r);
        assert!((rep.energy.total() - r.energy.total()).abs() < 1e-9 * r.energy.total());
        assert!((rep.critical_delay - r.critical_delay).abs() < 1e-15);
        assert_eq!(rep.total_width, r.design.total_width());
    }

    #[test]
    fn render_contains_every_top_gate() {
        let (p, r) = optimized();
        let rep = Report::build(&p, &r);
        let text = rep.render(3);
        for g in rep.top_consumers(3) {
            assert!(text.contains(&g.name), "missing {}", g.name);
        }
    }

    #[test]
    fn json_round_trips_design_bitwise() {
        let (p, r) = optimized();
        let doc = result_to_json(&p, &r, 3).render();
        let v = crate::json::parse(&doc).unwrap();
        let obj = v.as_obj("result").unwrap();
        assert_eq!(
            obj.req("schema").unwrap().as_str("schema").unwrap(),
            "minpower-result"
        );
        assert_eq!(obj.req("version").unwrap().as_u64("version").unwrap(), 1);
        let design = obj.req("design").unwrap().as_obj("design").unwrap();
        let vdd = design.req("vdd").unwrap().as_number("vdd").unwrap();
        assert_eq!(vdd.to_bits(), r.design.vdd.to_bits());
        let widths = design.req("width").unwrap().as_number_vec("width").unwrap();
        assert_eq!(widths.len(), r.design.width.len());
        for (got, want) in widths.iter().zip(&r.design.width) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        let vts = design.req("vt").unwrap().as_number_vec("vt").unwrap();
        for (got, want) in vts.iter().zip(&r.design.vt) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        let gates = obj.req("top_gates").unwrap().as_arr("top_gates").unwrap();
        assert_eq!(gates.len(), 3);
    }

    #[test]
    fn critical_path_is_a_real_path() {
        let (p, r) = optimized();
        let path = critical_path(&p, &r);
        assert!(!path.is_empty());
        let n = p.model().netlist();
        for pair in path.windows(2) {
            assert!(n.gate(pair[1]).fanin().contains(&pair[0]));
        }
        assert!(n.is_output(*path.last().unwrap()));
        assert!(n.gate(path[0]).fanin().is_empty());
    }
}
