//! Procedure 2: nested binary searches over `V_dd`, `V_ts`, and widths.
//!
//! The paper's key enabling observation (§4.3): *power consumption and
//! delay are monotonic functions of `V_dd`, `V_ts` and `W_i`, individually,
//! other parameters being fixed* — so each variable can be located by
//! bisection instead of grid or random search, giving `O(M³)` full-circuit
//! evaluations for `M`-step searches.
//!
//! Search structure, exactly as the paper's Procedure 2:
//!
//! * outer loop bisects the global supply `V_dd ∈ [0.1, 3.3] V`, moving
//!   **down** whenever the midpoint admits a feasible, improving design
//!   (dynamic energy falls quadratically with `V_dd`);
//! * middle loop bisects the threshold `V_ts ∈ [0.1, 0.7] V`, moving **up**
//!   on improvement (higher threshold kills leakage until the required
//!   width growth makes dynamic energy dominate);
//! * inner loop bisects each gate's width `W ∈ [1, 100]` to the smallest
//!   value meeting that gate's Procedure-1 delay budget.
//!
//! With `n_v > 1` ([`SearchOptions::vt_groups`]), gates are partitioned by
//! budget quantiles (timing-critical gates get the low-`V_t` group) and the
//! middle loop becomes a coordinate descent over group thresholds.

use std::path::PathBuf;
use std::sync::Arc;

use minpower_engine::stats::Phase;
use minpower_models::{CircuitModel, Design, EnergyBreakdown, SizeScratch, SoaKernel};
use minpower_netlist::{GateId, GateKind, Netlist};
use minpower_timing::incremental::{sink_critical, virtual_sinks};

use crate::checkpoint::{Checkpoint, CheckpointSpec};
use crate::context::EvalContext;
use crate::error::OptimizeError;
use crate::incremental::{arrivals_into, IncrementalEval};
use crate::problem::Problem;
use crate::result::OptimizationResult;
use crate::runctl::{RunControl, TripReason};

/// Tuning knobs for [`Optimizer`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOptions {
    /// Binary-search steps `M` per variable (the paper's loop bound).
    pub steps: usize,
    /// Number of distinct threshold voltages `n_v` allowed by the
    /// technology (1 = single global `V_ts`, the paper's practical case).
    pub vt_groups: usize,
    /// Worst-case threshold tolerance as a fraction (e.g. `0.1` = ±10 %):
    /// delays are checked at `V_t(1+tol)`, power is reported at
    /// `V_t(1−tol)` — the margining scheme of the Fig. 2(a) study.
    pub vt_tolerance: f64,
    /// Width-sweep passes per `(V_dd, V_ts)` probe; a second pass lets
    /// each gate see its fanout's final sizes.
    pub width_passes: usize,
    /// How Procedure 1 divides the cycle time among gates (the paper's
    /// fanout-weighted rule by default; `Uniform` for the ablation).
    pub budget_policy: crate::budget::BudgetPolicy,
    /// The inner width-sizing engine: the paper's budget-driven search
    /// (default) or TILOS-style greedy sensitivity sizing, which the
    /// sizing ablation shows extracts substantially lower energy at the
    /// same operating point by leaving non-critical gates at minimum
    /// width.
    pub sizing: SizingMethod,
}

/// Width-sizing engine used inside Procedure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SizingMethod {
    /// The paper's Procedure 1 + 2 pipeline: assign per-gate delay
    /// budgets, then bisect each width to meet its budget.
    #[default]
    Budgeted,
    /// Greedy sensitivity ascent from minimum widths (Fishburn–Dunlop
    /// TILOS; see [`crate::tilos`]).
    Greedy,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            steps: 14,
            vt_groups: 1,
            vt_tolerance: 0.0,
            width_passes: 2,
            budget_policy: crate::budget::BudgetPolicy::FanoutWeighted,
            sizing: SizingMethod::Budgeted,
        }
    }
}

impl SearchOptions {
    fn validate(&self) -> Result<(), OptimizeError> {
        if self.steps == 0 {
            return Err(OptimizeError::BadOption {
                option: "steps",
                message: "must be at least 1".into(),
            });
        }
        if self.vt_groups == 0 {
            return Err(OptimizeError::BadOption {
                option: "vt_groups",
                message: "must be at least 1".into(),
            });
        }
        if !(0.0..1.0).contains(&self.vt_tolerance) {
            return Err(OptimizeError::BadOption {
                option: "vt_tolerance",
                message: "must lie in [0, 1)".into(),
            });
        }
        if self.width_passes == 0 {
            return Err(OptimizeError::BadOption {
                option: "width_passes",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Golden-section minimization of a unimodal function over `[lo, hi]`
/// with a fixed probe budget. The function may return `f64::INFINITY` on
/// an infeasible plateau at one end of the bracket; `prefer_high_on_tie`
/// selects which way the bracket shrinks when the two probes tie (point
/// it *away* from the plateau).
pub(crate) fn golden_section(
    lo: f64,
    hi: f64,
    probes: usize,
    prefer_high_on_tie: bool,
    mut f: impl FnMut(f64) -> f64,
) {
    const PHI: f64 = 0.618_033_988_749_894_8;
    if probes == 0 {
        return;
    }
    if probes == 1 {
        let _ = f(0.5 * (lo + hi));
        return;
    }
    let mut a = lo;
    let mut b = hi;
    let mut x1 = b - PHI * (b - a);
    let mut x2 = a + PHI * (b - a);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut used = 2;
    while used < probes {
        let keep_low = if f1 == f2 {
            !prefer_high_on_tie
        } else {
            f1 < f2
        };
        if keep_low {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - PHI * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + PHI * (b - a);
            f2 = f(x2);
        }
        used += 1;
    }
}

/// Budget derating applied by the width bisection: each gate is sized to
/// meet `budget × MARGIN`, absorbing the load-coupling slack the
/// fixed-point sweeps leave behind.
const MARGIN: f64 = 0.97;

/// Outcome of sizing all widths at one `(V_dd, V_ts)` probe.
#[derive(Debug, Clone)]
pub(crate) struct Sized {
    pub design: Design,
    pub energy: EnergyBreakdown,
    pub critical_delay: f64,
    pub feasible: bool,
}

/// Shared width-sizing engine (the innermost loop), also used by the
/// fixed-`V_t` baseline and the variation study.
#[derive(Debug)]
pub(crate) struct Sizer<'a> {
    problem: &'a Problem,
    pub budgets: Vec<f64>,
    steps: usize,
    width_passes: usize,
    vt_tolerance: f64,
    sizing: SizingMethod,
    ctx: Arc<EvalContext>,
    salt: u64,
    /// Levelized SoA evaluation kernel for the width sweeps, built once
    /// per sizer when the context enables it. `None` routes every sweep
    /// through the scalar gate-by-gate path.
    soa: Option<SoaKernel>,
}

impl<'a> Sizer<'a> {
    pub fn new(
        problem: &'a Problem,
        steps: usize,
        width_passes: usize,
        vt_tolerance: f64,
        policy: crate::budget::BudgetPolicy,
        sizing: SizingMethod,
    ) -> Self {
        Sizer::with_context(
            EvalContext::global(),
            problem,
            steps,
            width_passes,
            vt_tolerance,
            policy,
            sizing,
        )
    }

    pub fn with_context(
        ctx: Arc<EvalContext>,
        problem: &'a Problem,
        steps: usize,
        width_passes: usize,
        vt_tolerance: f64,
        policy: crate::budget::BudgetPolicy,
        sizing: SizingMethod,
    ) -> Self {
        let budgets = crate::budget::assign_max_delays_with_policy(
            problem.model().netlist(),
            problem.effective_cycle_time(),
            policy,
        );
        let salt =
            crate::context::probe_salt(problem, steps, width_passes, vt_tolerance, policy, sizing);
        let soa = (ctx.soa() && sizing == SizingMethod::Budgeted)
            .then(|| SoaKernel::new(problem.model()));
        Sizer {
            problem,
            budgets,
            steps,
            width_passes,
            vt_tolerance,
            sizing,
            ctx,
            salt,
            soa,
        }
    }

    /// The telemetry sink of the engine this sizer evaluates through.
    pub fn stats(&self) -> &minpower_engine::EngineStats {
        self.ctx.stats()
    }

    /// Sizes at `(vdd, vt_nominal)`, routing through the evaluation
    /// engine: the probe is counted, memoized when the cache is on, and a
    /// hit is returned only for a bit-identical operating point.
    pub fn size(&self, vdd: f64, vt_nominal: &[f64]) -> Sized {
        self.ctx
            .probe(self.salt, vdd, vt_nominal, &self.budgets, || {
                // Attribute the actual sizing work (cache hits are free).
                self.ctx
                    .stats()
                    .time(Phase::Sizing, || self.size_uncached(vdd, vt_nominal))
            })
    }

    /// Greedy (TILOS) sizing path: size at the slow corner, report
    /// energy at the leaky corner.
    fn size_greedy(&self, vdd: f64, vt_nominal: &[f64]) -> Sized {
        let model = self.problem.model();
        let vt_slow: Vec<f64> = vt_nominal
            .iter()
            .map(|v| v * (1.0 + self.vt_tolerance))
            .collect();
        let vt_leaky: Vec<f64> = vt_nominal
            .iter()
            .map(|v| v * (1.0 - self.vt_tolerance))
            .collect();
        match crate::tilos::size_greedy_with_stats(
            self.problem,
            vdd,
            &vt_slow,
            crate::tilos::TilosOptions {
                incremental: self.ctx.incremental(),
                ..crate::tilos::TilosOptions::default()
            },
            self.ctx.stats().clone(),
        ) {
            Ok(r) => {
                let energy_design = Design {
                    vdd,
                    vt: vt_leaky,
                    width: r.design.width.clone(),
                };
                let energy = model.total_energy(&energy_design, self.problem.fc());
                let mut design = r.design;
                design.vt = vt_nominal.to_vec();
                Sized {
                    design,
                    energy,
                    critical_delay: r.critical_delay,
                    feasible: r.feasible,
                }
            }
            Err(e) => {
                let n = model.netlist().gate_count();
                let design = Design {
                    vdd,
                    vt: vt_nominal.to_vec(),
                    width: vec![model.technology().w_range.1; n],
                };
                let energy = model.total_energy(&design, self.problem.fc());
                let critical_delay = match e {
                    crate::OptimizeError::Infeasible { best_delay, .. } => best_delay,
                    _ => f64::INFINITY,
                };
                Sized {
                    design,
                    energy,
                    critical_delay,
                    feasible: false,
                }
            }
        }
    }

    /// Sizes every gate's width to the minimum meeting its budget at the
    /// given supply and per-gate nominal thresholds, then evaluates
    /// feasibility (worst-case-slow thresholds) and energy
    /// (worst-case-leaky thresholds).
    fn size_uncached(&self, vdd: f64, vt_nominal: &[f64]) -> Sized {
        if self.sizing == SizingMethod::Greedy {
            return self.size_greedy(vdd, vt_nominal);
        }
        let model = self.problem.model();
        let netlist = model.netlist();
        let tech = model.technology();
        let n = netlist.gate_count();
        debug_assert_eq!(vt_nominal.len(), n);

        let vt_slow: Vec<f64> = vt_nominal
            .iter()
            .map(|v| v * (1.0 + self.vt_tolerance))
            .collect();
        let vt_leaky: Vec<f64> = vt_nominal
            .iter()
            .map(|v| v * (1.0 - self.vt_tolerance))
            .collect();

        // All sizing decisions are made against the slow corner.
        let mut design = Design {
            vdd,
            vt: vt_slow,
            width: vec![tech.w_range.0; n],
        };

        // Fixed-point sweeps over the load coupling: each sweep re-sizes
        // every gate against the sinks' current widths, with the
        // slope-term input taken as the *lesser* of the driver's budget
        // (the compositional contract) and its actual delay from the
        // previous sweep (so drivers that run well inside their budgets
        // don't force pessimistic downstream sizing). Delays are
        // recomputed self-consistently between sweeps (Jacobi style),
        // which keeps the iteration stable; stop when widths settle.
        //
        // The sweep itself runs on either the batched SoA kernel or the
        // scalar gate-by-gate loop — bit-identical by contract, and
        // cross-checked against each other per sweep in debug builds.
        let max_sweeps = self.width_passes.max(2) + 10;
        let mut last_delays = self.budgets.clone();
        let mut sweep_delays = Vec::new();
        let mut scratch = self.soa.as_ref().map(|_| SizeScratch::new());
        for _sweep in 0..max_sweeps {
            let max_rel_change = match (&self.soa, &mut scratch) {
                (Some(kernel), Some(scratch)) => {
                    #[cfg(debug_assertions)]
                    let reference = {
                        let mut scalar = design.clone();
                        let rel = self.scalar_size_sweep(&mut scalar, &last_delays);
                        (scalar, rel)
                    };
                    let rel = kernel.size_sweep(
                        &mut design,
                        &self.budgets,
                        &last_delays,
                        self.steps,
                        MARGIN,
                        scratch,
                    );
                    #[cfg(debug_assertions)]
                    {
                        assert_eq!(
                            rel.to_bits(),
                            reference.1.to_bits(),
                            "batched SoA sweep: relative width change diverged from scalar"
                        );
                        for (i, (b, s)) in design
                            .width
                            .iter()
                            .zip(reference.0.width.iter())
                            .enumerate()
                        {
                            assert_eq!(
                                b.to_bits(),
                                s.to_bits(),
                                "batched SoA sweep diverged from scalar at gate {i}"
                            );
                        }
                    }
                    rel
                }
                _ => self.scalar_size_sweep(&mut design, &last_delays),
            };
            match &self.soa {
                Some(kernel) => kernel.delays_into(&design, &mut sweep_delays),
                None => model.delays_into(&design, &mut sweep_delays),
            }
            std::mem::swap(&mut last_delays, &mut sweep_delays);
            self.ctx.stats().count_sta(1);
            if max_rel_change < 0.005 {
                break;
            }
        }

        // Post-processing (paper §4.2, last paragraph): the
        // fanout-proportional budgets can starve individual gates — most
        // visibly stack-heavy gates fed by loose-budget drivers — leaving
        // the critical path slightly over the cycle time even though
        // overall slack exists. Repair by sensitivity-driven upsizing
        // along the critical path until the cycle time is met (or no move
        // helps). The incremental path maintains persistent arrival /
        // delay / energy state and touches only the affected cone per
        // move; both paths are bit-identical (every delta layer stops
        // propagation on bitwise change only).
        let sinks = virtual_sinks(netlist);
        let (mut design, critical, energy) = if self.ctx.incremental() {
            self.repair_and_eval_incremental(design, last_delays, &sinks, vt_leaky)
        } else {
            self.repair_and_eval_full(design, last_delays, &sinks, vt_leaky)
        };

        // Feasibility is the problem's real constraint — every path meets
        // the cycle time — not the per-gate budgets, which are only the
        // heuristic's sizing guides (the paper's post-processing likewise
        // relaxes individual assignments that turn out unrealizable).
        let feasible = critical <= self.problem.effective_cycle_time() * (1.0 + 1e-9);

        // Report the nominal-threshold design.
        design.vt = vt_nominal.to_vec();
        Sized {
            design,
            energy,
            critical_delay: critical,
            feasible,
        }
    }

    /// One scalar width-sizing sweep: contract-based sizing, gate by gate
    /// in topological order. Each gate is sized so its delay meets a
    /// slightly derated budget **assuming its drivers run at exactly
    /// their own budgets** (the slope-term input of Eq. A3). By induction
    /// along the topological order, if every gate meets its contract then
    /// every actual delay is within its budget — the sizing decouples
    /// from the iterative delay values and only the load coupling (sink
    /// widths) remains, which the fixed-point sweeps resolve.
    ///
    /// Reference semantics for [`SoaKernel::size_sweep`], which batches
    /// the same bisection level by level; the two are bit-identical (the
    /// debug cross-check in [`Self::size_uncached`] enforces it).
    fn scalar_size_sweep(&self, design: &mut Design, last_delays: &[f64]) -> f64 {
        let model = self.problem.model();
        let netlist = model.netlist();
        let (w_lo, w_hi) = model.technology().w_range;
        let search_width = |design: &mut Design, i: usize, max_fanin: f64| {
            let id = minpower_netlist::GateId::new(i);
            let target = self.budgets[i] * MARGIN;
            let mut lo = w_lo;
            let mut hi = w_hi;
            let mut feasible_w = None;
            for _ in 0..self.steps {
                let w = 0.5 * (lo + hi);
                design.width[i] = w;
                let t = model.gate_delay(design, id, max_fanin);
                if t <= target {
                    feasible_w = Some(w);
                    hi = w;
                } else {
                    lo = w;
                }
            }
            // Try the extreme ends the bisection never lands on.
            design.width[i] = w_lo;
            if model.gate_delay(design, id, max_fanin) <= target {
                feasible_w = Some(w_lo);
            }
            design.width[i] = feasible_w.unwrap_or(w_hi);
        };
        let mut max_rel_change = 0.0f64;
        for &id in netlist.topological_order() {
            let i = id.index();
            if netlist.gate(id).kind() == GateKind::Input {
                continue;
            }
            let max_fanin = netlist
                .gate(id)
                .fanin()
                .iter()
                .map(|f| {
                    let j = f.index();
                    self.budgets[j].min(last_delays[j] * 1.05)
                })
                .fold(0.0, f64::max);
            let before = design.width[i];
            search_width(design, i, max_fanin);
            let rel = (design.width[i] - before).abs() / before.max(w_lo);
            max_rel_change = max_rel_change.max(rel);
        }
        max_rel_change
    }

    /// The repair loop + final evaluation on dense recomputation: a full
    /// delay pass and a full arrival pass per probed move. Reference
    /// semantics for [`Self::repair_and_eval_incremental`].
    fn repair_and_eval_full(
        &self,
        mut design: Design,
        mut delays: Vec<f64>,
        sinks: &[u32],
        vt_leaky: Vec<f64>,
    ) -> (Design, f64, EnergyBreakdown) {
        let model = self.problem.model();
        let netlist = model.netlist();
        let n = netlist.gate_count();
        let w_hi = model.technology().w_range.1;
        let tc = self.problem.effective_cycle_time();
        let mut blocked = vec![false; n];
        let mut arrival = Vec::new();
        let mut trial_delays = Vec::new();
        let mut trial_arrival = Vec::new();
        for _ in 0..200 {
            arrivals_into(netlist, &delays, &mut arrival);
            let (crit, crit_gate) = sink_critical(sinks, &arrival);
            if crit <= tc {
                break;
            }
            let Some(cg) = crit_gate else { break };
            let best = best_upsize_move(
                model,
                netlist,
                &mut design,
                &delays,
                &arrival,
                &blocked,
                cg,
                w_hi,
            );
            match best {
                Some((i, w_new, _)) => {
                    let w_old = design.width[i];
                    design.width[i] = w_new;
                    model.delays_into(&design, &mut trial_delays);
                    self.ctx.stats().count_sta(1);
                    // Revert moves that backfire through driver loading.
                    arrivals_into(netlist, &trial_delays, &mut trial_arrival);
                    let new_crit = sink_critical(sinks, &trial_arrival).0;
                    if new_crit < crit {
                        std::mem::swap(&mut delays, &mut trial_delays);
                    } else {
                        design.width[i] = w_old;
                        blocked[i] = true;
                    }
                }
                None => break,
            }
        }
        arrivals_into(netlist, &delays, &mut arrival);
        let critical = sink_critical(sinks, &arrival).0;

        // Energy at the leaky corner (equals nominal when tolerance = 0).
        let energy_design = Design {
            vdd: design.vdd,
            vt: vt_leaky,
            width: design.width.clone(),
        };
        let energy = model.total_energy(&energy_design, self.problem.fc());
        (design, critical, energy)
    }

    /// The repair loop + final evaluation on the incremental layers:
    /// per-move cost is O(cone) — journaled delay repair, dirty-worklist
    /// arrival propagation, delta-maintained leaky-corner energy terms —
    /// with rejected moves reverted from the journals instead of
    /// recomputed. Bit-identical to [`Self::repair_and_eval_full`].
    fn repair_and_eval_incremental(
        &self,
        design: Design,
        delays: Vec<f64>,
        sinks: &[u32],
        vt_leaky: Vec<f64>,
    ) -> (Design, f64, EnergyBreakdown) {
        let model = self.problem.model();
        let netlist = model.netlist();
        let n = netlist.gate_count();
        let w_hi = model.technology().w_range.1;
        let tc = self.problem.effective_cycle_time();
        let fc = self.problem.fc();
        let mut energy_design = Design {
            vdd: design.vdd,
            vt: vt_leaky,
            width: design.width.clone(),
        };
        let mut eval = IncrementalEval::new(model, design, delays, tc, self.ctx.stats().clone());
        let mut ledger = model.energy_ledger(&energy_design, fc);
        let mut blocked = vec![false; n];
        for _ in 0..200 {
            let (crit, crit_gate) = sink_critical(sinks, eval.arrivals());
            if crit <= tc {
                break;
            }
            let Some(cg) = crit_gate else { break };
            let best = {
                let (design, delays, arrival) = eval.split();
                best_upsize_move(model, netlist, design, delays, arrival, &blocked, cg, w_hi)
            };
            match best {
                Some((i, w_new, _)) => {
                    eval.try_width(i, w_new);
                    let new_crit = sink_critical(sinks, eval.arrivals()).0;
                    if new_crit < crit {
                        eval.accept();
                        energy_design.width[i] = eval.design().width[i];
                        ledger.on_width_change(model, &energy_design, GateId::new(i));
                    } else {
                        eval.revert();
                        blocked[i] = true;
                    }
                }
                None => break,
            }
        }
        let critical = sink_critical(sinks, eval.arrivals()).0;
        // Ordered re-sum of the per-gate terms: bitwise what
        // `total_energy` computes over the same design.
        let energy = ledger.exact_total();
        (eval.into_design(), critical, energy)
    }
}

/// Walks the critical path from `crit_gate` toward the primary inputs and
/// returns the most effective upsize `(gate, new_width, gain)`: the
/// largest single-gate delay reduction from a 1.3× width step, probing
/// each candidate in place. Shared verbatim by the full and incremental
/// repair loops so both make identical decisions from identical values.
#[allow(clippy::too_many_arguments)]
fn best_upsize_move(
    model: &CircuitModel,
    netlist: &Netlist,
    design: &mut Design,
    delays: &[f64],
    arrival: &[f64],
    blocked: &[bool],
    crit_gate: GateId,
    w_hi: f64,
) -> Option<(usize, f64, f64)> {
    let mut best: Option<(usize, f64, f64)> = None; // (gate, new_w, gain)
    let mut cur = crit_gate;
    loop {
        let i = cur.index();
        let g = netlist.gate(cur);
        if !g.fanin().is_empty() && !blocked[i] && design.width[i] < w_hi {
            let w_old = design.width[i];
            let w_new = (w_old * 1.3).min(w_hi);
            let max_fanin = model.max_fanin_delay(delays, i);
            let t_old = delays[i];
            design.width[i] = w_new;
            let t_new = model.gate_delay(design, cur, max_fanin);
            design.width[i] = w_old;
            let gain = t_old - t_new;
            if gain > 0.0 && best.is_none_or(|(_, _, b)| gain > b) {
                best = Some((i, w_new, gain));
            }
        }
        match g.fanin().iter().max_by(|a, b| {
            arrival[a.index()]
                .partial_cmp(&arrival[b.index()])
                .expect("arrivals are finite")
        }) {
            Some(&f) => cur = f,
            None => break,
        }
    }
    best
}

/// Sizes every gate's width at a **fixed** operating point `(vdd, vt)`,
/// returning the same record as a full optimization.
///
/// This is the innermost stage of Procedure 2 run standalone — useful for
/// design-space exploration (plotting energy/feasibility over a
/// `V_dd × V_ts` grid, as in the paper's §3 discussion) and for ablation
/// studies.
///
/// # Errors
///
/// [`OptimizeError::EmptyNetwork`] or [`OptimizeError::BadOption`] on
/// invalid inputs. An infeasible operating point is **not** an error: the
/// result's `feasible` flag reports it, so grids can include the
/// infeasible region.
pub fn size_at(
    problem: &Problem,
    vdd: f64,
    vt: f64,
    options: &SearchOptions,
) -> Result<OptimizationResult, OptimizeError> {
    size_at_with(EvalContext::global(), problem, vdd, vt, options)
}

/// [`size_at`] on an explicit [`EvalContext`] — how benches and tests pin
/// the thread count, the cache, or the incremental/full evaluation path
/// without touching the process-wide context.
///
/// # Errors
///
/// Same failure modes as [`size_at`].
pub fn size_at_with(
    ctx: Arc<EvalContext>,
    problem: &Problem,
    vdd: f64,
    vt: f64,
    options: &SearchOptions,
) -> Result<OptimizationResult, OptimizeError> {
    options.validate()?;
    problem.validate()?;
    if problem.model().netlist().logic_gate_count() == 0 {
        return Err(OptimizeError::EmptyNetwork);
    }
    let sizer = Sizer::with_context(
        ctx,
        problem,
        options.steps,
        options.width_passes,
        options.vt_tolerance,
        options.budget_policy,
        options.sizing,
    );
    let n = problem.model().netlist().gate_count();
    let sized = sizer.size(vdd, &vec![vt; n]);
    Ok(OptimizationResult {
        design: sized.design,
        energy: sized.energy,
        critical_delay: sized.critical_delay,
        feasible: sized.feasible,
        evaluations: 1,
        budgets: sizer.budgets,
    })
}

/// The Procedure 1 + Procedure 2 optimizer.
///
/// See the [module documentation](self) for the search structure and the
/// crate example for usage.
#[derive(Debug)]
pub struct Optimizer<'a> {
    problem: &'a Problem,
    options: SearchOptions,
    engine: Arc<EvalContext>,
    run_control: RunControl,
    checkpoint: Option<CheckpointSpec>,
    resume: Option<PathBuf>,
}

/// Bookkeeping for periodic checkpoint writes during a run.
struct CpState {
    last_write: usize,
    error: Option<OptimizeError>,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer with default options, evaluating through the
    /// process-wide [`EvalContext`].
    pub fn new(problem: &'a Problem) -> Self {
        Optimizer {
            problem,
            options: SearchOptions::default(),
            engine: EvalContext::global(),
            run_control: RunControl::new(),
            checkpoint: None,
            resume: None,
        }
    }

    /// Replaces the search options.
    pub fn with_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// Routes this run's evaluations through `engine` instead of the
    /// process-wide context — how tests pin the thread count or compare
    /// cache-on against cache-off runs.
    pub fn with_engine(mut self, engine: Arc<EvalContext>) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches a run control: the search polls it once per probe and, on
    /// a trip, stops cleanly with [`OptimizeError::Interrupted`] carrying
    /// the best feasible design found so far.
    pub fn with_run_control(mut self, control: RunControl) -> Self {
        self.run_control = control;
        self
    }

    /// Periodically snapshots the run's probe journal to `spec.path`
    /// (atomically), plus a final snapshot on interruption and on
    /// completion. The snapshot can be fed back through
    /// [`resume_from`](Self::resume_from).
    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Resumes from a checkpoint written by
    /// [`with_checkpoint`](Self::with_checkpoint): the journaled probes
    /// preload the evaluation cache and the deterministic search replays
    /// to exactly the state it was interrupted in, then continues — the
    /// final result is bit-identical to an uninterrupted run's. The
    /// checkpoint must come from the same problem and options (validated
    /// by fingerprint).
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Writes a checkpoint if one is due (or `force`d), folding any I/O
    /// failure into `cp` for the caller to surface once.
    fn maybe_checkpoint(
        &self,
        sizer: &Sizer<'_>,
        evaluations: usize,
        cp: &mut CpState,
        force: bool,
    ) {
        let Some(spec) = &self.checkpoint else { return };
        if cp.error.is_some() {
            return;
        }
        let due = evaluations.saturating_sub(cp.last_write) >= spec.every.max(1);
        if !(due || (force && evaluations != cp.last_write)) {
            return;
        }
        let (mut budgets, probes) = self.engine.probe_journal();
        if budgets.is_empty() {
            budgets = sizer.budgets.clone();
        }
        let snapshot = Checkpoint::Search {
            salt: sizer.salt,
            evaluations,
            budgets,
            probes,
        };
        match snapshot.save_report(&spec.path) {
            Ok(report) => {
                self.engine.stats().count_checkpoint();
                self.engine.stats().count_store_write(report.retries);
                if let Some(health) = &spec.health {
                    health.report_success();
                }
                cp.last_write = evaluations;
            }
            Err(e) => {
                if let Some(health) = &spec.health {
                    health.report_failure(&e.to_string());
                }
                if spec.required {
                    cp.error = Some(e);
                } else {
                    // Best-effort policy: the run continues without this
                    // snapshot. Advancing the watermark throttles
                    // re-attempts to the normal cadence — and a later
                    // success un-latches `health`.
                    cp.last_write = evaluations;
                }
            }
        }
    }

    /// Runs the full joint optimization.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::EmptyNetwork`] for gate-free networks,
    /// [`OptimizeError::BadOption`] for invalid options, and
    /// [`OptimizeError::Infeasible`] when no probed operating point meets
    /// the cycle time (the error carries the best delay achieved).
    pub fn run(&self) -> Result<OptimizationResult, OptimizeError> {
        let stats = self.engine.stats().clone();
        stats.time(Phase::Search, || self.run_inner())
    }

    fn run_inner(&self) -> Result<OptimizationResult, OptimizeError> {
        self.options.validate()?;
        self.problem.validate()?;
        let model = self.problem.model();
        if model.netlist().logic_gate_count() == 0 {
            return Err(OptimizeError::EmptyNetwork);
        }
        let tech = model.technology().clone();
        let sizer = Sizer::with_context(
            self.engine.clone(),
            self.problem,
            self.options.steps,
            self.options.width_passes,
            self.options.vt_tolerance,
            self.options.budget_policy,
            self.options.sizing,
        );
        if self.checkpoint.is_some() {
            self.engine.enable_probe_journal();
        }
        if let Some(path) = &self.resume {
            match Checkpoint::load(path)? {
                Checkpoint::Search {
                    salt,
                    budgets,
                    probes,
                    ..
                } => {
                    if salt != sizer.salt {
                        return Err(OptimizeError::Checkpoint {
                            message: format!(
                                "{} was taken for a different problem or option set \
                                 (fingerprint mismatch)",
                                path.display()
                            ),
                        });
                    }
                    self.engine.preload_probes(salt, &budgets, &probes);
                }
                other => {
                    return Err(OptimizeError::Checkpoint {
                        message: format!(
                            "{} is an `{}` checkpoint, not a search checkpoint",
                            path.display(),
                            other.engine()
                        ),
                    });
                }
            }
        }
        let n = model.netlist().gate_count();
        let m = self.options.steps;

        let mut best: Option<Sized> = None;
        let mut best_delay_seen = f64::INFINITY;
        let mut evaluations = 0usize;
        let mut cp = CpState {
            last_write: 0,
            error: None,
        };
        let mut tripped: Option<TripReason> = None;

        {
            // Outer search over the global supply. Energy at the
            // per-supply-optimal threshold is unimodal in V_dd (quadratic
            // dynamic gain downward until the feasibility cliff), so a
            // golden-section bracket with the paper's M probes locates the
            // minimum regardless of which side of the first midpoint it
            // falls on (the literal one-sided rule of Procedure 2 can get
            // stuck above interior optima; see DESIGN.md). Ties — notably
            // the infeasible plateau at low supply — resolve upward.
            let (v_lo, v_hi) = tech.vdd_range;
            golden_section(v_lo, v_hi, m, true, |vdd| {
                if tripped.is_some() {
                    return f64::INFINITY;
                }
                let candidate = if self.options.vt_groups <= 1 {
                    self.search_single_vt(
                        &sizer,
                        vdd,
                        &tech,
                        n,
                        &mut evaluations,
                        &mut best_delay_seen,
                        &mut cp,
                        &mut tripped,
                    )
                } else {
                    self.search_grouped_vt(
                        &sizer,
                        vdd,
                        &tech,
                        n,
                        &mut evaluations,
                        &mut best_delay_seen,
                        &mut cp,
                        &mut tripped,
                    )
                };
                // A NaN energy (broken device model, injected fault) must
                // never become the returned optimum: treat it exactly like
                // an infeasible probe.
                let e = match &candidate {
                    Some(c) if c.feasible && c.energy.total().is_finite() => c.energy.total(),
                    _ => f64::INFINITY,
                };
                if let Some(c) = candidate {
                    if c.feasible
                        && c.energy.total().is_finite()
                        && best
                            .as_ref()
                            .is_none_or(|b| c.energy.total() < b.energy.total())
                    {
                        best = Some(c);
                    }
                }
                e
            });
        }

        if let Some(e) = cp.error {
            return Err(e);
        }
        if let Some(reason) = tripped {
            self.engine.stats().count_deadline_trip();
            // Best-effort final snapshot so `--resume` can pick up right
            // here; the partial result matters more than a failed write.
            self.maybe_checkpoint(&sizer, evaluations, &mut cp, true);
            let best_so_far = best.map(|sized| {
                Box::new(OptimizationResult {
                    design: sized.design,
                    energy: sized.energy,
                    critical_delay: sized.critical_delay,
                    feasible: sized.feasible,
                    evaluations,
                    budgets: sizer.budgets.clone(),
                })
            });
            return Err(OptimizeError::Interrupted {
                reason,
                best_so_far,
                progress: self.run_control.progress(evaluations),
            });
        }

        match best {
            Some(sized) => {
                // Final snapshot: resuming a *completed* run replays to the
                // same result from cache alone.
                self.maybe_checkpoint(&sizer, evaluations, &mut cp, true);
                if let Some(e) = cp.error {
                    return Err(e);
                }
                Ok(OptimizationResult {
                    design: sized.design,
                    energy: sized.energy,
                    critical_delay: sized.critical_delay,
                    feasible: sized.feasible,
                    evaluations,
                    budgets: sizer.budgets,
                })
            }
            None => Err(OptimizeError::Infeasible {
                cycle_time: self.problem.effective_cycle_time(),
                best_delay: best_delay_seen,
            }),
        }
    }

    /// Middle loop for a single global threshold (`n_v = 1`):
    /// golden-section search over `V_ts`. The energy is U-shaped in the
    /// threshold (exponential leakage below, width blow-up above, an
    /// infeasible plateau at the very top); ties resolve downward, toward
    /// the always-feasible low-threshold side.
    #[allow(clippy::too_many_arguments)]
    fn search_single_vt(
        &self,
        sizer: &Sizer<'_>,
        vdd: f64,
        tech: &minpower_device::Technology,
        n: usize,
        evaluations: &mut usize,
        best_delay_seen: &mut f64,
        cp: &mut CpState,
        tripped: &mut Option<TripReason>,
    ) -> Option<Sized> {
        let m = self.options.steps;
        let (t_lo, t_hi) = tech.vt_range;
        let mut local_best: Option<Sized> = None;
        golden_section(t_lo, t_hi, m, false, |vt| {
            if tripped.is_none() {
                *tripped = self.run_control.trip();
            }
            if tripped.is_some() {
                return f64::INFINITY;
            }
            let sized = sizer.size(vdd, &vec![vt; n]);
            *evaluations += 1;
            self.maybe_checkpoint(sizer, *evaluations, cp, false);
            if sized.critical_delay.is_finite() {
                *best_delay_seen = best_delay_seen.min(sized.critical_delay);
            }
            let e = if sized.feasible && sized.energy.total().is_finite() {
                sized.energy.total()
            } else {
                f64::INFINITY
            };
            if sized.feasible
                && sized.energy.total().is_finite()
                && local_best
                    .as_ref()
                    .is_none_or(|b| sized.energy.total() < b.energy.total())
            {
                local_best = Some(sized);
            }
            e
        });
        local_best
    }

    /// Middle loop for `n_v > 1`: coordinate descent over group
    /// thresholds, seeded from the single-threshold optimum (so the
    /// multi-`V_t` result can only match or improve on `n_v = 1`), groups
    /// formed by budget quantiles.
    #[allow(clippy::too_many_arguments)]
    fn search_grouped_vt(
        &self,
        sizer: &Sizer<'_>,
        vdd: f64,
        tech: &minpower_device::Technology,
        n: usize,
        evaluations: &mut usize,
        best_delay_seen: &mut f64,
        cp: &mut CpState,
        tripped: &mut Option<TripReason>,
    ) -> Option<Sized> {
        let m = self.options.steps;
        let groups = self.options.vt_groups;
        let netlist = self.problem.model().netlist();

        // Rank logic gates by budget: tightest budgets → group 0 (lowest
        // V_t, fastest), loosest → last group (highest V_t, least leaky).
        let mut logic: Vec<usize> = (0..n)
            .filter(|&i| netlist.gate(minpower_netlist::GateId::new(i)).kind() != GateKind::Input)
            .collect();
        logic.sort_by(|&a, &b| {
            sizer.budgets[a]
                .partial_cmp(&sizer.budgets[b])
                .expect("budgets are finite")
        });
        let mut group_of = vec![0usize; n];
        for (rank, &i) in logic.iter().enumerate() {
            group_of[i] = rank * groups / logic.len().max(1);
        }

        let (t_min, t_max) = tech.vt_range;
        // Seed with the single-threshold optimum at this supply: the
        // coordinate descent then refines per group and can only improve.
        let seed = self.search_single_vt(
            sizer,
            vdd,
            tech,
            n,
            evaluations,
            best_delay_seen,
            cp,
            tripped,
        );
        if tripped.is_some() {
            return seed;
        }
        let seed_vt = seed
            .as_ref()
            .and_then(|s| {
                s.design
                    .vt
                    .iter()
                    .zip(sizer.budgets.iter())
                    .find(|&(_, &b)| b > 0.0)
                    .map(|(&v, _)| v)
            })
            .unwrap_or(0.5 * (t_min + t_max));
        let mut group_vt = vec![seed_vt; groups];
        let mut local_best: Option<Sized> = seed;
        let assemble = |group_vt: &[f64], group_of: &[usize]| -> Vec<f64> {
            (0..n).map(|i| group_vt[group_of[i]]).collect()
        };
        'rounds: for _round in 0..2 {
            for g in 0..groups {
                let mut lo = t_min;
                let mut hi = t_max;
                for _ in 0..m / 2 + 1 {
                    if tripped.is_none() {
                        *tripped = self.run_control.trip();
                    }
                    if tripped.is_some() {
                        break 'rounds;
                    }
                    let vt = 0.5 * (lo + hi);
                    let mut trial_vt = group_vt.clone();
                    trial_vt[g] = vt;
                    let sized = sizer.size(vdd, &assemble(&trial_vt, &group_of));
                    *evaluations += 1;
                    self.maybe_checkpoint(sizer, *evaluations, cp, false);
                    if sized.critical_delay.is_finite() {
                        *best_delay_seen = best_delay_seen.min(sized.critical_delay);
                    }
                    let improved = sized.feasible
                        && sized.energy.total().is_finite()
                        && local_best
                            .as_ref()
                            .is_none_or(|b| sized.energy.total() < b.energy.total());
                    if improved {
                        group_vt[g] = vt;
                        local_best = Some(sized);
                        lo = vt;
                    } else if vt > group_vt[g] {
                        hi = vt;
                    } else {
                        lo = vt;
                    }
                }
            }
        }
        local_best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpower_device::Technology;
    use minpower_models::CircuitModel;
    use minpower_netlist::{Netlist, NetlistBuilder};

    fn ripple(bits: usize) -> Netlist {
        // A small ripple structure: carries chain through NAND pairs.
        let mut b = NetlistBuilder::new("ripple");
        b.input("c0").unwrap();
        for i in 0..bits {
            b.input(&format!("a{i}")).unwrap();
            b.input(&format!("b{i}")).unwrap();
        }
        let mut carry = "c0".to_string();
        for i in 0..bits {
            let g = format!("g{i}");
            let p = format!("p{i}");
            let c = format!("c{}", i + 1);
            b.gate(&g, GateKind::Nand, &[&format!("a{i}"), &format!("b{i}")])
                .unwrap();
            b.gate(&p, GateKind::Xor, &[&format!("a{i}"), &format!("b{i}")])
                .unwrap();
            let t = format!("t{i}");
            b.gate(&t, GateKind::Nand, &[&p, &carry]).unwrap();
            b.gate(&c, GateKind::Nand, &[&t, &g]).unwrap();
            let s = format!("s{i}");
            b.gate(&s, GateKind::Xor, &[&p, &carry]).unwrap();
            b.output(&s).unwrap();
            carry = c;
        }
        b.output(&carry).unwrap();
        b.finish().unwrap()
    }

    fn problem(netlist: &Netlist, fc: f64) -> Problem {
        let model = CircuitModel::with_uniform_activity(netlist, Technology::dac97(), 0.5, 0.3);
        Problem::new(model, fc)
    }

    #[test]
    fn optimizer_finds_feasible_low_energy_design() {
        let n = ripple(4);
        let p = problem(&n, 100.0e6);
        let r = Optimizer::new(&p).run().unwrap();
        assert!(r.feasible);
        assert!(r.critical_delay <= p.cycle_time() * (1.0 + 1e-9));
        // The optimizer should exploit the slack: supply well below 3.3 V.
        assert!(r.design.vdd < 2.0, "vdd = {}", r.design.vdd);
        assert!(r.energy.total() > 0.0);
    }

    #[test]
    fn joint_vt_beats_fixed_vt_energy() {
        let n = ripple(4);
        let p = problem(&n, 100.0e6);
        let joint = Optimizer::new(&p).run().unwrap();
        let fixed = crate::baseline::optimize_fixed_vt(&p, 0.7, SearchOptions::default()).unwrap();
        assert!(
            joint.energy.total() < fixed.energy.total(),
            "joint {:.3e} !< fixed {:.3e}",
            joint.energy.total(),
            fixed.energy.total()
        );
    }

    #[test]
    fn infeasible_cycle_time_is_reported() {
        let n = ripple(4);
        let p = problem(&n, 50.0e9); // 50 GHz: hopeless for this process
        let err = Optimizer::new(&p).run().unwrap_err();
        match err {
            OptimizeError::Infeasible { best_delay, .. } => {
                assert!(best_delay.is_finite());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn result_design_meets_cycle_time_on_recheck() {
        let n = ripple(3);
        let p = problem(&n, 150.0e6);
        let r = Optimizer::new(&p).run().unwrap();
        let eval = p.model().evaluate(&r.design, p.fc());
        assert!(
            eval.critical_delay <= p.effective_cycle_time() * (1.0 + 1e-6),
            "critical delay {} exceeds cycle time {}",
            eval.critical_delay,
            p.effective_cycle_time()
        );
        // The budgets remain a sound certificate: their sum along any
        // path is within the cycle time.
        let worst = crate::budget::longest_budget_path(&n, &r.budgets);
        assert!(worst <= p.effective_cycle_time() * (1.0 + 1e-9));
    }

    #[test]
    fn multi_vt_is_no_worse_than_single_vt() {
        let n = ripple(3);
        let p = problem(&n, 150.0e6);
        let single = Optimizer::new(&p).run().unwrap();
        let multi = Optimizer::new(&p)
            .with_options(SearchOptions {
                vt_groups: 2,
                ..SearchOptions::default()
            })
            .run()
            .unwrap();
        // The grouped search is seeded from the single-Vt optimum, so it
        // can only match or improve it.
        assert!(
            multi.energy.total() <= single.energy.total() * (1.0 + 1e-9),
            "multi {:.3e} vs single {:.3e}",
            multi.energy.total(),
            single.energy.total()
        );
    }

    #[test]
    fn bad_options_rejected() {
        let n = ripple(2);
        let p = problem(&n, 100.0e6);
        let err = Optimizer::new(&p)
            .with_options(SearchOptions {
                steps: 0,
                ..SearchOptions::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            OptimizeError::BadOption {
                option: "steps",
                ..
            }
        ));
        let err = Optimizer::new(&p)
            .with_options(SearchOptions {
                vt_tolerance: 1.0,
                ..SearchOptions::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            OptimizeError::BadOption {
                option: "vt_tolerance",
                ..
            }
        ));
    }

    #[test]
    fn tolerance_costs_energy() {
        let n = ripple(3);
        let p = problem(&n, 150.0e6);
        let nominal = Optimizer::new(&p).run().unwrap();
        let margined = Optimizer::new(&p)
            .with_options(SearchOptions {
                vt_tolerance: 0.2,
                ..SearchOptions::default()
            })
            .run()
            .unwrap();
        assert!(
            margined.energy.total() >= nominal.energy.total(),
            "margined {:.3e} < nominal {:.3e}",
            margined.energy.total(),
            nominal.energy.total()
        );
    }
}
