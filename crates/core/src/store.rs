//! `minpower-store` — the durable persistence layer every on-disk state
//! file (optimizer checkpoints, service job records) is routed through.
//!
//! The resilience built in PRs 3 and 4 (checkpoint/resume, kill-and-
//! restart recovery) is only as strong as the bytes under it. This
//! module makes those bytes crash-safe:
//!
//! * **Integrity framing** — every record is wrapped in a CRC32
//!   envelope: a single ASCII header line
//!   `minpower-store <version> <length> <crc32-hex>` followed by the
//!   payload. A torn write, a truncation, or a flipped bit is detected
//!   on the next read instead of being parsed into silently wrong
//!   state. Unframed (legacy) files pass through for back-compat; their
//!   only integrity check is downstream parsing.
//! * **Atomic, durable writes** — [`write_durable`] writes a sibling
//!   temp file, fsyncs it, rotates the previous record to a `.1`
//!   generation, renames the temp into place, and fsyncs the parent
//!   directory, so a crash at any instant leaves either the old record,
//!   the new record, or debris the recovery audit cleans up — never a
//!   half-written record at the live path.
//! * **Bounded deterministic retry** — transient I/O failures are
//!   retried up to [`MAX_ATTEMPTS`] times with a fixed backoff
//!   schedule; the retry count is reported so telemetry can track
//!   flaky storage.
//! * **Generations** — keeping the previous record (`<file>.1`) means a
//!   corrupt newest generation degrades to a slightly older resume
//!   point instead of a lost run; both engines' resumes are
//!   deterministic, so an older checkpoint replays to the identical
//!   final result.
//! * **Recovery audit** — [`audit`] scans a state directory at startup,
//!   verifies every record, deletes leftover temp files, promotes
//!   intact `.1` generations over corrupt or missing primaries, and
//!   moves anything unrecoverable into `state-dir/quarantine/` next to
//!   a `.reason` file — the service starts degraded-but-running instead
//!   of aborting on the first bad file.
//! * **Degraded mode** — [`StoreHealth`] is a shared latch flipped by
//!   persistent write failure (e.g. disk full). A service holding it
//!   answers `503 + Retry-After` for new work while in-flight jobs
//!   continue without checkpointing, and un-latches as soon as a write
//!   succeeds again.
//!
//! Five deterministic fault sites (see `minpower_engine::faults`)
//! exercise every one of these paths: `io.write.torn`,
//! `io.write.short`, `io.fsync.fail`, `io.disk.full`, and
//! `checkpoint.corrupt`. Each site is queried with its own monotone
//! call index, so `Trigger::OnIndices(vec![0])` means "the first
//! durable write fails once and the retry succeeds" while
//! `Trigger::EveryNth(1)` means "storage is persistently broken".

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use minpower_engine::faults;

/// Magic token opening every framed record's header line.
pub const MAGIC: &str = "minpower-store";
/// Newest envelope version this build reads and writes.
pub const VERSION: u64 = 1;
/// Write attempts before a transient I/O failure becomes permanent.
pub const MAX_ATTEMPTS: u32 = 4;
/// Backoff before retry `i` (deterministic — never wall-clock random).
const BACKOFF_MS: [u64; 3] = [1, 5, 25];

/// A typed durable-storage failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem-level failure (open, write, fsync, rename).
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// Rendered OS error.
        message: String,
    },
    /// The file starts like a framed record but its header line is
    /// missing, truncated, or unparseable.
    BadHeader {
        /// Offending file.
        path: PathBuf,
    },
    /// The envelope version is newer than this build understands.
    BadVersion {
        /// Offending file.
        path: PathBuf,
        /// Version found in the header.
        version: u64,
    },
    /// The payload length does not match the header (torn or truncated
    /// write, or trailing garbage).
    LengthMismatch {
        /// Offending file.
        path: PathBuf,
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The payload bytes do not hash to the header's CRC32 (bit rot or
    /// an interrupted in-place mutation).
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
        /// CRC32 recorded in the header.
        expected: u32,
        /// CRC32 of the bytes on disk.
        actual: u32,
    },
}

impl StoreError {
    /// Short machine-readable class, used in quarantine reason files.
    pub fn kind(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "io",
            StoreError::BadHeader { .. } => "bad-header",
            StoreError::BadVersion { .. } => "bad-version",
            StoreError::LengthMismatch { .. } => "length-mismatch",
            StoreError::ChecksumMismatch { .. } => "checksum-mismatch",
        }
    }

    /// Whether the record itself is damaged (as opposed to the
    /// filesystem refusing the operation).
    pub fn is_corruption(&self) -> bool {
        !matches!(self, StoreError::Io { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "{}: {message}", path.display()),
            StoreError::BadHeader { path } => {
                write!(f, "{}: malformed store header", path.display())
            }
            StoreError::BadVersion { path, version } => write!(
                f,
                "{}: store envelope version {version} is newer than this build ({VERSION})",
                path.display()
            ),
            StoreError::LengthMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{}: truncated or torn record ({actual} of {expected} payload bytes)",
                path.display()
            ),
            StoreError::ChecksumMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{}: checksum mismatch (header {expected:08x}, payload {actual:08x})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(path: &Path, e: impl fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

// --------------------------------------------------------------- CRC32

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // 4-bit table: 16 entries, no 1 KiB static, still ~8x faster than
    // bit-at-a-time. State files are small; this is not a hot path.
    const TABLE: [u32; 16] = {
        let mut t = [0u32; 16];
        let mut i = 0;
        while i < 16 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 4 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xF) as usize] ^ (crc >> 4);
        crc = TABLE[((crc ^ (u32::from(b) >> 4)) & 0xF) as usize] ^ (crc >> 4);
    }
    !crc
}

// ------------------------------------------------------------- framing

/// Wraps `payload` in the versioned CRC32 envelope.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "{MAGIC} {VERSION} {} {:08x}\n",
        payload.len(),
        crc32(payload)
    )
    .into_bytes();
    out.extend_from_slice(payload);
    out
}

/// A decoded record: the payload plus whether it carried an envelope.
#[derive(Debug, Clone, Copy)]
pub struct Decoded<'a> {
    /// The record body.
    pub payload: &'a [u8],
    /// `false` for legacy (pre-store) unframed files.
    pub framed: bool,
}

/// Verifies and strips the envelope. Files that do not begin with the
/// magic token are passed through unframed (legacy compatibility).
///
/// # Errors
///
/// The typed [`StoreError`] naming the first integrity violation.
pub fn decode<'a>(path: &Path, bytes: &'a [u8]) -> Result<Decoded<'a>, StoreError> {
    if !bytes.starts_with(MAGIC.as_bytes()) {
        return Ok(Decoded {
            payload: bytes,
            framed: false,
        });
    }
    let bad = || StoreError::BadHeader {
        path: path.to_path_buf(),
    };
    let nl = bytes.iter().position(|&b| b == b'\n').ok_or_else(bad)?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| bad())?;
    let mut parts = header.split(' ');
    if parts.next() != Some(MAGIC) {
        return Err(bad());
    }
    let version: u64 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    if version > VERSION {
        return Err(StoreError::BadVersion {
            path: path.to_path_buf(),
            version,
        });
    }
    let expected_len: usize = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let expected_crc = parts
        .next()
        .and_then(|t| u32::from_str_radix(t, 16).ok())
        .ok_or_else(bad)?;
    if parts.next().is_some() {
        return Err(bad());
    }
    let payload = &bytes[nl + 1..];
    if payload.len() != expected_len {
        return Err(StoreError::LengthMismatch {
            path: path.to_path_buf(),
            expected: expected_len,
            actual: payload.len(),
        });
    }
    let actual = crc32(payload);
    if actual != expected_crc {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected: expected_crc,
            actual,
        });
    }
    Ok(Decoded {
        payload,
        framed: true,
    })
}

// ------------------------------------------------------------- writing

/// What a completed [`write_durable`] had to do to land.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteReport {
    /// Transient failures absorbed before the write succeeded.
    pub retries: u64,
}

/// The previous-generation sibling of `path` (`job-3.ckpt` →
/// `job-3.ckpt.1`).
pub fn previous_generation(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".1");
    path.with_file_name(name)
}

/// The temp sibling a write stages through (`job-3.ckpt` →
/// `job-3.ckpt.tmp`).
fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Removes `path` and its previous generation (terminal-state cleanup).
pub fn remove_generations(path: &Path) {
    let _ = fs::remove_file(path);
    let _ = fs::remove_file(previous_generation(path));
}

// Per-site monotone fault indices: each query of a site advances its own
// counter, so `OnIndices(vec![0])` fails exactly one attempt (the retry
// queries index 1 and passes) while `EveryNth(1)` is a persistent fault.
static TORN_SEQ: AtomicU64 = AtomicU64::new(0);
static SHORT_SEQ: AtomicU64 = AtomicU64::new(0);
static FSYNC_SEQ: AtomicU64 = AtomicU64::new(0);
static FULL_SEQ: AtomicU64 = AtomicU64::new(0);
static CORRUPT_SEQ: AtomicU64 = AtomicU64::new(0);

fn fire(site: &str, seq: &AtomicU64) -> bool {
    faults::should_fire(site, seq.fetch_add(1, Ordering::Relaxed))
}

/// Resets the per-site fault call indices to zero, so a fault drill can
/// use `Trigger::OnIndices(vec![0])` ("first write fails, retry
/// succeeds") regardless of how many writes earlier tests issued. Only
/// meaningful with the `faults` feature; drills run single-threaded.
#[cfg(feature = "faults")]
pub fn reset_fault_indices() {
    for seq in [&TORN_SEQ, &SHORT_SEQ, &FSYNC_SEQ, &FULL_SEQ, &CORRUPT_SEQ] {
        seq.store(0, Ordering::Relaxed);
    }
}

/// Writes `payload` to `path` crash-safely: CRC32 envelope, temp file +
/// fsync, previous record rotated to the `.1` generation, atomic
/// rename, parent-directory fsync. Transient I/O failures are retried
/// up to [`MAX_ATTEMPTS`] times on a fixed backoff schedule.
///
/// # Errors
///
/// [`StoreError::Io`] once the retry budget is exhausted.
pub fn write_durable(path: &Path, payload: &[u8]) -> Result<WriteReport, StoreError> {
    let mut body = frame(payload);
    let header_len = body.len() - payload.len();
    // Silent-corruption drills: the write "succeeds" but the bytes are
    // wrong — exactly what the CRC frame exists to catch on read.
    if !payload.is_empty() && fire("checkpoint.corrupt", &CORRUPT_SEQ) {
        let i = header_len + payload.len() / 2;
        body[i] ^= 0x10;
    }
    if fire("io.write.torn", &TORN_SEQ) {
        body.truncate(header_len + payload.len() / 2);
    }

    let mut retries = 0u64;
    for attempt in 0..MAX_ATTEMPTS {
        match write_once(path, &body) {
            Ok(()) => return Ok(WriteReport { retries }),
            Err(e) if attempt + 1 < MAX_ATTEMPTS => {
                let _ = e;
                retries += 1;
                std::thread::sleep(Duration::from_millis(
                    BACKOFF_MS[(attempt as usize).min(BACKOFF_MS.len() - 1)],
                ));
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("the loop returns on its last attempt");
}

fn write_once(path: &Path, body: &[u8]) -> Result<(), StoreError> {
    if fire("io.disk.full", &FULL_SEQ) {
        return Err(io_err(path, "no space left on device (injected)"));
    }
    let tmp = temp_sibling(path);
    let result = (|| {
        let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        if fire("io.write.short", &SHORT_SEQ) {
            return Err(io_err(&tmp, "short write (injected)"));
        }
        file.write_all(body).map_err(|e| io_err(&tmp, e))?;
        if fire("io.fsync.fail", &FSYNC_SEQ) {
            return Err(io_err(&tmp, "fsync failed (injected)"));
        }
        file.sync_all().map_err(|e| io_err(&tmp, e))?;
        drop(file);
        // Keep the previous record as the fallback generation, then
        // publish atomically.
        if path.exists() {
            fs::rename(path, previous_generation(path)).map_err(|e| io_err(path, e))?;
        }
        fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        // The renames live in the parent directory's entries; fsync it
        // so they survive power loss too. Best-effort on filesystems
        // that refuse directory handles.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

// ------------------------------------------------------------- reading

/// Reads and integrity-checks the record at `path`.
///
/// # Errors
///
/// [`StoreError`] describing the I/O failure or the corruption.
pub fn read_verified(path: &Path) -> Result<Vec<u8>, StoreError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    decode(path, &bytes).map(|d| d.payload.to_vec())
}

/// A record loaded by [`read_with_fallback`].
#[derive(Debug, Clone)]
pub struct Loaded {
    /// The verified payload.
    pub payload: Vec<u8>,
    /// `true` when the primary was unreadable/corrupt and the `.1`
    /// generation was used instead.
    pub from_fallback: bool,
}

/// Reads `path`, falling back to its `.1` generation when the primary
/// is missing or fails verification.
///
/// # Errors
///
/// The *primary's* error when neither generation is intact (it names
/// the record the caller asked for).
pub fn read_with_fallback(path: &Path) -> Result<Loaded, StoreError> {
    match read_verified(path) {
        Ok(payload) => Ok(Loaded {
            payload,
            from_fallback: false,
        }),
        Err(primary) => match read_verified(&previous_generation(path)) {
            Ok(payload) => Ok(Loaded {
                payload,
                from_fallback: true,
            }),
            Err(_) => Err(primary),
        },
    }
}

// --------------------------------------------------------- quarantine

/// Moves `path` into `state_dir/quarantine/` and writes a sibling
/// `<name>.reason` file, so corrupt state is preserved for post-mortems
/// instead of deleted or — worse — parsed.
///
/// # Errors
///
/// [`StoreError::Io`] when the move itself fails.
pub fn quarantine(state_dir: &Path, path: &Path, reason: &str) -> Result<PathBuf, StoreError> {
    let qdir = state_dir.join("quarantine");
    fs::create_dir_all(&qdir).map_err(|e| io_err(&qdir, e))?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let mut dest = qdir.join(&name);
    let mut n = 1;
    while dest.exists() {
        dest = qdir.join(format!("{name}.{n}"));
        n += 1;
    }
    fs::rename(path, &dest).map_err(|e| io_err(path, e))?;
    let mut reason_name = dest
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    reason_name.push(".reason");
    let _ = fs::write(dest.with_file_name(reason_name), format!("{reason}\n"));
    Ok(dest)
}

// -------------------------------------------------------------- audit

/// One file the audit moved aside.
#[derive(Debug, Clone)]
pub struct Quarantined {
    /// Where the file now lives (inside `quarantine/`).
    pub path: PathBuf,
    /// Why it was quarantined.
    pub reason: String,
}

/// What a startup [`audit`] found and did.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// State records examined.
    pub checked: usize,
    /// Corrupt/truncated records moved into `quarantine/`.
    pub quarantined: Vec<Quarantined>,
    /// Records whose primary was corrupt or missing and whose intact
    /// `.1` generation was promoted in its place.
    pub recovered: Vec<PathBuf>,
    /// Leftover `.tmp` staging files deleted (normal crash debris).
    pub removed_temps: usize,
}

/// Whether `payload` is plausibly one of our records: UTF-8 JSON. This
/// is the only integrity check available for legacy unframed files and
/// a schema-independent sanity floor for framed ones.
fn payload_parses(payload: &[u8]) -> Result<(), String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    crate::json::parse(text)
        .map(|_| ())
        .map_err(|e| format!("payload is not valid JSON: {}", e.message))
}

fn verify_record(path: &Path) -> Result<(), String> {
    let payload = read_verified(path).map_err(|e| format!("{}: {e}", e.kind()))?;
    payload_parses(&payload)
}

/// Scans `state_dir` and makes it safe to load from: deletes `.tmp`
/// staging debris, verifies every `*.json` / `*.ckpt` record (CRC frame
/// and JSON well-formedness), promotes an intact `.1` generation over a
/// corrupt or missing primary, and quarantines whatever cannot be
/// recovered. Never panics and never aborts the caller — a state
/// directory full of garbage yields an empty-but-running service.
pub fn audit(state_dir: &Path) -> AuditReport {
    let mut report = AuditReport::default();
    let Ok(entries) = fs::read_dir(state_dir) else {
        return report;
    };
    let mut primaries = Vec::new();
    let mut generations = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            if fs::remove_file(&path).is_ok() {
                report.removed_temps += 1;
            }
        } else if name.ends_with(".json.1") || name.ends_with(".ckpt.1") {
            generations.push(path);
        } else if name.ends_with(".json") || name.ends_with(".ckpt") {
            primaries.push(path);
        }
    }

    // Quarantine failing (e.g. read-only disk) must not stop the audit;
    // the file stays where it is and loaders will skip it record-by-record.
    let move_aside = |report: &mut AuditReport, path: &Path, reason: &str| {
        if let Ok(dest) = quarantine(state_dir, path, reason) {
            report.quarantined.push(Quarantined {
                path: dest,
                reason: reason.to_string(),
            });
        }
    };

    for path in primaries {
        report.checked += 1;
        let Err(reason) = verify_record(&path) else {
            continue;
        };
        let prev = previous_generation(&path);
        if prev.is_file() && verify_record(&prev).is_ok() {
            move_aside(&mut report, &path, &reason);
            if fs::rename(&prev, &path).is_ok() {
                report.recovered.push(path.clone());
            }
        } else {
            move_aside(&mut report, &path, &reason);
            if prev.is_file() {
                move_aside(
                    &mut report,
                    &prev,
                    "previous generation of a corrupt record, itself corrupt",
                );
            }
        }
    }
    // A crash between "rotate primary to .1" and "rename temp into
    // place" leaves only the generation: promote it.
    for prev in generations {
        let name = prev.file_name().map(|n| n.to_string_lossy().into_owned());
        let Some(name) = name else { continue };
        let primary = prev.with_file_name(name.trim_end_matches(".1"));
        if primary.exists() {
            continue;
        }
        report.checked += 1;
        if verify_record(&prev).is_ok() {
            if fs::rename(&prev, &primary).is_ok() {
                report.recovered.push(primary);
            }
        } else {
            move_aside(&mut report, &prev, "orphaned generation, corrupt");
        }
    }
    report
}

// ------------------------------------------------------------- health

/// A shared degraded-mode latch: flipped on persistent write failure,
/// cleared as soon as any durable write succeeds again. A service polls
/// [`is_degraded`](StoreHealth::is_degraded) to gate new-work admission
/// and reports the state via `GET /healthz`.
#[derive(Debug, Default)]
pub struct StoreHealth {
    state: Mutex<HealthState>,
    degraded_nanos: AtomicU64,
}

#[derive(Debug, Default)]
struct HealthState {
    /// Why writes are failing; `None` means healthy.
    reason: Option<String>,
    /// When the current degraded episode began.
    since: Option<Instant>,
}

impl StoreHealth {
    /// A fresh healthy latch.
    pub fn new() -> Self {
        StoreHealth::default()
    }

    /// Latches degraded mode with `reason` (the first reason of an
    /// episode wins; later failures keep the episode running).
    pub fn report_failure(&self, reason: &str) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.reason.is_none() {
            s.reason = Some(reason.to_string());
            s.since = Some(Instant::now());
        }
    }

    /// Clears the latch; the episode's duration is added to the
    /// degraded-seconds total.
    pub fn report_success(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(since) = s.since.take() {
            self.degraded_nanos.fetch_add(
                since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                Ordering::Relaxed,
            );
        }
        s.reason = None;
    }

    /// Whether the store is currently degraded (read-only).
    pub fn is_degraded(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .reason
            .is_some()
    }

    /// `(degraded, reason)` — the reason is empty when healthy.
    pub fn status(&self) -> (bool, String) {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match &s.reason {
            Some(reason) => (true, reason.clone()),
            None => (false, String::new()),
        }
    }

    /// Whole seconds spent degraded, past episodes plus the current one.
    pub fn degraded_seconds(&self) -> u64 {
        let current = {
            let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            s.since.map_or(0, |t| {
                t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
            })
        };
        (self.degraded_nanos.load(Ordering::Relaxed) + current) / 1_000_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("minpower-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_decode_round_trips() {
        let payload = br#"{"hello":[1,2,3]}"#;
        let framed = frame(payload);
        let d = decode(Path::new("t"), &framed).unwrap();
        assert!(d.framed);
        assert_eq!(d.payload, payload);
    }

    #[test]
    fn legacy_unframed_files_pass_through() {
        let d = decode(Path::new("t"), b"{\"legacy\":true}").unwrap();
        assert!(!d.framed);
        assert_eq!(d.payload, b"{\"legacy\":true}");
    }

    #[test]
    fn every_corruption_is_a_typed_error_never_a_panic() {
        let payload = b"{\"k\":\"0123456789abcdef\"}";
        let good = frame(payload);
        let p = Path::new("t");
        // Truncations at every byte boundary.
        for cut in 0..good.len() {
            let r = decode(p, &good[..cut]);
            if cut == 0 {
                assert!(r.is_ok(), "empty file is legacy-unframed");
                continue;
            }
            match r {
                Ok(d) => assert!(!d.framed, "truncation at {cut} accepted as framed"),
                Err(e) => assert!(e.is_corruption(), "cut {cut}: {e}"),
            }
        }
        // Single-bit flips everywhere. Header flips may still decode
        // (e.g. the version digit, which the CRC does not cover) — but
        // then the payload MUST be byte-identical; a damaged payload is
        // never returned.
        for i in 0..good.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = good.clone();
                bad[i] ^= bit;
                match decode(p, &bad) {
                    Ok(d) if d.framed => {
                        assert_eq!(d.payload, payload, "flip at {i} returned damaged bytes");
                    }
                    Ok(_) => {} // magic damaged: legacy passthrough
                    Err(e) => assert!(e.is_corruption()),
                }
            }
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.extend_from_slice(b"xx");
        assert!(matches!(
            decode(p, &long),
            Err(StoreError::LengthMismatch { .. })
        ));
        // Future version.
        let future = frame(payload);
        let text = String::from_utf8(future).unwrap().replace(
            &format!("{MAGIC} {VERSION}"),
            &format!("{MAGIC} {}", VERSION + 1),
        );
        assert!(matches!(
            decode(p, text.as_bytes()),
            Err(StoreError::BadVersion { .. })
        ));
    }

    #[test]
    fn write_read_round_trips_and_keeps_a_generation() {
        let dir = scratch("wrrt");
        let path = dir.join("rec.json");
        write_durable(&path, b"{\"v\":1}").unwrap();
        assert_eq!(read_verified(&path).unwrap(), b"{\"v\":1}");
        assert!(!previous_generation(&path).exists());
        write_durable(&path, b"{\"v\":2}").unwrap();
        assert_eq!(read_verified(&path).unwrap(), b"{\"v\":2}");
        assert_eq!(
            read_verified(&previous_generation(&path)).unwrap(),
            b"{\"v\":1}"
        );
        // No staging debris.
        assert!(!temp_sibling(&path).exists());
        remove_generations(&path);
        assert!(!path.exists() && !previous_generation(&path).exists());
    }

    #[test]
    fn fallback_read_survives_a_corrupt_primary() {
        let dir = scratch("fallback");
        let path = dir.join("rec.json");
        write_durable(&path, b"{\"v\":1}").unwrap();
        write_durable(&path, b"{\"v\":2}").unwrap();
        // Flip a payload bit in the primary.
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x04;
        fs::write(&path, &bytes).unwrap();
        assert!(read_verified(&path).is_err());
        let loaded = read_with_fallback(&path).unwrap();
        assert!(loaded.from_fallback);
        assert_eq!(loaded.payload, b"{\"v\":1}");
    }

    #[test]
    fn audit_quarantines_corrupt_and_promotes_generations() {
        let dir = scratch("audit");
        // Intact record: untouched.
        write_durable(&dir.join("job-1.json"), b"{\"ok\":1}").unwrap();
        // Corrupt primary with an intact generation: recovered.
        let two = dir.join("job-2.ckpt");
        write_durable(&two, b"{\"gen\":1}").unwrap();
        write_durable(&two, b"{\"gen\":2}").unwrap();
        fs::write(&two, b"garbage that is not json").unwrap();
        // Corrupt primary, no generation: quarantined.
        fs::write(dir.join("job-3.json"), &frame(b"{\"x\":1}")[..10]).unwrap();
        // Orphaned intact generation (crash between rotate and rename).
        write_durable(&dir.join("job-4.ckpt"), b"{\"orphan\":1}").unwrap();
        fs::rename(
            dir.join("job-4.ckpt"),
            previous_generation(&dir.join("job-4.ckpt")),
        )
        .unwrap();
        // Staging debris.
        fs::write(dir.join("job-5.json.tmp"), b"half").unwrap();

        let report = audit(&dir);
        assert_eq!(report.removed_temps, 1);
        assert_eq!(
            read_verified(&dir.join("job-1.json")).unwrap(),
            b"{\"ok\":1}"
        );
        assert_eq!(read_verified(&two).unwrap(), b"{\"gen\":1}");
        assert_eq!(
            read_verified(&dir.join("job-4.ckpt")).unwrap(),
            b"{\"orphan\":1}"
        );
        assert_eq!(report.recovered.len(), 2, "{report:?}");
        // job-2's corrupt primary + job-3.
        assert_eq!(report.quarantined.len(), 2, "{report:?}");
        assert!(!dir.join("job-3.json").exists());
        let q = dir.join("quarantine");
        assert!(q.join("job-3.json").exists());
        let reason = fs::read_to_string(q.join("job-3.json.reason")).unwrap();
        assert!(!reason.trim().is_empty());
        // Auditing again is a no-op.
        let again = audit(&dir);
        assert!(again.quarantined.is_empty() && again.recovered.is_empty());
    }

    #[test]
    fn health_latches_and_recovers() {
        let h = StoreHealth::new();
        assert!(!h.is_degraded());
        h.report_failure("disk full");
        h.report_failure("still full");
        let (degraded, reason) = h.status();
        assert!(degraded);
        assert_eq!(reason, "disk full", "first reason of an episode wins");
        h.report_success();
        assert!(!h.is_degraded());
        assert_eq!(h.status().1, "");
    }
}
