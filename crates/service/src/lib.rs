//! `minpower-serve` — a std-only HTTP optimization service.
//!
//! Wraps the DAC'97 optimizer in a long-running process: clients submit
//! netlists + options as JSON jobs, poll or stream progress, and fetch
//! results whose JSON is **bit-identical** to what a direct library run
//! produces. Everything is hand-rolled on `std::net` — no async runtime,
//! no serde — in keeping with the workspace's zero-dependency rule.
//!
//! ## Endpoints
//!
//! | method & path            | purpose                                      |
//! |--------------------------|----------------------------------------------|
//! | `POST /jobs`             | submit (`202` + id; `429` when queue full)   |
//! | `GET /jobs`              | paginated job listing (`?offset=&limit=`)    |
//! | `GET /jobs/{id}`         | status + result document                     |
//! | `DELETE /jobs/{id}`      | cancel; interrupted jobs keep best-so-far    |
//! | `GET /jobs/{id}/events`  | NDJSON progress stream                       |
//! | `POST /sessions`         | open a what-if session (warm state)          |
//! | `GET /sessions`          | paginated session listing                    |
//! | `GET /sessions/{id}`     | session snapshot (`?detail=gates` for all)   |
//! | `POST /sessions/{id}/ops`| apply one incremental edit op                |
//! | `POST /sessions/{id}/compact` | fold the op log into a snapshot         |
//! | `DELETE /sessions/{id}`  | tear a session down (directory reclaimed)    |
//! | `GET /metrics`           | queue depth, engine + store counters, latency|
//! | `GET /healthz`           | `ok` / `degraded` + reason                   |
//! | `POST /shutdown`         | graceful drain                               |
//!
//! ## Sessions
//!
//! `POST /sessions` loads a netlist once into warm incremental state
//! (delays, STA, energy ledger); `POST /sessions/{id}/ops` then applies
//! cheap deltas — resize a gate, nudge `f_c`, re-optimize the dirty
//! cone — each journaled to a per-session op-log before it is applied,
//! so a killed-and-restarted server replays every session to a
//! bit-identical state. Sessions are meant to be driven over a
//! keep-alive connection (`Connection: keep-alive`): the TCP handshake
//! is paid once and each op is a single round-trip against warm state.
//!
//! ## Durability
//!
//! Every admitted job is persisted to the state directory before it is
//! queued, and checkpointed while it runs. All on-disk state goes
//! through [`minpower_core::store`]: CRC32-framed records, fsynced
//! temp-file + atomic-rename writes, and a `.1` fallback generation per
//! record. A server killed mid-job (or drained by SIGINT) leaves those
//! records `pending`; the next server on the same state directory runs
//! a recovery audit (quarantining anything corrupt into
//! `state-dir/quarantine/`), re-admits them, and resumes each from its
//! checkpoint, finishing bit-identically to an uninterrupted run — the
//! same guarantee the CLI's `--resume` makes, delivered as a service.
//! When durable writes fail persistently (disk full), the service
//! latches a degraded read-only mode — `503 + Retry-After` for new
//! submissions while in-flight jobs continue uncheckpointed — and
//! un-latches automatically once writes succeed again.
//!
//! ## Governance
//!
//! Overload is a first-class regime, not an emergent failure (see
//! [`govern`]): deterministic token buckets rate-limit session ops
//! per-session and per-client-IP (`429 + Retry-After`), disk quotas
//! bound each session's on-disk footprint (the op log auto-compacts at
//! half the quota; `POST /sessions/{id}/compact` folds it explicitly),
//! a global disk budget bounds the sum, and a memory-pressure governor
//! sheds the lowest-priority work first — evict idle warm sessions,
//! then refuse new sessions, then refuse new jobs — with the tier
//! visible in `/healthz` and everything counted in `/metrics`. All
//! limits default to off (rates `0`, budgets `0`) except the per-session
//! quota, which defaults generously.
//!
//! ## Quick start
//!
//! ```no_run
//! use minpower_serve::{Config, Server};
//!
//! let server = Server::bind(Config {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..Config::default()
//! }).expect("bind");
//! println!("listening on {}", server.local_addr().expect("addr"));
//! let outcome = server.run(); // blocks until shutdown
//! # let _ = outcome;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod govern;
pub mod http;
pub mod job;
pub mod metrics;
pub mod queue;
mod server;
pub mod session;
pub mod shard;

use std::path::PathBuf;

pub use server::{Server, ServerHandle, ServiceState};

/// Server configuration (the `minpower serve` flags).
#[derive(Debug, Clone)]
pub struct Config {
    /// Listen address; use port `0` to let the OS pick.
    pub addr: String,
    /// Concurrent optimization workers.
    pub workers: usize,
    /// Maximum jobs waiting in the queue before `429`.
    pub queue_depth: usize,
    /// Server-side cap on any job's soft deadline, seconds (`0` = none).
    pub job_time_limit: f64,
    /// Directory for job records and checkpoints.
    pub state_dir: PathBuf,
    /// Maximum accepted request-body size, bytes.
    pub max_body_bytes: usize,
    /// Maximum logic gates per submitted netlist (`422` beyond).
    pub max_gates: usize,
    /// Evaluations between periodic job checkpoints.
    pub checkpoint_every: usize,
    /// Worker mode for distributed serving: accept `POST /shards` from a
    /// `minpower-coord` coordinator. A worker skips the startup recovery
    /// audit and job re-admission — the shared directory is the
    /// coordinator's to audit, and shard reassignment (not local resume)
    /// is the recovery mechanism.
    pub worker: bool,
    /// Shared job-store directory for shard results (worker mode);
    /// defaults to `state_dir` when unset. Coordinator and workers must
    /// point at the same directory.
    pub shared_dir: Option<PathBuf>,
    /// Maximum open what-if sessions (`429` beyond). Warm in-memory
    /// states are additionally bounded by LRU eviction to this count —
    /// an evicted session stays open and replays from its op-log on the
    /// next touch.
    pub max_sessions: usize,
    /// Idle seconds before a session's warm state is evicted to disk
    /// (`0` disables the idle sweep; the session itself stays open).
    pub session_ttl: f64,
    /// Requests served per keep-alive connection before the server
    /// closes it (connection budget; `1` disables reuse).
    pub keep_alive_requests: usize,
    /// Idle seconds the server waits for the next request on a
    /// keep-alive connection before closing it.
    pub keep_alive_idle: f64,
    /// Ops between periodic session snapshots folding the op-log into a
    /// checkpoint (bounds replay length after a restart).
    pub session_checkpoint_every: usize,
    /// Per-session op rate limit, ops/second (`0` disables). Ops beyond
    /// the bucket answer `429` with a `Retry-After` hint.
    pub ops_rate: f64,
    /// Burst capacity of the per-session op bucket, tokens (`0`
    /// defaults to one second of refill).
    pub ops_burst: f64,
    /// Per-client-IP rate limit shared by session ops and job
    /// submissions, requests/second (`0` disables).
    pub client_rate: f64,
    /// Burst capacity of the per-client bucket, tokens (`0` defaults to
    /// one second of refill).
    pub client_burst: f64,
    /// Per-session on-disk byte quota — record + op log + snapshot
    /// (`0` = unlimited). The op log auto-compacts into the snapshot at
    /// half the quota; an op that still cannot fit answers `503`.
    pub session_quota_bytes: u64,
    /// Global byte budget across all session directories (`0` =
    /// unlimited); `POST /sessions` answers `503` while exhausted.
    pub session_disk_budget: u64,
    /// Warm-session memory budget, bytes (`0` disables load shedding).
    /// Crossing 75% / 90% / 100% of it moves `/healthz` through the
    /// `pressure` / `shed-sessions` / `shed-jobs` tiers.
    pub mem_budget_bytes: u64,
    /// Op-log size that triggers the background compaction sweep for
    /// sessions *without* a quota, bytes (`0` disables; quota'd
    /// sessions compact at half their quota regardless).
    pub session_compact_bytes: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:7817".to_string(),
            workers: 2,
            queue_depth: 16,
            job_time_limit: 0.0,
            state_dir: PathBuf::from("minpower-serve-state"),
            max_body_bytes: 1 << 20,
            max_gates: 50_000,
            checkpoint_every: 16,
            worker: false,
            shared_dir: None,
            max_sessions: 64,
            session_ttl: 600.0,
            keep_alive_requests: 1000,
            keep_alive_idle: 5.0,
            session_checkpoint_every: 64,
            ops_rate: 0.0,
            ops_burst: 0.0,
            client_rate: 0.0,
            client_burst: 0.0,
            session_quota_bytes: 64 << 20,
            session_disk_budget: 0,
            mem_budget_bytes: 0,
            session_compact_bytes: 4 << 20,
        }
    }
}

/// Validates a state directory *before* binding: an existing path that
/// is not a directory, an uncreatable path, or a directory we cannot
/// write into is rejected up front with a clear message, instead of
/// surfacing as a persist failure on the first submitted job.
///
/// # Errors
///
/// A human-readable description of what is wrong with `dir`.
pub fn validate_state_dir(dir: &std::path::Path) -> Result<(), String> {
    if dir.exists() && !dir.is_dir() {
        return Err(format!(
            "state dir {} exists but is not a directory",
            dir.display()
        ));
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("state dir {} cannot be created: {e}", dir.display()))?;
    let probe = dir.join(".write-probe");
    match minpower_core::store::write_durable(&probe, b"{\"probe\":true}") {
        Ok(_) => {
            minpower_core::store::remove_generations(&probe);
            Ok(())
        }
        Err(e) => Err(format!("state dir {} is not writable: {e}", dir.display())),
    }
}

/// How a server run ended, for the CLI's exit-code mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every job had reached a terminal state (exit 0).
    Clean,
    /// At least one job was interrupted by the drain and left resumable
    /// (exit 4, matching the CLI's `interrupted` code).
    JobsInterrupted,
}
