//! Job specifications, lifecycle state, and on-disk persistence.
//!
//! A job is one optimization run submitted over HTTP. Its whole
//! lifecycle lives here:
//!
//! * [`JobSpec`] — the validated submission (circuit source + options),
//!   JSON round-trippable so a persisted job rebuilds the *identical*
//!   problem after a restart (floats survive bitwise via the shortest
//!   round-trip rendering of [`minpower_core::json`]);
//! * [`Job`] — the in-memory record: a [`RunControl`] for cancellation,
//!   progress counters fed by the control's observer, and a state
//!   machine ([`JobState`]) guarded by a mutex;
//! * persistence — `job-<id>.json` files written crash-safely through
//!   [`minpower_core::store`] (CRC32 envelope, fsync, atomic rename,
//!   `.1` fallback generation). A job file stays `pending` until
//!   the run reaches a *terminal* state, so a crashed or killed server
//!   finds every unfinished job on disk and resumes it from its
//!   checkpoint.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use minpower_core::json::{self, Value};
use minpower_core::store;
use minpower_core::{OptimizeError, Problem, RunControl, SearchOptions};
use minpower_models::CircuitModel;
use minpower_netlist::Netlist;

use crate::http::HttpError;

/// The circuit payload of a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// A named circuit from the built-in benchmark suite.
    Suite(String),
    /// Inline ISCAS `.bench` text.
    Bench(String),
    /// Inline structural-Verilog text.
    Verilog(String),
}

/// A validated job submission: circuit source plus the same options the
/// CLI's `optimize` command takes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Where the netlist comes from.
    pub source: Source,
    /// Clock frequency, hertz.
    pub fc: f64,
    /// Uniform input transition density, in `[0, 1]`.
    pub activity: f64,
    /// Clock-skew factor in `(0, 1]`.
    pub skew: f64,
    /// Binary-search steps per variable.
    pub steps: usize,
    /// Number of threshold groups.
    pub vt_groups: usize,
    /// Threshold-tolerance margin.
    pub tolerance: f64,
    /// Width-sizing method, `"budgeted"` or `"greedy"`.
    pub sizing: minpower_core::SizingMethod,
    /// Per-job soft deadline, seconds (`0` = none; the server may cap it).
    pub time_limit: f64,
    /// Queue priority; higher dequeues first.
    pub priority: u64,
    /// Gate rows in the result's `top_gates` table.
    pub top_gates: usize,
}

fn opt_number(obj: &json::Obj<'_>, name: &str, default: f64) -> Result<f64, HttpError> {
    match obj.opt(name) {
        None => Ok(default),
        Some(v) => v
            .as_number(name)
            .map_err(|e| HttpError::new(400, e.message)),
    }
}

fn opt_usize(obj: &json::Obj<'_>, name: &str, default: usize) -> Result<usize, HttpError> {
    match obj.opt(name) {
        None => Ok(default),
        Some(v) => Ok(v.as_u64(name).map_err(|e| HttpError::new(400, e.message))? as usize),
    }
}

impl JobSpec {
    /// Parses a submission body. Unknown options are rejected (a typo'd
    /// option must fail loudly, not silently run with defaults), and
    /// numeric ranges are validated here so admission control can answer
    /// `400` before the job ever touches the queue.
    ///
    /// # Errors
    ///
    /// [`HttpError`] with status 400 naming the offending field.
    pub fn from_json(value: &Value) -> Result<JobSpec, HttpError> {
        let Value::Obj(raw) = value else {
            return Err(HttpError::new(400, "job spec must be a JSON object"));
        };
        let obj = value
            .as_obj("job spec")
            .map_err(|e| HttpError::new(400, e.message))?;
        const KNOWN: &[&str] = &[
            "circuit",
            "bench",
            "verilog",
            "fc",
            "activity",
            "skew",
            "steps",
            "vt_groups",
            "tolerance",
            "sizing",
            "time_limit",
            "priority",
            "top_gates",
        ];
        for (name, _) in raw {
            if !KNOWN.contains(&name.as_str()) {
                return Err(HttpError::new(400, format!("unknown option `{name}`")));
            }
        }
        let text = |name: &str| -> Result<Option<String>, HttpError> {
            match obj.opt(name) {
                None => Ok(None),
                Some(v) => Ok(Some(
                    v.as_str(name)
                        .map_err(|e| HttpError::new(400, e.message))?
                        .to_string(),
                )),
            }
        };
        let source = match (text("circuit")?, text("bench")?, text("verilog")?) {
            (Some(name), None, None) => Source::Suite(name),
            (None, Some(b), None) => Source::Bench(b),
            (None, None, Some(v)) => Source::Verilog(v),
            _ => {
                return Err(HttpError::new(
                    400,
                    "provide exactly one of `circuit`, `bench`, `verilog`",
                ))
            }
        };
        let spec = JobSpec {
            source,
            fc: opt_number(&obj, "fc", 300.0e6)?,
            activity: opt_number(&obj, "activity", 0.3)?,
            skew: opt_number(&obj, "skew", 1.0)?,
            steps: opt_usize(&obj, "steps", 14)?,
            vt_groups: opt_usize(&obj, "vt_groups", 1)?,
            tolerance: opt_number(&obj, "tolerance", 0.0)?,
            sizing: match text("sizing")?.as_deref() {
                None | Some("budgeted") => minpower_core::SizingMethod::Budgeted,
                Some("greedy") => minpower_core::SizingMethod::Greedy,
                Some(other) => {
                    return Err(HttpError::new(
                        400,
                        format!("`sizing` must be `budgeted` or `greedy`, got `{other}`"),
                    ))
                }
            },
            time_limit: opt_number(&obj, "time_limit", 0.0)?,
            priority: match obj.opt("priority") {
                None => 0,
                Some(v) => v
                    .as_u64("priority")
                    .map_err(|e| HttpError::new(400, e.message))?,
            },
            top_gates: opt_usize(&obj, "top_gates", 0)?,
        };
        if !spec.fc.is_finite() || spec.fc <= 0.0 {
            return Err(HttpError::new(400, "`fc` must be finite and positive"));
        }
        if !(0.0..=1.0).contains(&spec.activity) {
            return Err(HttpError::new(400, "`activity` must lie in [0, 1]"));
        }
        if !(spec.skew > 0.0 && spec.skew <= 1.0) {
            return Err(HttpError::new(400, "`skew` must lie in (0, 1]"));
        }
        if spec.time_limit < 0.0 || !spec.time_limit.is_finite() {
            return Err(HttpError::new(
                400,
                "`time_limit` must be finite and non-negative",
            ));
        }
        Ok(spec)
    }

    /// Renders the spec back to its submission JSON (bitwise faithful
    /// for the float fields), used for the persisted job file.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![match &self.source {
            Source::Suite(name) => ("circuit".to_string(), Value::Str(name.clone())),
            Source::Bench(text) => ("bench".to_string(), Value::Str(text.clone())),
            Source::Verilog(text) => ("verilog".to_string(), Value::Str(text.clone())),
        }];
        fields.extend([
            ("fc".to_string(), Value::Float(self.fc)),
            ("activity".to_string(), Value::Float(self.activity)),
            ("skew".to_string(), Value::Float(self.skew)),
            ("steps".to_string(), Value::Int(self.steps as u64)),
            ("vt_groups".to_string(), Value::Int(self.vt_groups as u64)),
            ("tolerance".to_string(), Value::Float(self.tolerance)),
            (
                "sizing".to_string(),
                Value::Str(
                    match self.sizing {
                        minpower_core::SizingMethod::Budgeted => "budgeted",
                        minpower_core::SizingMethod::Greedy => "greedy",
                    }
                    .to_string(),
                ),
            ),
            ("time_limit".to_string(), Value::Float(self.time_limit)),
            ("priority".to_string(), Value::Int(self.priority)),
            ("top_gates".to_string(), Value::Int(self.top_gates as u64)),
        ]);
        Value::Obj(fields)
    }

    /// Resolves the netlist from the source. Parse failures are `400`;
    /// an unknown suite name is `404`-flavored but still a client error,
    /// reported as `400` with the suite hint.
    ///
    /// # Errors
    ///
    /// [`HttpError`] describing the malformed or unknown circuit.
    pub fn netlist(&self) -> Result<Netlist, HttpError> {
        resolve_netlist(&self.source)
    }

    /// Builds the optimization problem and search options, enforcing the
    /// server's `max_gates` admission cap (`422`: syntactically fine,
    /// semantically too large for this deployment).
    ///
    /// # Errors
    ///
    /// [`HttpError`] with 400 for invalid inputs, 422 for oversized
    /// netlists.
    pub fn build(&self, max_gates: usize) -> Result<(Problem, SearchOptions), HttpError> {
        let netlist = self.netlist()?;
        let gates = netlist.logic_gate_count();
        if gates > max_gates {
            return Err(HttpError::new(
                422,
                format!("netlist has {gates} logic gates; this server admits at most {max_gates}"),
            ));
        }
        let model = CircuitModel::with_uniform_activity(
            &netlist,
            minpower_device::Technology::dac97(),
            0.5,
            self.activity,
        );
        let problem = Problem::try_new(model, self.fc)
            .map_err(|e| HttpError::new(400, e.to_string()))?
            .with_clock_skew(self.skew);
        let options = SearchOptions {
            steps: self.steps,
            vt_groups: self.vt_groups,
            vt_tolerance: self.tolerance,
            sizing: self.sizing,
            ..SearchOptions::default()
        };
        Ok((problem, options))
    }
}

/// Resolves a circuit [`Source`] into a netlist (shared by job and
/// session specs). Parse failures and unknown suite names are `400`.
///
/// # Errors
///
/// [`HttpError`] describing the malformed or unknown circuit.
pub fn resolve_netlist(source: &Source) -> Result<Netlist, HttpError> {
    match source {
        Source::Suite(name) => {
            if name == "c17" {
                return Ok(minpower_circuits::c17());
            }
            minpower_circuits::circuit(name)
                .ok_or_else(|| HttpError::new(400, format!("unknown suite circuit `{name}`")))
        }
        Source::Bench(text) => minpower_netlist::bench::parse("job", text)
            .map_err(|e| HttpError::new(400, format!("bad .bench source: {e}"))),
        Source::Verilog(text) => minpower_netlist::verilog::parse(text)
            .map_err(|e| HttpError::new(400, format!("bad Verilog source: {e}"))),
    }
}

/// Coarse job status exposed over the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is optimizing it.
    Running,
    /// Finished with a result.
    Done,
    /// Failed with a typed error.
    Failed,
    /// Cancelled by `DELETE /jobs/{id}`.
    Cancelled,
    /// Stopped by deadline or server drain before converging.
    Interrupted,
}

impl JobStatus {
    /// Wire name of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Interrupted => "interrupted",
        }
    }
}

/// Full lifecycle state, including terminal payloads.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// Being optimized.
    Running,
    /// Completed; carries the `minpower-result` document.
    Done(Value),
    /// Errored; carries the message.
    Failed(String),
    /// Cancelled by the client; carries the delay-feasible best-so-far
    /// design if one had been found.
    Cancelled(Option<Value>),
    /// Interrupted (deadline or drain). `resumable` marks a drain
    /// interruption whose persisted file stayed `pending`, so a
    /// restarted server picks the job up from its checkpoint.
    Interrupted {
        /// Why the run stopped.
        message: String,
        /// Best-so-far result document, if any.
        partial: Option<Value>,
        /// Whether a restart will resume this job.
        resumable: bool,
    },
}

impl JobState {
    fn status(&self) -> JobStatus {
        match self {
            JobState::Queued => JobStatus::Queued,
            JobState::Running => JobStatus::Running,
            JobState::Done(_) => JobStatus::Done,
            JobState::Failed(_) => JobStatus::Failed,
            JobState::Cancelled(_) => JobStatus::Cancelled,
            JobState::Interrupted { .. } => JobStatus::Interrupted,
        }
    }
}

/// One submitted job: spec, run control, progress counters, state.
pub struct Job {
    /// Server-assigned identifier.
    pub id: u64,
    /// The validated submission.
    pub spec: JobSpec,
    /// Shared cancel token + deadline carrier; `DELETE` and server drain
    /// both cancel through (clones of) this control.
    pub control: RunControl,
    /// Set when the cancellation came from `DELETE /jobs/{id}` (to
    /// distinguish client cancel from server drain).
    pub user_cancelled: AtomicBool,
    /// Latest poll index reported by the progress observer.
    pub polls: AtomicU64,
    /// Latest elapsed time reported by the observer, milliseconds.
    pub elapsed_ms: AtomicU64,
    state: Mutex<JobState>,
}

impl Job {
    /// A freshly admitted job in the `Queued` state.
    pub fn new(id: u64, spec: JobSpec) -> Self {
        Job {
            id,
            spec,
            control: RunControl::new(),
            user_cancelled: AtomicBool::new(false),
            polls: AtomicU64::new(0),
            elapsed_ms: AtomicU64::new(0),
            state: Mutex::new(JobState::Queued),
        }
    }

    /// Current coarse status.
    pub fn status(&self) -> JobStatus {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .status()
    }

    /// Replaces the lifecycle state.
    pub fn set_state(&self, state: JobState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = state;
    }

    /// A clone of the full state.
    pub fn state(&self) -> JobState {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Requests cancellation on behalf of the client.
    pub fn cancel_by_user(&self) {
        self.user_cancelled.store(true, Ordering::Relaxed);
        self.control.cancel();
        // A job still waiting in the queue will never run; mark it
        // terminal right away (the queue skips cancelled entries).
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(*state, JobState::Queued) {
            *state = JobState::Cancelled(None);
        }
    }

    /// The `GET /jobs/{id}` response document.
    pub fn status_json(&self) -> Value {
        let state = self.state();
        let mut fields = vec![
            ("id".to_string(), Value::Int(self.id)),
            (
                "status".to_string(),
                Value::Str(state.status().as_str().to_string()),
            ),
            (
                "polls".to_string(),
                Value::Int(self.polls.load(Ordering::Relaxed)),
            ),
            (
                "elapsed_secs".to_string(),
                Value::Float(self.elapsed_ms.load(Ordering::Relaxed) as f64 / 1e3),
            ),
        ];
        match state {
            JobState::Done(result) => fields.push(("result".to_string(), result)),
            JobState::Failed(message) => {
                fields.push(("error".to_string(), Value::Str(message)));
            }
            JobState::Cancelled(partial) => {
                fields.push(("result".to_string(), partial.unwrap_or(Value::Null)));
            }
            JobState::Interrupted {
                message,
                partial,
                resumable,
            } => {
                fields.push(("error".to_string(), Value::Str(message)));
                fields.push(("result".to_string(), partial.unwrap_or(Value::Null)));
                fields.push(("resumable".to_string(), Value::Bool(resumable)));
            }
            JobState::Queued | JobState::Running => {}
        }
        Value::Obj(fields)
    }
}

/// Path of the persisted job record.
pub fn job_file(state_dir: &Path, id: u64) -> PathBuf {
    state_dir.join(format!("job-{id}.json"))
}

/// Path of the job's optimizer checkpoint.
pub fn checkpoint_file(state_dir: &Path, id: u64) -> PathBuf {
    state_dir.join(format!("job-{id}.ckpt"))
}

/// Writes the job record crash-safely through `minpower_core::store`
/// (CRC32 envelope, fsync, atomic rename, previous record kept as the
/// `.1` generation). `status` is the *persisted* disposition — a job
/// interrupted by drain is persisted `pending` so the next server run
/// resumes it. Returns the write's retry telemetry.
///
/// # Errors
///
/// [`OptimizeError::Checkpoint`] once the store's retry budget is
/// exhausted.
pub fn persist(
    state_dir: &Path,
    job: &Job,
    status: &str,
    result: Option<&Value>,
    error: Option<&str>,
) -> Result<store::WriteReport, OptimizeError> {
    let doc = Value::Obj(vec![
        ("schema".to_string(), Value::Str("minpower-job".to_string())),
        ("version".to_string(), Value::Int(1)),
        ("id".to_string(), Value::Int(job.id)),
        ("spec".to_string(), job.spec.to_json()),
        ("status".to_string(), Value::Str(status.to_string())),
        ("result".to_string(), result.cloned().unwrap_or(Value::Null)),
        (
            "error".to_string(),
            error.map_or(Value::Null, |e| Value::Str(e.to_string())),
        ),
    ]);
    let path = job_file(state_dir, job.id);
    Ok(store::write_durable(&path, doc.render().as_bytes())?)
}

/// A job record loaded back from disk at startup.
pub struct LoadedJob {
    /// Persisted identifier.
    pub id: u64,
    /// The original submission.
    pub spec: JobSpec,
    /// Persisted disposition (`pending` or a terminal status).
    pub status: String,
    /// Persisted result document, if any.
    pub result: Option<Value>,
    /// Persisted error message, if any.
    pub error: Option<String>,
}

/// Loads every `job-*.json` record in `state_dir`, verifying each
/// through the store (CRC frame when present, `.1`-generation fallback
/// when the primary is corrupt) and skipping records that still fail to
/// parse — the startup recovery audit has already quarantined anything
/// corrupt, so a skip here is pure defensiveness.
pub fn load_dir(state_dir: &Path) -> Vec<LoadedJob> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(state_dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("job-") || !name.ends_with(".json") {
            continue;
        }
        let Ok(loaded) = store::read_with_fallback(&entry.path()) else {
            continue;
        };
        let Ok(text) = String::from_utf8(loaded.payload) else {
            continue;
        };
        if let Some(job) = parse_record(&text) {
            out.push(job);
        }
    }
    out.sort_by_key(|j| j.id);
    out
}

fn parse_record(text: &str) -> Option<LoadedJob> {
    let value = json::parse(text).ok()?;
    let obj = value.as_obj("job record").ok()?;
    if obj.req("schema").ok()?.as_str("schema").ok()? != "minpower-job" {
        return None;
    }
    let spec = JobSpec::from_json(obj.req("spec").ok()?).ok()?;
    Some(LoadedJob {
        id: obj.req("id").ok()?.as_u64("id").ok()?,
        spec,
        status: obj.req("status").ok()?.as_str("status").ok()?.to_string(),
        result: obj.opt("result").cloned(),
        error: obj
            .opt("error")
            .and_then(|v| v.as_str("error").ok())
            .map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_value(text: &str) -> Value {
        json::parse(text).unwrap()
    }

    #[test]
    fn spec_round_trips_bitwise() {
        let v = spec_value(r#"{"circuit":"c17","fc":312500000.5,"activity":0.2875,"steps":9}"#);
        let spec = JobSpec::from_json(&v).unwrap();
        assert_eq!(spec.fc.to_bits(), 312500000.5f64.to_bits());
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn unknown_option_is_rejected() {
        let v = spec_value(r#"{"circuit":"c17","stepz":9}"#);
        let err = JobSpec::from_json(&v).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("stepz"));
    }

    #[test]
    fn exactly_one_source_is_required() {
        for body in [r#"{}"#, r#"{"circuit":"c17","bench":"INPUT(a)"}"#] {
            let err = JobSpec::from_json(&spec_value(body)).unwrap_err();
            assert_eq!(err.status, 400);
        }
    }

    #[test]
    fn range_validation_rejects_bad_numbers() {
        for body in [
            r#"{"circuit":"c17","fc":-1}"#,
            r#"{"circuit":"c17","activity":1.5}"#,
            r#"{"circuit":"c17","skew":0}"#,
            r#"{"circuit":"c17","time_limit":-2}"#,
        ] {
            let err = JobSpec::from_json(&spec_value(body)).unwrap_err();
            assert_eq!(err.status, 400, "{body}");
        }
    }

    #[test]
    fn oversized_netlist_is_422() {
        let spec = JobSpec::from_json(&spec_value(r#"{"circuit":"c17"}"#)).unwrap();
        let err = spec.build(3).unwrap_err();
        assert_eq!(err.status, 422);
        assert!(spec.build(100).is_ok());
    }

    #[test]
    fn user_cancel_of_queued_job_is_terminal() {
        let spec = JobSpec::from_json(&spec_value(r#"{"circuit":"c17"}"#)).unwrap();
        let job = Job::new(7, spec);
        assert_eq!(job.status(), JobStatus::Queued);
        job.cancel_by_user();
        assert_eq!(job.status(), JobStatus::Cancelled);
        assert!(job.control.is_cancelled());
    }

    #[test]
    fn persist_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("minpower-job-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = JobSpec::from_json(&spec_value(r#"{"circuit":"s27","fc":2.5e8}"#)).unwrap();
        let job = Job::new(3, spec.clone());
        persist(&dir, &job, "pending", None, None).unwrap();
        let loaded = load_dir(&dir);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].id, 3);
        assert_eq!(loaded[0].status, "pending");
        assert_eq!(loaded[0].spec, spec);
        assert!(loaded[0].result.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
